//! Identifiers: modules are referred to with `<module name, module-id,
//! device-id>` tuples (§II), devices by their globally unique, topology
//! independent device-id (re-used from `netsim`).

use netsim::device::DeviceId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The protocol a module implements ("module name" in the paper: "IPv4",
/// "GRE", "RFC791", a URI for applications, ...).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ModuleKind {
    /// An Ethernet module bound to one physical port.
    Eth,
    /// An IPv4 module (a "virtual router": a device may contain several,
    /// e.g. one per customer VRF plus one for the ISP core).
    Ip,
    /// A GRE encapsulation module.
    Gre,
    /// An MPLS label-switching module.
    Mpls,
    /// An 802.1Q VLAN module on a layer-2 switch.
    Vlan,
    /// A UDP transport module.
    Udp,
    /// A TCP transport module.
    Tcp,
    /// An application endpoint, named by a URI-like string.
    App(String),
    /// A control-plane module (IKE, LCP, routing) — advertised but not part
    /// of the data-module abstraction (§II-F).
    Control(String),
}

impl ModuleKind {
    /// The module name string used in showPotential output and scripts.
    pub fn name(&self) -> String {
        match self {
            ModuleKind::Eth => "ETH".to_string(),
            ModuleKind::Ip => "IP".to_string(),
            ModuleKind::Gre => "GRE".to_string(),
            ModuleKind::Mpls => "MPLS".to_string(),
            ModuleKind::Vlan => "VLAN".to_string(),
            ModuleKind::Udp => "UDP".to_string(),
            ModuleKind::Tcp => "TCP".to_string(),
            ModuleKind::App(n) => n.clone(),
            ModuleKind::Control(n) => format!("ctl:{n}"),
        }
    }

    /// Is this a data-plane module (as opposed to a control module)?
    pub fn is_data(&self) -> bool {
        !matches!(self, ModuleKind::Control(_))
    }
}

impl fmt::Display for ModuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Module identifier, unique within its device.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ModuleId(pub u32);

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// The `<module name, module-id, device-id>` tuple that uniquely names a
/// module across the network.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModuleRef {
    /// Protocol ("module name").
    pub kind: ModuleKind,
    /// Module id within the device.
    pub module: ModuleId,
    /// Owning device.
    pub device: DeviceId,
}

impl ModuleRef {
    /// Construct a reference.
    pub fn new(kind: ModuleKind, module: ModuleId, device: DeviceId) -> Self {
        ModuleRef {
            kind,
            module,
            device,
        }
    }

    /// Render with a human-readable device alias, approximating the paper's
    /// `<GRE,A,b>` notation.
    pub fn display_with(&self, device_alias: &str, module_alias: &str) -> String {
        format!("<{},{},{}>", self.kind, device_alias, module_alias)
    }
}

impl fmt::Display for ModuleRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},{},{}>", self.kind, self.device, self.module)
    }
}

/// Pipe identifier.  Pipes are created (and named) by the NM, so identifiers
/// are allocated by the NM and unique within one configuration task.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct PipeId(pub u32);

impl fmt::Display for PipeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let r = ModuleRef::new(ModuleKind::Gre, ModuleId(2), DeviceId::from_raw(0xA));
        assert!(r.to_string().starts_with("<GRE,dev:"));
        assert_eq!(r.display_with("A", "b"), "<GRE,A,b>");
        assert_eq!(PipeId(1).to_string(), "P1");
        assert_eq!(ModuleKind::App("HTTP-client".into()).name(), "HTTP-client");
    }

    #[test]
    fn data_vs_control() {
        assert!(ModuleKind::Ip.is_data());
        assert!(!ModuleKind::Control("IKE".into()).is_data());
    }

    #[test]
    fn refs_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let d = DeviceId::from_raw(1);
        let mut s = BTreeSet::new();
        s.insert(ModuleRef::new(ModuleKind::Ip, ModuleId(1), d));
        s.insert(ModuleRef::new(ModuleKind::Ip, ModuleId(1), d));
        s.insert(ModuleRef::new(ModuleKind::Eth, ModuleId(2), d));
        assert_eq!(s.len(), 2);
    }
}
