//! The protocol-module interface.
//!
//! A CONMan protocol module is a wrapper around a protocol implementation
//! (in this reproduction: around the `netsim` data plane) that exposes the
//! generic module abstraction and reacts to the CONMan primitives.  All the
//! protocol-specific intelligence — determining keys, addresses, labels,
//! VLAN ids — lives behind this interface, exactly as the paper prescribes.

use crate::abstraction::{CounterSnapshot, ModuleAbstraction};
use crate::ids::{ModuleRef, PipeId};
use crate::primitives::{
    ComponentRef, FilterSpec, ModuleActual, ModuleEnvelope, Notification, PipeSpec, SwitchSpec,
};
use netsim::config::DeviceConfig;
use netsim::device::DeviceId;
use netsim::nic::Nic;
use netsim::stats::DeviceStats;
use std::collections::BTreeMap;
use std::fmt;

/// Errors a module can raise while executing a primitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModuleError {
    /// The module does not support the requested operation.
    Unsupported(String),
    /// A dependency declared in the abstraction was not satisfied.
    MissingDependency(String),
    /// The specification referenced unknown components.
    BadSpec(String),
}

impl fmt::Display for ModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleError::Unsupported(s) => write!(f, "unsupported operation: {s}"),
            ModuleError::MissingDependency(s) => write!(f, "missing dependency: {s}"),
            ModuleError::BadSpec(s) => write!(f, "bad specification: {s}"),
        }
    }
}

impl std::error::Error for ModuleError {}

/// What a module wants to happen after handling an event: messages to peer
/// modules (relayed via the NM) and notifications to the NM.
#[derive(Debug, Default, Clone)]
pub struct ModuleReaction {
    /// Module-to-module messages to relay through the NM.
    pub envelopes: Vec<ModuleEnvelope>,
    /// Notifications to the NM.
    pub notifications: Vec<Notification>,
}

impl ModuleReaction {
    /// An empty reaction.
    pub fn none() -> Self {
        Self::default()
    }

    /// A reaction carrying a single envelope.
    pub fn envelope(env: ModuleEnvelope) -> Self {
        ModuleReaction {
            envelopes: vec![env],
            notifications: Vec::new(),
        }
    }

    /// Merge another reaction into this one.
    pub fn extend(&mut self, other: ModuleReaction) {
        self.envelopes.extend(other.envelopes);
        self.notifications.extend(other.notifications);
    }

    /// Is there anything in this reaction?
    pub fn is_empty(&self) -> bool {
        self.envelopes.is_empty() && self.notifications.is_empty()
    }
}

/// The context a module operates in: the device configuration it is allowed
/// to write (this is "the protocol implementation" side of the wrapper), the
/// device's ports, and a per-device blackboard that modules on the same
/// device use to share resolved values (intra-device module interaction is an
/// implementation detail the architecture does not constrain).
pub struct ModuleCtx<'a> {
    /// The device this module lives on.
    pub device: DeviceId,
    /// The device's data-plane configuration.
    pub config: &'a mut DeviceConfig,
    /// The device's ports (read-only).
    pub ports: &'a [Nic],
    /// The device's packet counters (read-only), the substrate for the
    /// per-module performance reporting of Table III and the telemetry
    /// snapshots of the diagnosis layer.
    pub stats: &'a DeviceStats,
    /// Shared per-device key/value blackboard.
    pub blackboard: &'a mut BTreeMap<String, String>,
}

impl ModuleCtx<'_> {
    /// Convenience: read a blackboard value.
    pub fn get(&self, key: &str) -> Option<&String> {
        self.blackboard.get(key)
    }

    /// Convenience: write a blackboard value.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.blackboard.insert(key.into(), value.into());
    }

    /// Blackboard key for a per-pipe attribute.
    pub fn pipe_key(pipe: PipeId, attr: &str) -> String {
        format!("pipe.{}.{}", pipe.0, attr)
    }

    /// Read a per-pipe attribute.
    pub fn pipe_attr(&self, pipe: PipeId, attr: &str) -> Option<&String> {
        self.blackboard.get(&Self::pipe_key(pipe, attr))
    }

    /// Write a per-pipe attribute.
    pub fn set_pipe_attr(&mut self, pipe: PipeId, attr: &str, value: impl Into<String>) {
        self.blackboard
            .insert(Self::pipe_key(pipe, attr), value.into());
    }
}

/// A CONMan protocol module.
///
/// Default implementations make unsupported operations explicit errors, so a
/// minimal module only has to provide its reference and descriptor.
pub trait ProtocolModule: Send {
    /// The `<name, module-id, device-id>` identity of this module.
    fn reference(&self) -> ModuleRef;

    /// The module abstraction (the `showPotential` answer for this module).
    fn descriptor(&self) -> ModuleAbstraction;

    /// The module's actual configured state (the `showActual` answer).
    fn actual(&self, _ctx: &ModuleCtx) -> ModuleActual {
        ModuleActual::default()
    }

    /// The module's current counter snapshot (the `pollCounters` answer).
    ///
    /// The default reports nothing, which is a valid (if unhelpful) answer
    /// for modules with no performance reporting; concrete modules translate
    /// the device stats into per-pipe counters here.
    fn counters(&self, _ctx: &ModuleCtx) -> CounterSnapshot {
        CounterSnapshot::empty(self.reference())
    }

    /// Create a pipe this module participates in (as upper or lower end).
    fn create_pipe(
        &mut self,
        _ctx: &mut ModuleCtx,
        _spec: &PipeSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        Ok(ModuleReaction::none())
    }

    /// Create a switch rule on this module.
    fn create_switch(
        &mut self,
        _ctx: &mut ModuleCtx,
        _spec: &SwitchSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        Ok(ModuleReaction::none())
    }

    /// Create a filter on this module.
    fn create_filter(
        &mut self,
        _ctx: &mut ModuleCtx,
        spec: &FilterSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        Err(ModuleError::Unsupported(format!(
            "{} cannot filter (asked to drop {} -> {})",
            self.reference(),
            spec.from,
            spec.to
        )))
    }

    /// Delete a previously created component.
    fn delete(
        &mut self,
        _ctx: &mut ModuleCtx,
        _component: &ComponentRef,
    ) -> Result<ModuleReaction, ModuleError> {
        Ok(ModuleReaction::none())
    }

    /// Handle a message from a peer module (relayed by the NM).
    fn handle_envelope(
        &mut self,
        _ctx: &mut ModuleCtx,
        _env: &ModuleEnvelope,
    ) -> Result<ModuleReaction, ModuleError> {
        Ok(ModuleReaction::none())
    }

    /// Make progress on deferred work.
    ///
    /// Modules often cannot finish configuring the data plane the moment a
    /// primitive arrives (they may still be waiting for a peer's reply or for
    /// a value another module on the same device has to produce).  The
    /// management agent calls `poll` after every event so modules can pick up
    /// newly available values from the blackboard and complete their work.
    fn poll(&mut self, _ctx: &mut ModuleCtx) -> ModuleReaction {
        ModuleReaction::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ModuleId, ModuleKind};

    struct Dummy(ModuleRef);
    impl ProtocolModule for Dummy {
        fn reference(&self) -> ModuleRef {
            self.0.clone()
        }
        fn descriptor(&self) -> ModuleAbstraction {
            ModuleAbstraction::empty(self.0.clone())
        }
    }

    #[test]
    fn defaults_are_sane() {
        let r = ModuleRef::new(ModuleKind::Ip, ModuleId(1), DeviceId::from_raw(1));
        let mut m = Dummy(r.clone());
        let mut config = DeviceConfig::new();
        let ports: Vec<Nic> = Vec::new();
        let stats = DeviceStats::default();
        let mut blackboard = BTreeMap::new();
        let mut ctx = ModuleCtx {
            device: DeviceId::from_raw(1),
            config: &mut config,
            ports: &ports,
            stats: &stats,
            blackboard: &mut blackboard,
        };
        assert!(m.poll(&mut ctx).is_empty());
        assert_eq!(m.actual(&ctx), ModuleActual::default());
        let filter = FilterSpec {
            module: r.clone(),
            from: r.clone(),
            to: r.clone(),
            resolved: BTreeMap::new(),
        };
        assert!(m.create_filter(&mut ctx, &filter).is_err());
    }

    #[test]
    fn ctx_blackboard_helpers() {
        let mut config = DeviceConfig::new();
        let ports: Vec<Nic> = Vec::new();
        let stats = DeviceStats::default();
        let mut blackboard = BTreeMap::new();
        let mut ctx = ModuleCtx {
            device: DeviceId::from_raw(1),
            config: &mut config,
            ports: &ports,
            stats: &stats,
            blackboard: &mut blackboard,
        };
        ctx.set_pipe_attr(PipeId(3), "port", "2");
        assert_eq!(ctx.pipe_attr(PipeId(3), "port").unwrap(), "2");
        assert_eq!(ModuleCtx::pipe_key(PipeId(3), "port"), "pipe.3.port");
        assert!(ctx.get("nope").is_none());
    }
}
