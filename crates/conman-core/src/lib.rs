//! # conman-core — Complexity Oblivious Network Management
//!
//! A reproduction of the CONMan architecture (Ballani & Francis, "CONMan: A
//! Step towards Network Manageability", 2007).  The crate contains everything
//! that is protocol-*independent*:
//!
//! * the **module abstraction** ([`abstraction`]) every data-plane protocol
//!   uses to self-describe (Table II of the paper),
//! * the **CONMan primitives** ([`primitives`]) the NM uses to manage devices
//!   (`showPotential`, `showActual`, `create`, `delete`, `conveyMessage`,
//!   `listFieldsAndValues` — Table I),
//! * the per-device **management agent** ([`agent`]) that dispatches
//!   primitives to protocol modules,
//! * the **protocol-module interface** ([`module`]) implemented by the
//!   concrete modules in the `conman-modules` crate,
//! * the **Network Manager** ([`nm`]): topology map, potential-connectivity
//!   graph, encapsulation-aware path finder, path selection and script
//!   generation,
//! * the **runtime** ([`runtime`]): the orchestration loop that drives a
//!   managed network over a management channel, relaying module-to-module
//!   messages through the NM and accounting for every message (Table VI).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abstraction;
pub mod agent;
pub mod ids;
pub mod module;
pub mod nm;
pub mod primitives;
pub mod runtime;
pub mod wire;

pub use abstraction::{CounterSnapshot, ModuleAbstraction, PipeCounters, SwitchKind};
pub use agent::ManagementAgent;
pub use ids::{ModuleId, ModuleKind, ModuleRef, PipeId};
pub use module::{ModuleCtx, ModuleError, ModuleReaction, ProtocolModule};
pub use nm::{
    ConnectivityGoal, GoalId, GoalStatus, GoalStore, ModulePath, NetworkManager, PathFinderLimits,
    Plan,
};
pub use primitives::{Primitive, WireMessage};
pub use runtime::{
    ConfigureOutcome, ControlLoop, GoalEndpoints, LoopConfig, ManagedNetwork, NmEvent,
    ReconcileReport, TransactionOutcome, WithdrawOutcome,
};
pub use wire::WireCodec;
