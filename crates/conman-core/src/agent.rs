//! The per-device Management Agent (MA).
//!
//! Every CONMan device has an internal management agent that is responsible
//! for the device's participation in the management plane (§II): it answers
//! the NM's primitives by dispatching them to the right protocol modules,
//! relays module-to-module envelopes to their destination module, and
//! forwards module notifications to the NM.

use crate::ids::{ModuleId, ModuleRef};
use crate::module::{ModuleCtx, ModuleReaction, ProtocolModule};
use crate::primitives::{
    Announcement, ModuleActual, Primitive, PrimitiveResult, SegmentCommit, SegmentVerdict,
    WireMessage,
};
use netsim::device::{Device, DeviceId, PortId};
use std::collections::BTreeMap;

/// How many times the agent re-polls its modules after an event before
/// declaring the device quiescent.  Deferred work converges in one or two
/// rounds; the bound only guards against buggy modules ping-ponging.
const MAX_POLL_ROUNDS: usize = 8;

/// The management agent of one device.
pub struct ManagementAgent {
    /// The device this agent manages.
    pub device: DeviceId,
    /// Human-readable device name (for announcements and script rendering).
    pub device_name: String,
    modules: BTreeMap<ModuleId, Box<dyn ProtocolModule>>,
    /// Per-device blackboard shared by the modules.
    blackboard: BTreeMap<String, String>,
    /// Primitives staged under a transaction id, validated but not yet
    /// applied to the data plane (two-phase configuration).
    staged: BTreeMap<u64, Vec<Primitive>>,
    /// Per-goal segments staged under a batched transaction id, keyed by
    /// (txn, goal) so each goal can be committed or aborted independently.
    staged_batches: BTreeMap<u64, BTreeMap<u64, Vec<Primitive>>>,
    /// Flow tags (goal ids) the NM subscribed to with `SubscribeFlows`,
    /// with the counters as of the last pushed (or initial) report.  After
    /// any handled exchange that moved a watched tag's counters the agent
    /// pushes an unsolicited `FlowReport` alongside its regular replies.
    watched_flows: BTreeMap<u64, netsim::stats::FlowCounters>,
}

impl ManagementAgent {
    /// Create an agent for a device.
    pub fn new(device: DeviceId, device_name: impl Into<String>) -> Self {
        ManagementAgent {
            device,
            device_name: device_name.into(),
            modules: BTreeMap::new(),
            blackboard: BTreeMap::new(),
            staged: BTreeMap::new(),
            staged_batches: BTreeMap::new(),
            watched_flows: BTreeMap::new(),
        }
    }

    /// Number of transactions currently staged and awaiting commit/abort.
    pub fn staged_count(&self) -> usize {
        self.staged.len()
    }

    /// Number of goal segments held by staged batched transactions.
    pub fn staged_segment_count(&self) -> usize {
        self.staged_batches.values().map(|g| g.len()).sum()
    }

    /// Validate one primitive against this device's module set without
    /// touching the data plane — the staging check of the two-phase
    /// protocol.  Returns the reason the primitive cannot execute, if any.
    fn validate_primitive(&self, primitive: &Primitive) -> Option<String> {
        let missing = |m: &ModuleRef| -> Option<String> {
            if self.modules.contains_key(&m.module) {
                None
            } else {
                Some(format!("no module {m} on device"))
            }
        };
        match primitive {
            Primitive::CreatePipe(spec) => missing(&spec.upper).or_else(|| missing(&spec.lower)),
            Primitive::CreateSwitch(spec) => missing(&spec.module),
            Primitive::CreateFilter(spec) => missing(&spec.module),
            // Reads and deletes are always admissible: a delete of something
            // absent is a no-op by design (idempotent teardown).
            Primitive::ShowPotential | Primitive::ShowActual | Primitive::Delete(_) => None,
        }
    }

    /// Register a protocol module.
    pub fn register(&mut self, module: Box<dyn ProtocolModule>) {
        let id = module.reference().module;
        self.modules.insert(id, module);
    }

    /// References of all registered modules.
    pub fn module_refs(&self) -> Vec<ModuleRef> {
        self.modules.values().map(|m| m.reference()).collect()
    }

    /// Number of registered modules.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Read-only access to the blackboard (used by tests and debugging).
    pub fn blackboard(&self) -> &BTreeMap<String, String> {
        &self.blackboard
    }

    /// Build the physical-connectivity announcement this device sends to the
    /// NM when it boots.
    pub fn announcement(&self, neighbors: Vec<(PortId, DeviceId, PortId)>) -> WireMessage {
        WireMessage::Announce(Announcement {
            device: self.device,
            device_name: self.device_name.clone(),
            neighbors,
        })
    }

    /// Handle a wire message addressed to this device.  `device` is the
    /// simulated device whose configuration the modules manipulate.  Returns
    /// the wire messages to send back to the NM.
    pub fn handle(&mut self, device: &mut Device, msg: &WireMessage) -> Vec<WireMessage> {
        let mut out = Vec::new();
        match msg {
            WireMessage::Script {
                request,
                primitives,
            } => {
                let mut results = Vec::with_capacity(primitives.len());
                let mut reaction = ModuleReaction::none();
                for p in primitives {
                    let (res, r) = self.run_primitive(device, p);
                    results.push(res);
                    reaction.extend(r);
                }
                reaction.extend(self.poll_until_quiescent(device));
                out.push(WireMessage::ScriptResult {
                    request: *request,
                    results,
                });
                Self::push_reaction(&mut out, reaction);
            }
            WireMessage::Module(env) => {
                let mut reaction = ModuleReaction::none();
                if let Some(module) = self.modules.get_mut(&env.to.module) {
                    let mut ctx = Self::ctx(&mut self.blackboard, self.device, device);
                    match module.handle_envelope(&mut ctx, env) {
                        Ok(r) => reaction.extend(r),
                        Err(e) => {
                            out.push(WireMessage::Notify(crate::primitives::Notification {
                                from: env.to.clone(),
                                body: serde_json::json!({"error": e.to_string()}),
                            }));
                        }
                    }
                }
                reaction.extend(self.poll_until_quiescent(device));
                Self::push_reaction(&mut out, reaction);
            }
            WireMessage::PollCounters { request } => {
                let mut snapshots = Vec::with_capacity(self.modules.len());
                for m in self.modules.values() {
                    let ctx = ModuleCtx {
                        device: self.device,
                        config: &mut device.config,
                        ports: &device.ports,
                        stats: &device.stats,
                        blackboard: &mut self.blackboard,
                    };
                    snapshots.push(m.counters(&ctx));
                }
                out.push(WireMessage::CounterReport {
                    request: *request,
                    snapshots,
                });
            }
            WireMessage::PollFlows { request, tags } => {
                let flows = tags.iter().map(|t| (*t, device.stats.flow(*t))).collect();
                out.push(WireMessage::FlowReport {
                    request: *request,
                    flows,
                });
            }
            WireMessage::SubscribeFlows { tags } => {
                // (Re)build the watch set, baselining each tag at its
                // current counters so only *changes* from here on push.
                self.watched_flows = tags.iter().map(|t| (*t, device.stats.flow(*t))).collect();
            }
            WireMessage::Stage { txn, primitives } => {
                // Transactions are serial per NM and txn ids monotonic, so
                // a newer Stage means any older held entry is dead — its
                // Abort may have been lost while this device was down.
                self.staged.retain(|held, _| *held >= *txn);
                self.staged_batches.retain(|held, _| *held >= *txn);
                // Phase one: validate everything, hold on success.  Nothing
                // touches the data plane until the commit arrives.
                let errors: Vec<String> = primitives
                    .iter()
                    .filter_map(|p| self.validate_primitive(p))
                    .collect();
                if errors.is_empty() {
                    self.staged.insert(*txn, primitives.clone());
                }
                out.push(WireMessage::StageResult { txn: *txn, errors });
            }
            WireMessage::Commit { txn } => {
                // Phase two: execute the held primitives exactly as a
                // direct script would.
                match self.staged.remove(txn) {
                    Some(primitives) => {
                        let mut results = Vec::with_capacity(primitives.len());
                        let mut reaction = ModuleReaction::none();
                        for p in &primitives {
                            let (res, r) = self.run_primitive(device, p);
                            results.push(res);
                            reaction.extend(r);
                        }
                        reaction.extend(self.poll_until_quiescent(device));
                        out.push(WireMessage::CommitResult { txn: *txn, results });
                        Self::push_reaction(&mut out, reaction);
                    }
                    None => {
                        out.push(WireMessage::CommitResult {
                            txn: *txn,
                            results: vec![Err(format!("transaction {txn} was never staged"))],
                        });
                    }
                }
            }
            WireMessage::Abort { txn } => {
                self.staged.remove(txn);
                self.staged_batches.remove(txn);
            }
            WireMessage::StageBatch { txn, segments } => {
                // Same staleness rule as `Stage`: a newer transaction makes
                // older held entries dead.
                self.staged.retain(|held, _| *held >= *txn);
                self.staged_batches.retain(|held, _| *held >= *txn);
                // Validate each goal's segment independently; hold the valid
                // ones.  Nothing touches the data plane until the commit.
                let mut verdicts = Vec::with_capacity(segments.len());
                let mut held = BTreeMap::new();
                for seg in segments {
                    let errors: Vec<String> = seg
                        .primitives
                        .iter()
                        .filter_map(|p| self.validate_primitive(p))
                        .collect();
                    if errors.is_empty() {
                        held.insert(seg.goal, seg.primitives.clone());
                    }
                    verdicts.push(SegmentVerdict {
                        goal: seg.goal,
                        errors,
                    });
                }
                self.staged_batches.insert(*txn, held);
                out.push(WireMessage::StageBatchResult {
                    txn: *txn,
                    verdicts,
                });
            }
            WireMessage::CommitBatch { txn, goals } => {
                // Execute the listed segments in order, then run one shared
                // quiescence pass for the whole device — this is where the
                // batching win comes from: every goal's deferred work (peer
                // exchanges, pending switch rules) resolves in one round.
                let mut held = self.staged_batches.remove(txn).unwrap_or_default();
                let mut segments = Vec::with_capacity(goals.len());
                let mut reaction = ModuleReaction::none();
                for goal in goals {
                    match held.remove(goal) {
                        Some(primitives) => {
                            let mut results = Vec::with_capacity(primitives.len());
                            for p in &primitives {
                                let (res, r) = self.run_primitive(device, p);
                                results.push(res);
                                reaction.extend(r);
                            }
                            segments.push(SegmentCommit {
                                goal: *goal,
                                results,
                            });
                        }
                        None => segments.push(SegmentCommit {
                            goal: *goal,
                            results: vec![Err(format!(
                                "goal {goal} was never staged under transaction {txn}"
                            ))],
                        }),
                    }
                }
                reaction.extend(self.poll_until_quiescent(device));
                out.push(WireMessage::CommitBatchResult {
                    txn: *txn,
                    segments,
                });
                Self::push_reaction(&mut out, reaction);
            }
            WireMessage::AbortBatch { txn, goals } => {
                if let Some(held) = self.staged_batches.get_mut(txn) {
                    for goal in goals {
                        held.remove(goal);
                    }
                    if held.is_empty() {
                        self.staged_batches.remove(txn);
                    }
                }
            }
            WireMessage::RelayBatch { envelopes } => {
                let mut reaction = ModuleReaction::none();
                for env in envelopes {
                    if let Some(module) = self.modules.get_mut(&env.to.module) {
                        let mut ctx = Self::ctx(&mut self.blackboard, self.device, device);
                        match module.handle_envelope(&mut ctx, env) {
                            Ok(r) => reaction.extend(r),
                            Err(e) => {
                                out.push(WireMessage::Notify(crate::primitives::Notification {
                                    from: env.to.clone(),
                                    body: serde_json::json!({"error": e.to_string()}),
                                }));
                            }
                        }
                    }
                }
                reaction.extend(self.poll_until_quiescent(device));
                Self::push_reaction(&mut out, reaction);
            }
            // Announcements, notifications, script results, counter reports
            // and transaction verdicts are NM-bound; an agent receiving one
            // ignores it.
            WireMessage::Announce(_)
            | WireMessage::Notify(_)
            | WireMessage::ScriptResult { .. }
            | WireMessage::CounterReport { .. }
            | WireMessage::FlowReport { .. }
            | WireMessage::StageResult { .. }
            | WireMessage::CommitResult { .. }
            | WireMessage::StageBatchResult { .. }
            | WireMessage::CommitBatchResult { .. } => {}
        }
        self.push_watched_flow_report(device, &mut out);
        out
    }

    /// Handle a binary-coded `StageBatch` payload *in place*: walk the
    /// length-prefixed segment slices out of the wire bytes, validating each
    /// primitive as it decodes, without materialising a [`WireMessage`]
    /// first.  Behaviourally identical to the `StageBatch` arm of
    /// [`Self::handle`]; a segment whose encoding is corrupt fails its own
    /// verdict instead of sinking the whole batch.  Returns `None` when the
    /// payload is not a parseable binary `StageBatch` frame (the caller
    /// falls back to the generic decoder, which drops it).
    pub fn handle_stage_batch_in_place(
        &mut self,
        device: &mut Device,
        payload: &[u8],
    ) -> Option<Vec<WireMessage>> {
        let view = crate::wire::StageBatchView::parse(payload)?;
        let txn = view.txn;
        // Same staleness rule as `Stage`: a newer transaction makes older
        // held entries dead.
        self.staged.retain(|held, _| *held >= txn);
        self.staged_batches.retain(|held, _| *held >= txn);
        let mut verdicts = Vec::with_capacity(view.segment_count());
        let mut held = BTreeMap::new();
        for seg in view.segments() {
            let mut errors = Vec::new();
            let mut primitives = Vec::new();
            for p in seg.primitives() {
                match p {
                    Ok(p) => {
                        if let Some(e) = self.validate_primitive(&p) {
                            errors.push(e);
                        }
                        primitives.push(p);
                    }
                    Err(_) => {
                        errors.push(format!(
                            "goal {}: malformed primitive encoding in staged segment",
                            seg.goal
                        ));
                        break;
                    }
                }
            }
            if errors.is_empty() {
                held.insert(seg.goal, primitives);
            }
            verdicts.push(SegmentVerdict {
                goal: seg.goal,
                errors,
            });
        }
        self.staged_batches.insert(txn, held);
        let mut out = vec![WireMessage::StageBatchResult { txn, verdicts }];
        self.push_watched_flow_report(device, &mut out);
        Some(out)
    }

    /// Push-mode telemetry: if this exchange moved a watched flow's
    /// counters, report the delta's new totals unsolicited (request 0)
    /// alongside the regular replies.
    fn push_watched_flow_report(&mut self, device: &Device, out: &mut Vec<WireMessage>) {
        if self.watched_flows.is_empty() {
            return;
        }
        let mut changed = Vec::new();
        for (tag, last) in self.watched_flows.iter_mut() {
            let now = device.stats.flow(*tag);
            if now != *last {
                *last = now;
                changed.push((*tag, now));
            }
        }
        if !changed.is_empty() {
            out.push(WireMessage::FlowReport {
                request: 0,
                flows: changed,
            });
        }
    }

    fn push_reaction(out: &mut Vec<WireMessage>, reaction: ModuleReaction) {
        for env in reaction.envelopes {
            out.push(WireMessage::Module(env));
        }
        for n in reaction.notifications {
            out.push(WireMessage::Notify(n));
        }
    }

    fn ctx<'a>(
        blackboard: &'a mut BTreeMap<String, String>,
        id: DeviceId,
        device: &'a mut Device,
    ) -> ModuleCtx<'a> {
        ModuleCtx {
            device: id,
            config: &mut device.config,
            ports: &device.ports,
            stats: &device.stats,
            blackboard,
        }
    }

    fn run_primitive(
        &mut self,
        device: &mut Device,
        primitive: &Primitive,
    ) -> (Result<PrimitiveResult, String>, ModuleReaction) {
        let mut reaction = ModuleReaction::none();
        let result = match primitive {
            Primitive::ShowPotential => {
                let mut abstractions = Vec::new();
                for m in self.modules.values() {
                    let mut a = m.descriptor();
                    // Patch in live physical-pipe information (link ids) the
                    // module object itself does not track.
                    for p in &mut a.physical_pipes {
                        if let Some(nic) = device.port(p.port) {
                            p.link = nic.link;
                        }
                    }
                    abstractions.push(a);
                }
                Ok(PrimitiveResult::Potential(abstractions))
            }
            Primitive::ShowActual => {
                let mut map = BTreeMap::new();
                for m in self.modules.values() {
                    let ctx = ModuleCtx {
                        device: self.device,
                        config: &mut device.config,
                        ports: &device.ports,
                        stats: &device.stats,
                        blackboard: &mut self.blackboard,
                    };
                    let actual: ModuleActual = m.actual(&ctx);
                    map.insert(m.reference().to_string(), actual);
                }
                Ok(PrimitiveResult::Actual(map))
            }
            Primitive::CreatePipe(spec) => {
                // Both endpoints of the pipe live on this device; dispatch to
                // the lower module first (it typically publishes values —
                // e.g. the underlying port — that the upper module reads).
                let order = [spec.lower.module, spec.upper.module];
                let mut err = None;
                for id in order {
                    if let Some(module) = self.modules.get_mut(&id) {
                        let mut ctx = Self::ctx(&mut self.blackboard, self.device, device);
                        match module.create_pipe(&mut ctx, spec) {
                            Ok(r) => reaction.extend(r),
                            Err(e) => err = Some(e.to_string()),
                        }
                    } else {
                        err = Some(format!("no module {id} on device"));
                    }
                }
                match err {
                    Some(e) => Err(e),
                    None => Ok(PrimitiveResult::PipeCreated(spec.pipe)),
                }
            }
            Primitive::CreateSwitch(spec) => match self.modules.get_mut(&spec.module.module) {
                Some(module) => {
                    let mut ctx = Self::ctx(&mut self.blackboard, self.device, device);
                    match module.create_switch(&mut ctx, spec) {
                        Ok(r) => {
                            reaction.extend(r);
                            Ok(PrimitiveResult::Done)
                        }
                        Err(e) => Err(e.to_string()),
                    }
                }
                None => Err(format!("no module {} on device", spec.module)),
            },
            Primitive::CreateFilter(spec) => match self.modules.get_mut(&spec.module.module) {
                Some(module) => {
                    let mut ctx = Self::ctx(&mut self.blackboard, self.device, device);
                    match module.create_filter(&mut ctx, spec) {
                        Ok(r) => {
                            reaction.extend(r);
                            Ok(PrimitiveResult::Done)
                        }
                        Err(e) => Err(e.to_string()),
                    }
                }
                None => Err(format!("no module {} on device", spec.module)),
            },
            Primitive::Delete(component) => {
                let mut last_err = None;
                for module in self.modules.values_mut() {
                    let mut ctx = Self::ctx(&mut self.blackboard, self.device, device);
                    if let Err(e) = module.delete(&mut ctx, component) {
                        last_err = Some(e.to_string());
                    }
                }
                // A deleted pipe's blackboard attributes (port, attach,
                // addresses) must not leak into a later path that happens to
                // reuse the same pipe identifier.
                if let crate::primitives::ComponentRef::Pipe(pipe) = component {
                    let prefix = format!("pipe.{}.", pipe.0);
                    self.blackboard.retain(|k, _| !k.starts_with(&prefix));
                }
                match last_err {
                    Some(e) => Err(e),
                    None => Ok(PrimitiveResult::Done),
                }
            }
        };
        (result, reaction)
    }

    /// A cheap content fingerprint of the blackboard, used to detect that a
    /// poll round published new values without cloning the whole map (the
    /// blackboard holds an entry per pipe attribute, so a clone per round
    /// is O(goals) allocations on busy devices).
    fn blackboard_fingerprint(&self) -> u64 {
        use std::hash::{DefaultHasher, Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.blackboard.len().hash(&mut h);
        for (k, v) in &self.blackboard {
            k.hash(&mut h);
            v.hash(&mut h);
        }
        h.finish()
    }

    /// Poll every module until none of them produces further output.
    pub fn poll_until_quiescent(&mut self, device: &mut Device) -> ModuleReaction {
        let mut total = ModuleReaction::none();
        let mut before = self.blackboard_fingerprint();
        for _ in 0..MAX_POLL_ROUNDS {
            let mut round = ModuleReaction::none();
            for module in self.modules.values_mut() {
                let mut ctx = Self::ctx(&mut self.blackboard, self.device, device);
                round.extend(module.poll(&mut ctx));
            }
            let after = self.blackboard_fingerprint();
            let changed = after != before;
            before = after;
            if round.is_empty() && !changed {
                break;
            }
            total.extend(round);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::ModuleAbstraction;
    use crate::ids::{ModuleKind, PipeId};
    use crate::primitives::PipeSpec;
    use netsim::device::DeviceRole;

    /// A module that records pipe creations and publishes a value the test
    /// can observe.
    struct Recorder {
        me: ModuleRef,
        pipes: Vec<PipeId>,
    }

    impl ProtocolModule for Recorder {
        fn reference(&self) -> ModuleRef {
            self.me.clone()
        }
        fn descriptor(&self) -> ModuleAbstraction {
            ModuleAbstraction::empty(self.me.clone())
        }
        fn create_pipe(
            &mut self,
            ctx: &mut ModuleCtx,
            spec: &PipeSpec,
        ) -> Result<ModuleReaction, crate::module::ModuleError> {
            self.pipes.push(spec.pipe);
            ctx.set_pipe_attr(spec.pipe, "seen-by", self.me.to_string());
            Ok(ModuleReaction::none())
        }
        fn actual(&self, _ctx: &ModuleCtx) -> ModuleActual {
            ModuleActual {
                pipes: self.pipes.clone(),
                ..Default::default()
            }
        }
    }

    fn setup() -> (Device, ManagementAgent, ModuleRef, ModuleRef) {
        let device = Device::new("R", DeviceRole::Router, 2);
        let mut agent = ManagementAgent::new(device.id, "R");
        let upper = ModuleRef::new(ModuleKind::Ip, ModuleId(1), device.id);
        let lower = ModuleRef::new(ModuleKind::Eth, ModuleId(2), device.id);
        agent.register(Box::new(Recorder {
            me: upper.clone(),
            pipes: vec![],
        }));
        agent.register(Box::new(Recorder {
            me: lower.clone(),
            pipes: vec![],
        }));
        (device, agent, upper, lower)
    }

    #[test]
    fn script_executes_primitives_and_reports_results() {
        let (mut device, mut agent, upper, lower) = setup();
        let script = WireMessage::Script {
            request: 1,
            primitives: vec![
                Primitive::ShowPotential,
                Primitive::CreatePipe(PipeSpec {
                    pipe: PipeId(1),
                    upper: upper.clone(),
                    lower: lower.clone(),
                    peer_upper: None,
                    peer_lower: None,
                    tradeoffs: vec![],
                    initiate: false,
                    resolved: BTreeMap::new(),
                }),
                Primitive::ShowActual,
            ],
        };
        let out = agent.handle(&mut device, &script);
        assert_eq!(out.len(), 1);
        match &out[0] {
            WireMessage::ScriptResult { request, results } => {
                assert_eq!(*request, 1);
                assert_eq!(results.len(), 3);
                assert!(
                    matches!(results[0], Ok(PrimitiveResult::Potential(ref v)) if v.len() == 2)
                );
                assert!(matches!(
                    results[1],
                    Ok(PrimitiveResult::PipeCreated(PipeId(1)))
                ));
                match &results[2] {
                    Ok(PrimitiveResult::Actual(map)) => {
                        assert!(map.values().any(|a| a.pipes.contains(&PipeId(1))));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        // Both modules saw the pipe; the blackboard has the attribute.
        assert!(agent.blackboard().contains_key("pipe.1.seen-by"));
    }

    #[test]
    fn unknown_module_is_an_error_not_a_panic() {
        let (mut device, mut agent, upper, _) = setup();
        let bogus = ModuleRef::new(ModuleKind::Gre, ModuleId(99), device.id);
        let script = WireMessage::Script {
            request: 2,
            primitives: vec![Primitive::CreatePipe(PipeSpec {
                pipe: PipeId(1),
                upper,
                lower: bogus,
                peer_upper: None,
                peer_lower: None,
                tradeoffs: vec![],
                initiate: false,
                resolved: BTreeMap::new(),
            })],
        };
        let out = agent.handle(&mut device, &script);
        match &out[0] {
            WireMessage::ScriptResult { results, .. } => assert!(results[0].is_err()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stage_validates_without_touching_state_and_commit_applies() {
        let (mut device, mut agent, upper, lower) = setup();
        let spec = PipeSpec {
            pipe: PipeId(5),
            upper: upper.clone(),
            lower: lower.clone(),
            peer_upper: None,
            peer_lower: None,
            tradeoffs: vec![],
            initiate: false,
            resolved: BTreeMap::new(),
        };
        let stage = WireMessage::Stage {
            txn: 9,
            primitives: vec![Primitive::CreatePipe(spec)],
        };
        let out = agent.handle(&mut device, &stage);
        assert!(matches!(
            &out[0],
            WireMessage::StageResult { txn: 9, errors } if errors.is_empty()
        ));
        // Nothing applied yet: the blackboard has no pipe attribute.
        assert!(!agent.blackboard().contains_key("pipe.5.seen-by"));
        assert_eq!(agent.staged_count(), 1);

        let out = agent.handle(&mut device, &WireMessage::Commit { txn: 9 });
        match &out[0] {
            WireMessage::CommitResult { txn: 9, results } => {
                assert!(matches!(
                    results[0],
                    Ok(PrimitiveResult::PipeCreated(PipeId(5)))
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(agent.blackboard().contains_key("pipe.5.seen-by"));
        assert_eq!(agent.staged_count(), 0);
    }

    #[test]
    fn stage_rejects_unknown_modules_and_abort_discards() {
        let (mut device, mut agent, upper, _) = setup();
        let bogus = ModuleRef::new(ModuleKind::Gre, ModuleId(99), device.id);
        let stage = WireMessage::Stage {
            txn: 4,
            primitives: vec![Primitive::CreatePipe(PipeSpec {
                pipe: PipeId(1),
                upper: upper.clone(),
                lower: bogus,
                peer_upper: None,
                peer_lower: None,
                tradeoffs: vec![],
                initiate: false,
                resolved: BTreeMap::new(),
            })],
        };
        let out = agent.handle(&mut device, &stage);
        assert!(matches!(
            &out[0],
            WireMessage::StageResult { txn: 4, errors } if errors.len() == 1
        ));
        assert_eq!(agent.staged_count(), 0);

        // Stage something valid, then abort it: committing afterwards fails.
        let ok = WireMessage::Stage {
            txn: 5,
            primitives: vec![Primitive::ShowActual],
        };
        agent.handle(&mut device, &ok);
        agent.handle(&mut device, &WireMessage::Abort { txn: 5 });
        assert_eq!(agent.staged_count(), 0);
        let out = agent.handle(&mut device, &WireMessage::Commit { txn: 5 });
        match &out[0] {
            WireMessage::CommitResult { results, .. } => assert!(results[0].is_err()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stage_batch_validates_per_segment_and_commit_batch_applies_per_goal() {
        use crate::primitives::ScriptSegment;
        let (mut device, mut agent, upper, lower) = setup();
        let pipe_spec = |pipe: u32, lower: ModuleRef| PipeSpec {
            pipe: PipeId(pipe),
            upper: upper.clone(),
            lower,
            peer_upper: None,
            peer_lower: None,
            tradeoffs: vec![],
            initiate: false,
            resolved: BTreeMap::new(),
        };
        let bogus = ModuleRef::new(ModuleKind::Gre, ModuleId(99), device.id);
        let stage = WireMessage::StageBatch {
            txn: 11,
            segments: vec![
                ScriptSegment {
                    goal: 1,
                    primitives: vec![Primitive::CreatePipe(pipe_spec(10, lower.clone()))],
                },
                ScriptSegment {
                    goal: 2,
                    primitives: vec![Primitive::CreatePipe(pipe_spec(20, bogus))],
                },
                ScriptSegment {
                    goal: 3,
                    primitives: vec![Primitive::CreatePipe(pipe_spec(30, lower.clone()))],
                },
            ],
        };
        let out = agent.handle(&mut device, &stage);
        match &out[0] {
            WireMessage::StageBatchResult { txn: 11, verdicts } => {
                assert_eq!(verdicts.len(), 3);
                assert!(verdicts[0].errors.is_empty());
                assert_eq!(
                    verdicts[1].errors.len(),
                    1,
                    "goal 2 references a bogus module"
                );
                assert!(verdicts[2].errors.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Only the valid segments are held; nothing touched the data plane.
        assert_eq!(agent.staged_segment_count(), 2);
        assert!(!agent.blackboard().contains_key("pipe.10.seen-by"));

        // Abort goal 3 (it failed staging elsewhere), commit the rest.
        agent.handle(
            &mut device,
            &WireMessage::AbortBatch {
                txn: 11,
                goals: vec![3],
            },
        );
        assert_eq!(agent.staged_segment_count(), 1);
        let out = agent.handle(
            &mut device,
            &WireMessage::CommitBatch {
                txn: 11,
                goals: vec![1, 3],
            },
        );
        match &out[0] {
            WireMessage::CommitBatchResult { txn: 11, segments } => {
                assert_eq!(segments.len(), 2);
                assert_eq!(segments[0].goal, 1);
                assert!(matches!(
                    segments[0].results[0],
                    Ok(PrimitiveResult::PipeCreated(PipeId(10)))
                ));
                // Goal 3's segment was aborted: its commit reports an error
                // instead of silently succeeding.
                assert_eq!(segments[1].goal, 3);
                assert!(segments[1].results[0].is_err());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(agent.blackboard().contains_key("pipe.10.seen-by"));
        assert!(!agent.blackboard().contains_key("pipe.30.seen-by"));
        assert_eq!(agent.staged_segment_count(), 0);
    }

    #[test]
    fn flow_polls_answer_and_subscriptions_push_on_change() {
        let (mut device, mut agent, _, _) = setup();
        device.stats.flows.entry(7).or_default().forwarded = 2;

        // Pull: a PollFlows is answered with the tag's counters.
        let out = agent.handle(
            &mut device,
            &WireMessage::PollFlows {
                request: 9,
                tags: vec![7, 8],
            },
        );
        match &out[0] {
            WireMessage::FlowReport { request: 9, flows } => {
                assert_eq!(flows.len(), 2);
                assert_eq!(flows[0].0, 7);
                assert_eq!(flows[0].1.forwarded, 2);
                assert!(flows[1].1.is_empty(), "unseen tag reports zeroes");
            }
            other => panic!("unexpected {other:?}"),
        }

        // Push: subscribing baselines the tag; only later changes push.
        let out = agent.handle(&mut device, &WireMessage::SubscribeFlows { tags: vec![7] });
        assert!(out.is_empty(), "subscribing alone pushes nothing");
        let out = agent.handle(
            &mut device,
            &WireMessage::Script {
                request: 1,
                primitives: vec![],
            },
        );
        assert_eq!(out.len(), 1, "no change, no push: {out:?}");
        device.stats.flows.entry(7).or_default().forwarded = 5;
        let out = agent.handle(
            &mut device,
            &WireMessage::Script {
                request: 2,
                primitives: vec![],
            },
        );
        assert!(
            out.iter().any(|m| matches!(m,
                WireMessage::FlowReport { request: 0, flows }
                    if flows == &vec![(7, device.stats.flow(7))])),
            "a watched change pushes an unsolicited report: {out:?}"
        );
        // The push re-baselines: handling another message pushes nothing.
        let out = agent.handle(
            &mut device,
            &WireMessage::Script {
                request: 3,
                primitives: vec![],
            },
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn announcement_carries_name_and_neighbors() {
        let (_, agent, _, _) = setup();
        let msg = agent.announcement(vec![(PortId(0), DeviceId::from_raw(9), PortId(1))]);
        match msg {
            WireMessage::Announce(a) => {
                assert_eq!(a.device_name, "R");
                assert_eq!(a.neighbors.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
