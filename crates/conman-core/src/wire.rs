//! Wire codecs for the management channel: vendored JSON everywhere, plus a
//! compact binary framing for the batched-transaction hot path.
//!
//! The paper's Table VI parity experiments (and every diagnostic tool that
//! reads payloads) keep the self-describing JSON encoding, which stays the
//! default.  Reconcile passes at scale, however, spend a startling share of
//! their wall time serialising, re-parsing and re-validating the
//! StageBatch/CommitBatch value trees — once per device, every pass.  The
//! [`WireCodec::Binary`] codec replaces exactly those six batch messages
//! with a length-prefixed binary layout (see `mgmt_channel::codec`) behind
//! the existing [`WireMessage`] enum: the channels, the channel tap and the
//! `conman-analyze` models never see the difference, and
//! [`WireMessage::decode`] auto-detects the codec from the first payload
//! byte (binary tags are `>= 0x80`; JSON starts with `{`).
//!
//! The `StageBatch` layout additionally length-prefixes every goal segment,
//! so the receiving agent can walk borrowed segment slices and validate
//! primitives *as they decode* ([`StageBatchView`]) instead of
//! materialising the whole message first.

use crate::abstraction::ModuleAbstraction;
use crate::ids::{ModuleId, ModuleKind, ModuleRef, PipeId};
use crate::primitives::{
    ComponentRef, EnvelopeKind, FilterSpec, ModuleActual, ModuleEnvelope, PipeSpec, Primitive,
    PrimitiveResult, ScriptSegment, SegmentCommit, SegmentVerdict, SwitchSpec, TradeoffChoice,
    WireMessage,
};
use mgmt_channel::codec::{self, Reader, Writer};
use netsim::device::DeviceId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which encoding the NM and its agents put on the management channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WireCodec {
    /// Self-describing vendored JSON for every message — the paper-parity
    /// default; byte counts feed the Table VI experiments.
    #[default]
    Json,
    /// Length-prefixed binary framing for the six batch messages
    /// (`StageBatch`, `StageBatchResult`, `CommitBatch`,
    /// `CommitBatchResult`, `AbortBatch`, `RelayBatch`); everything else
    /// stays JSON.  Decoding auto-detects, so mixed traffic is fine.
    Binary,
}

impl WireCodec {
    /// Label for experiment output (`"json"` / `"binary"`).
    pub fn label(&self) -> &'static str {
        match self {
            WireCodec::Json => "json",
            WireCodec::Binary => "binary",
        }
    }
}

/// Is this payload a binary-coded `StageBatch`?  The runtime's receive path
/// uses this to route the payload to the agent's in-place validator without
/// materialising a [`WireMessage`] first.
pub fn is_binary_stage_batch(payload: &[u8]) -> bool {
    payload.first() == Some(&codec::TAG_STAGE_BATCH)
}

/// Is this message one of the batched-transaction messages whose encoded
/// size the `txn.encode_bytes` counter accounts?
pub fn is_batch_txn_message(msg: &WireMessage) -> bool {
    matches!(
        msg,
        WireMessage::StageBatch { .. }
            | WireMessage::StageBatchResult { .. }
            | WireMessage::CommitBatch { .. }
            | WireMessage::CommitBatchResult { .. }
            | WireMessage::AbortBatch { .. }
    )
}

impl WireMessage {
    /// Encode under the given codec: [`WireCodec::Binary`] hand-rolls the
    /// six batch messages, everything else (and everything under
    /// [`WireCodec::Json`]) serialises as before via [`WireMessage::encode`].
    pub fn encode_with(&self, codec: WireCodec) -> Vec<u8> {
        if codec == WireCodec::Json {
            return self.encode();
        }
        match self {
            WireMessage::StageBatch { txn, segments } => {
                let borrowed: Vec<(u64, &[Primitive])> = segments
                    .iter()
                    .map(|s| (s.goal, s.primitives.as_slice()))
                    .collect();
                encode_stage_batch(*txn, &borrowed)
            }
            WireMessage::StageBatchResult { txn, verdicts } => {
                let mut w = Writer::with_tag(codec::TAG_STAGE_BATCH_RESULT);
                w.put_u64(*txn);
                w.put_u32(verdicts.len() as u32);
                for v in verdicts {
                    w.put_u64(v.goal);
                    w.put_u32(v.errors.len() as u32);
                    for e in &v.errors {
                        w.put_str(e);
                    }
                }
                w.finish()
            }
            WireMessage::CommitBatch { txn, goals } => {
                encode_goal_list(codec::TAG_COMMIT_BATCH, *txn, goals)
            }
            WireMessage::CommitBatchResult { txn, segments } => {
                let mut w = Writer::with_tag(codec::TAG_COMMIT_BATCH_RESULT);
                w.put_u64(*txn);
                w.put_u32(segments.len() as u32);
                for s in segments {
                    w.put_u64(s.goal);
                    w.put_u32(s.results.len() as u32);
                    for r in &s.results {
                        put_commit_result(&mut w, r);
                    }
                }
                w.finish()
            }
            WireMessage::AbortBatch { txn, goals } => {
                encode_goal_list(codec::TAG_ABORT_BATCH, *txn, goals)
            }
            WireMessage::RelayBatch { envelopes } => {
                let mut w = Writer::with_tag(codec::TAG_RELAY_BATCH);
                w.put_u32(envelopes.len() as u32);
                for env in envelopes {
                    put_module_ref(&mut w, &env.from);
                    put_module_ref(&mut w, &env.to);
                    w.put_u8(match env.kind {
                        EnvelopeKind::Convey => 0,
                        EnvelopeKind::FieldQuery => 1,
                        EnvelopeKind::FieldResponse => 2,
                    });
                    // The body is opaque, protocol-specific JSON by design
                    // (§II-D) — embed it as bytes rather than inventing a
                    // schema for something the NM never interprets.
                    w.put_bytes(&serde_json::to_vec(&env.body).expect("json values serialize"));
                }
                w.finish()
            }
            _ => self.encode(),
        }
    }
}

/// Encode a `StageBatch` directly from borrowed per-goal primitive slices —
/// the zero-copy path the batch executor uses, skipping the owned
/// [`ScriptSegment`] clones entirely.  Layout: tag, `txn`, segment count,
/// then per segment its goal id and a length-prefixed primitive block the
/// agent can validate in place.
pub fn encode_stage_batch(txn: u64, segments: &[(u64, &[Primitive])]) -> Vec<u8> {
    let mut w = Writer::with_tag(codec::TAG_STAGE_BATCH);
    w.put_u64(txn);
    w.put_u32(segments.len() as u32);
    for (goal, primitives) in segments {
        w.put_u64(*goal);
        let at = w.len();
        w.put_u32(0); // length prefix, patched below
        w.put_u32(primitives.len() as u32);
        for p in *primitives {
            put_primitive(&mut w, p);
        }
        w.patch_u32(at, (w.len() - at - 4) as u32);
    }
    w.finish()
}

/// Decode any payload: binary tags are dispatched to the binary decoders,
/// everything else is treated as JSON.  Returns `None` for malformed input
/// of either codec.
pub fn decode(bytes: &[u8]) -> Option<WireMessage> {
    if !codec::is_binary(bytes) {
        return serde_json::from_slice(bytes).ok();
    }
    let mut r = Reader::new(bytes);
    let msg = match r.u8()? {
        codec::TAG_STAGE_BATCH => {
            let view = StageBatchView::parse(bytes)?;
            let mut segments = Vec::with_capacity(view.segments.len());
            for seg in view.segments() {
                let mut primitives = Vec::new();
                for p in seg.primitives() {
                    primitives.push(p.ok()?);
                }
                segments.push(ScriptSegment {
                    goal: seg.goal,
                    primitives,
                });
            }
            WireMessage::StageBatch {
                txn: view.txn,
                segments,
            }
        }
        codec::TAG_STAGE_BATCH_RESULT => {
            let txn = r.u64()?;
            let n = r.u32()?;
            let mut verdicts = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let goal = r.u64()?;
                let nerr = r.u32()?;
                let mut errors = Vec::with_capacity(nerr as usize);
                for _ in 0..nerr {
                    errors.push(r.str()?.to_string());
                }
                verdicts.push(SegmentVerdict { goal, errors });
            }
            WireMessage::StageBatchResult { txn, verdicts }
        }
        codec::TAG_COMMIT_BATCH => {
            let (txn, goals) = read_goal_list(&mut r)?;
            WireMessage::CommitBatch { txn, goals }
        }
        codec::TAG_COMMIT_BATCH_RESULT => {
            let txn = r.u64()?;
            let n = r.u32()?;
            let mut segments = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let goal = r.u64()?;
                let nres = r.u32()?;
                let mut results = Vec::with_capacity(nres as usize);
                for _ in 0..nres {
                    results.push(read_commit_result(&mut r)?);
                }
                segments.push(SegmentCommit { goal, results });
            }
            WireMessage::CommitBatchResult { txn, segments }
        }
        codec::TAG_ABORT_BATCH => {
            let (txn, goals) = read_goal_list(&mut r)?;
            WireMessage::AbortBatch { txn, goals }
        }
        codec::TAG_RELAY_BATCH => {
            let n = r.u32()?;
            let mut envelopes = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let from = read_module_ref(&mut r)?;
                let to = read_module_ref(&mut r)?;
                let kind = match r.u8()? {
                    0 => EnvelopeKind::Convey,
                    1 => EnvelopeKind::FieldQuery,
                    2 => EnvelopeKind::FieldResponse,
                    _ => return None,
                };
                let body = serde_json::from_slice(r.bytes()?).ok()?;
                envelopes.push(ModuleEnvelope {
                    from,
                    to,
                    kind,
                    body,
                });
            }
            WireMessage::RelayBatch { envelopes }
        }
        _ => return None,
    };
    Some(msg)
}

/// A borrowed view over a binary `StageBatch` payload: the transaction id
/// plus one `(goal, primitive-block)` slice per segment, sliced straight
/// out of the wire bytes.  The agent walks each segment's
/// [`SegmentView::primitives`] stream and validates primitives as they
/// decode — no intermediate message tree, no per-segment re-parse.
#[derive(Debug)]
pub struct StageBatchView<'a> {
    /// The transaction id shared by every segment.
    pub txn: u64,
    segments: Vec<(u64, &'a [u8])>,
}

impl<'a> StageBatchView<'a> {
    /// Parse the framing of a binary `StageBatch` payload.  Segment
    /// *contents* are not decoded here — only the length-prefixed slices
    /// are located — so a corrupt primitive surfaces later, from the
    /// segment's own stream, as a per-segment error rather than a dropped
    /// message.
    pub fn parse(payload: &'a [u8]) -> Option<Self> {
        let mut r = Reader::new(payload);
        if r.u8()? != codec::TAG_STAGE_BATCH {
            return None;
        }
        let txn = r.u64()?;
        let n = r.u32()?;
        let mut segments = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let goal = r.u64()?;
            let block = r.bytes()?;
            segments.push((goal, block));
        }
        if !r.is_exhausted() {
            return None;
        }
        Some(StageBatchView { txn, segments })
    }

    /// Number of segments in the batch.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Iterate the segments as borrowed views.
    pub fn segments(&self) -> impl Iterator<Item = SegmentView<'a>> + '_ {
        self.segments
            .iter()
            .map(|(goal, bytes)| SegmentView { goal: *goal, bytes })
    }
}

/// One goal's segment inside a [`StageBatchView`]: the goal id and the
/// still-encoded primitive block.
#[derive(Debug, Clone, Copy)]
pub struct SegmentView<'a> {
    /// The owning goal (`GoalId.0`).
    pub goal: u64,
    bytes: &'a [u8],
}

/// Error yielded by [`SegmentView::primitives`] when a segment's primitive
/// block is truncated or corrupt; the agent turns it into a per-segment
/// staging error instead of dropping the whole batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MalformedSegment;

impl<'a> SegmentView<'a> {
    /// Stream the segment's primitives, decoding each one lazily from the
    /// borrowed block.  After a [`MalformedSegment`] error the stream ends.
    pub fn primitives(&self) -> impl Iterator<Item = Result<Primitive, MalformedSegment>> + 'a {
        let mut r = Reader::new(self.bytes);
        let remaining = r.u32();
        PrimitiveStream {
            r,
            remaining: remaining.unwrap_or(0),
            // A block too short to carry its own count is malformed from
            // the first pull.
            poisoned: remaining.is_none(),
        }
    }
}

struct PrimitiveStream<'a> {
    r: Reader<'a>,
    remaining: u32,
    poisoned: bool,
}

impl Iterator for PrimitiveStream<'_> {
    type Item = Result<Primitive, MalformedSegment>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.poisoned {
            self.poisoned = false;
            return Some(Err(MalformedSegment));
        }
        if self.remaining == 0 {
            // Strictness: trailing bytes after the declared count are as
            // corrupt as missing ones.
            if !self.r.is_exhausted() {
                self.r = Reader::new(&[]);
                return Some(Err(MalformedSegment));
            }
            return None;
        }
        self.remaining -= 1;
        match read_primitive(&mut self.r) {
            Some(p) => Some(Ok(p)),
            None => {
                self.remaining = 0;
                self.r = Reader::new(&[]);
                Some(Err(MalformedSegment))
            }
        }
    }
}

// ---- field-level encoders/decoders ------------------------------------

fn encode_goal_list(tag: u8, txn: u64, goals: &[u64]) -> Vec<u8> {
    let mut w = Writer::with_tag(tag);
    w.put_u64(txn);
    w.put_u32(goals.len() as u32);
    for g in goals {
        w.put_u64(*g);
    }
    w.finish()
}

fn read_goal_list(r: &mut Reader<'_>) -> Option<(u64, Vec<u64>)> {
    let txn = r.u64()?;
    let n = r.u32()?;
    let mut goals = Vec::with_capacity(n as usize);
    for _ in 0..n {
        goals.push(r.u64()?);
    }
    Some((txn, goals))
}

fn put_module_ref(w: &mut Writer, m: &ModuleRef) {
    match &m.kind {
        ModuleKind::Eth => w.put_u8(0),
        ModuleKind::Ip => w.put_u8(1),
        ModuleKind::Gre => w.put_u8(2),
        ModuleKind::Mpls => w.put_u8(3),
        ModuleKind::Vlan => w.put_u8(4),
        ModuleKind::Udp => w.put_u8(5),
        ModuleKind::Tcp => w.put_u8(6),
        ModuleKind::App(name) => {
            w.put_u8(7);
            w.put_str(name);
        }
        ModuleKind::Control(name) => {
            w.put_u8(8);
            w.put_str(name);
        }
    }
    w.put_u32(m.module.0);
    w.put_u64(m.device.as_u64());
}

fn read_module_ref(r: &mut Reader<'_>) -> Option<ModuleRef> {
    let kind = match r.u8()? {
        0 => ModuleKind::Eth,
        1 => ModuleKind::Ip,
        2 => ModuleKind::Gre,
        3 => ModuleKind::Mpls,
        4 => ModuleKind::Vlan,
        5 => ModuleKind::Udp,
        6 => ModuleKind::Tcp,
        7 => ModuleKind::App(r.str()?.to_string()),
        8 => ModuleKind::Control(r.str()?.to_string()),
        _ => return None,
    };
    let module = ModuleId(r.u32()?);
    let device = DeviceId::from_raw(r.u64()?);
    Some(ModuleRef::new(kind, module, device))
}

fn put_opt_module_ref(w: &mut Writer, m: &Option<ModuleRef>) {
    match m {
        Some(m) => {
            w.put_u8(1);
            put_module_ref(w, m);
        }
        None => w.put_u8(0),
    }
}

fn read_opt_module_ref(r: &mut Reader<'_>) -> Option<Option<ModuleRef>> {
    match r.u8()? {
        0 => Some(None),
        1 => Some(Some(read_module_ref(r)?)),
        _ => None,
    }
}

fn put_opt_str(w: &mut Writer, s: &Option<String>) {
    match s {
        Some(s) => {
            w.put_u8(1);
            w.put_str(s);
        }
        None => w.put_u8(0),
    }
}

fn read_opt_str(r: &mut Reader<'_>) -> Option<Option<String>> {
    match r.u8()? {
        0 => Some(None),
        1 => Some(Some(r.str()?.to_string())),
        _ => None,
    }
}

fn put_resolved(w: &mut Writer, resolved: &BTreeMap<String, String>) {
    w.put_u32(resolved.len() as u32);
    for (k, v) in resolved {
        w.put_str(k);
        w.put_str(v);
    }
}

fn read_resolved(r: &mut Reader<'_>) -> Option<BTreeMap<String, String>> {
    let n = r.u32()?;
    let mut map = BTreeMap::new();
    for _ in 0..n {
        let k = r.str()?.to_string();
        let v = r.str()?.to_string();
        map.insert(k, v);
    }
    Some(map)
}

fn tradeoff_tag(t: TradeoffChoice) -> u8 {
    match t {
        TradeoffChoice::InOrderDelivery => 0,
        TradeoffChoice::LowErrorRate => 1,
        TradeoffChoice::LowDelay => 2,
    }
}

fn read_tradeoff(r: &mut Reader<'_>) -> Option<TradeoffChoice> {
    match r.u8()? {
        0 => Some(TradeoffChoice::InOrderDelivery),
        1 => Some(TradeoffChoice::LowErrorRate),
        2 => Some(TradeoffChoice::LowDelay),
        _ => None,
    }
}

fn put_primitive(w: &mut Writer, p: &Primitive) {
    match p {
        Primitive::ShowPotential => w.put_u8(0),
        Primitive::ShowActual => w.put_u8(1),
        Primitive::CreatePipe(spec) => {
            w.put_u8(2);
            w.put_u32(spec.pipe.0);
            put_module_ref(w, &spec.upper);
            put_module_ref(w, &spec.lower);
            put_opt_module_ref(w, &spec.peer_upper);
            put_opt_module_ref(w, &spec.peer_lower);
            w.put_u32(spec.tradeoffs.len() as u32);
            for t in &spec.tradeoffs {
                w.put_u8(tradeoff_tag(*t));
            }
            w.put_u8(u8::from(spec.initiate));
            put_resolved(w, &spec.resolved);
        }
        Primitive::CreateSwitch(spec) => {
            w.put_u8(3);
            put_module_ref(w, &spec.module);
            w.put_u32(spec.in_pipe.0);
            w.put_u32(spec.out_pipe.0);
            put_opt_str(w, &spec.dst_class);
            put_opt_str(w, &spec.gateway);
            put_resolved(w, &spec.resolved);
        }
        Primitive::CreateFilter(spec) => {
            w.put_u8(4);
            put_module_ref(w, &spec.module);
            put_module_ref(w, &spec.from);
            put_module_ref(w, &spec.to);
            put_resolved(w, &spec.resolved);
        }
        Primitive::Delete(c) => {
            w.put_u8(5);
            match c {
                ComponentRef::Pipe(p) => {
                    w.put_u8(0);
                    w.put_u32(p.0);
                }
                ComponentRef::SwitchRule(m, i, o) => {
                    w.put_u8(1);
                    put_module_ref(w, m);
                    w.put_u32(i.0);
                    w.put_u32(o.0);
                }
                ComponentRef::Filter(m, f, t) => {
                    w.put_u8(2);
                    put_module_ref(w, m);
                    put_module_ref(w, f);
                    put_module_ref(w, t);
                }
            }
        }
    }
}

fn read_primitive(r: &mut Reader<'_>) -> Option<Primitive> {
    Some(match r.u8()? {
        0 => Primitive::ShowPotential,
        1 => Primitive::ShowActual,
        2 => {
            let pipe = PipeId(r.u32()?);
            let upper = read_module_ref(r)?;
            let lower = read_module_ref(r)?;
            let peer_upper = read_opt_module_ref(r)?;
            let peer_lower = read_opt_module_ref(r)?;
            let n = r.u32()?;
            let mut tradeoffs = Vec::with_capacity(n as usize);
            for _ in 0..n {
                tradeoffs.push(read_tradeoff(r)?);
            }
            let initiate = match r.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            let resolved = read_resolved(r)?;
            Primitive::CreatePipe(PipeSpec {
                pipe,
                upper,
                lower,
                peer_upper,
                peer_lower,
                tradeoffs,
                initiate,
                resolved,
            })
        }
        3 => {
            let module = read_module_ref(r)?;
            let in_pipe = PipeId(r.u32()?);
            let out_pipe = PipeId(r.u32()?);
            let dst_class = read_opt_str(r)?;
            let gateway = read_opt_str(r)?;
            let resolved = read_resolved(r)?;
            Primitive::CreateSwitch(SwitchSpec {
                module,
                in_pipe,
                out_pipe,
                dst_class,
                gateway,
                resolved,
            })
        }
        4 => {
            let module = read_module_ref(r)?;
            let from = read_module_ref(r)?;
            let to = read_module_ref(r)?;
            let resolved = read_resolved(r)?;
            Primitive::CreateFilter(FilterSpec {
                module,
                from,
                to,
                resolved,
            })
        }
        5 => Primitive::Delete(match r.u8()? {
            0 => ComponentRef::Pipe(PipeId(r.u32()?)),
            1 => {
                let m = read_module_ref(r)?;
                let i = PipeId(r.u32()?);
                let o = PipeId(r.u32()?);
                ComponentRef::SwitchRule(m, i, o)
            }
            2 => {
                let m = read_module_ref(r)?;
                let f = read_module_ref(r)?;
                let t = read_module_ref(r)?;
                ComponentRef::Filter(m, f, t)
            }
            _ => return None,
        }),
        _ => return None,
    })
}

fn put_commit_result(w: &mut Writer, r: &Result<PrimitiveResult, String>) {
    match r {
        Ok(res) => {
            w.put_u8(0);
            match res {
                PrimitiveResult::Done => w.put_u8(0),
                PrimitiveResult::PipeCreated(p) => {
                    w.put_u8(1);
                    w.put_u32(p.0);
                }
                // Rare in batch traffic and deeply structured: embed the
                // payload as JSON bytes rather than schema-ing the whole
                // abstraction tree into the binary layout.
                PrimitiveResult::Potential(mods) => {
                    w.put_u8(2);
                    w.put_bytes(&serde_json::to_vec(mods).expect("abstractions serialize"));
                }
                PrimitiveResult::Actual(map) => {
                    w.put_u8(3);
                    w.put_bytes(&serde_json::to_vec(map).expect("actuals serialize"));
                }
            }
        }
        Err(e) => {
            w.put_u8(1);
            w.put_str(e);
        }
    }
}

fn read_commit_result(r: &mut Reader<'_>) -> Option<Result<PrimitiveResult, String>> {
    match r.u8()? {
        0 => Some(Ok(match r.u8()? {
            0 => PrimitiveResult::Done,
            1 => PrimitiveResult::PipeCreated(PipeId(r.u32()?)),
            2 => {
                let mods: Vec<ModuleAbstraction> = serde_json::from_slice(r.bytes()?).ok()?;
                PrimitiveResult::Potential(mods)
            }
            3 => {
                let map: BTreeMap<String, ModuleActual> =
                    serde_json::from_slice(r.bytes()?).ok()?;
                PrimitiveResult::Actual(map)
            }
            _ => return None,
        })),
        1 => Some(Err(r.str()?.to_string())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ModuleId;

    fn mref(kind: ModuleKind, m: u32, d: u64) -> ModuleRef {
        ModuleRef::new(kind, ModuleId(m), DeviceId::from_raw(d))
    }

    fn rich_segment(goal: u64) -> ScriptSegment {
        ScriptSegment {
            goal,
            primitives: vec![
                Primitive::CreatePipe(PipeSpec {
                    pipe: PipeId(41),
                    upper: mref(ModuleKind::Gre, 1, 1),
                    lower: mref(ModuleKind::App("HTTP".into()), 2, 1),
                    peer_upper: Some(mref(ModuleKind::Gre, 1, 3)),
                    peer_lower: None,
                    tradeoffs: vec![TradeoffChoice::InOrderDelivery, TradeoffChoice::LowDelay],
                    initiate: true,
                    resolved: [("C1-S2".to_string(), "10.0.2.0/24".to_string())].into(),
                }),
                Primitive::CreateSwitch(SwitchSpec {
                    module: mref(ModuleKind::Ip, 3, 1),
                    in_pipe: PipeId(41),
                    out_pipe: PipeId(42),
                    dst_class: Some("dst:C1-S2".into()),
                    gateway: None,
                    resolved: BTreeMap::new(),
                }),
                Primitive::CreateFilter(FilterSpec {
                    module: mref(ModuleKind::Control("IKE".into()), 4, 1),
                    from: mref(ModuleKind::Eth, 5, 1),
                    to: mref(ModuleKind::Eth, 6, 2),
                    resolved: BTreeMap::new(),
                }),
                Primitive::Delete(ComponentRef::SwitchRule(
                    mref(ModuleKind::Mpls, 7, 1),
                    PipeId(1),
                    PipeId(2),
                )),
                Primitive::ShowActual,
            ],
        }
    }

    #[test]
    fn binary_roundtrip_every_batch_message() {
        let env = ModuleEnvelope {
            from: mref(ModuleKind::Mpls, 3, 1),
            to: mref(ModuleKind::Mpls, 3, 2),
            kind: EnvelopeKind::FieldResponse,
            body: serde_json::json!({"mpls": {"label": 10001}}),
        };
        for msg in [
            WireMessage::StageBatch {
                txn: 7,
                segments: vec![
                    rich_segment(1),
                    ScriptSegment {
                        goal: 2,
                        primitives: vec![],
                    },
                ],
            },
            WireMessage::StageBatchResult {
                txn: 7,
                verdicts: vec![
                    SegmentVerdict {
                        goal: 1,
                        errors: vec![],
                    },
                    SegmentVerdict {
                        goal: 2,
                        errors: vec!["no module".into()],
                    },
                ],
            },
            WireMessage::CommitBatch {
                txn: 7,
                goals: vec![1, 2],
            },
            WireMessage::CommitBatchResult {
                txn: 7,
                segments: vec![SegmentCommit {
                    goal: 1,
                    results: vec![
                        Ok(PrimitiveResult::PipeCreated(PipeId(41))),
                        Ok(PrimitiveResult::Done),
                        Err("boom".into()),
                    ],
                }],
            },
            WireMessage::AbortBatch {
                txn: 7,
                goals: vec![2],
            },
            WireMessage::RelayBatch {
                envelopes: vec![env.clone(), env],
            },
        ] {
            let bytes = msg.encode_with(WireCodec::Binary);
            assert!(
                mgmt_channel::codec::is_binary(&bytes),
                "batch messages must use the binary framing"
            );
            let back = WireMessage::decode(&bytes).expect("binary payload decodes");
            assert_eq!(back, msg);
            // And the JSON encoding of the same message still round-trips.
            assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn non_batch_messages_stay_json_under_binary_codec() {
        let msg = WireMessage::Commit { txn: 3 };
        let bytes = msg.encode_with(WireCodec::Binary);
        assert!(!mgmt_channel::codec::is_binary(&bytes));
        assert_eq!(WireMessage::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn binary_is_smaller_than_json_for_batches() {
        let msg = WireMessage::StageBatch {
            txn: 9,
            segments: (0..32).map(rich_segment).collect(),
        };
        let json = msg.encode_with(WireCodec::Json).len();
        let binary = msg.encode_with(WireCodec::Binary).len();
        assert!(
            binary * 2 < json,
            "binary framing should be less than half the JSON size ({binary} vs {json})"
        );
    }

    #[test]
    fn stage_batch_view_walks_segments_in_place() {
        let seg = rich_segment(5);
        let borrowed: Vec<(u64, &[Primitive])> = vec![(5, &seg.primitives), (6, &[])];
        let bytes = encode_stage_batch(99, &borrowed);
        assert!(is_binary_stage_batch(&bytes));

        let view = StageBatchView::parse(&bytes).expect("framing parses");
        assert_eq!(view.txn, 99);
        assert_eq!(view.segment_count(), 2);
        let segs: Vec<_> = view.segments().collect();
        assert_eq!(segs[0].goal, 5);
        let decoded: Result<Vec<_>, _> = segs[0].primitives().collect();
        assert_eq!(decoded.unwrap(), seg.primitives);
        assert_eq!(segs[1].primitives().count(), 0);
    }

    #[test]
    fn corrupt_segments_fail_per_segment_not_per_batch() {
        let seg = rich_segment(5);
        let borrowed: Vec<(u64, &[Primitive])> = vec![(5, &seg.primitives)];
        let mut bytes = encode_stage_batch(3, &borrowed);
        // Corrupt the trailing primitive tag (`ShowActual`): the framing
        // still parses, the primitive stream reports the corruption.
        let last = bytes.len() - 1;
        bytes[last] = 0xFF;
        let view = StageBatchView::parse(&bytes).expect("framing still parses");
        let seg = view.segments().next().unwrap();
        assert!(seg.primitives().any(|p| p.is_err()));
        // The generic decoder rejects the whole message, like bad JSON.
        assert!(WireMessage::decode(&bytes).is_none());
    }

    #[test]
    fn truncated_binary_payloads_are_rejected() {
        let msg = WireMessage::CommitBatch {
            txn: 1,
            goals: vec![1, 2, 3],
        };
        let bytes = msg.encode_with(WireCodec::Binary);
        for cut in 1..bytes.len() {
            assert!(
                WireMessage::decode(&bytes[..cut]).is_none(),
                "truncation at {cut} must not decode"
            );
        }
    }
}
