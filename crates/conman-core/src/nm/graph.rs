//! The potential-connectivity graph (Figure 5): modules are nodes, possible
//! up-down pipes and discovered physical pipes are edges.

use crate::abstraction::ModuleAbstraction;
use crate::ids::{ModuleKind, ModuleRef};
use netsim::device::{DeviceId, PortId};
use std::collections::BTreeMap;

/// The potential connectivity graph the NM builds from showPotential answers
/// and physical-connectivity announcements.
#[derive(Debug, Default)]
pub struct PotentialGraph {
    /// Module abstractions indexed by module reference.
    pub modules: BTreeMap<ModuleRef, ModuleAbstraction>,
    /// Possible up pipes: for module M, the modules that could sit above it.
    pub up_neighbors: BTreeMap<ModuleRef, Vec<ModuleRef>>,
    /// Possible down pipes: for module M, the modules that could sit below it.
    pub down_neighbors: BTreeMap<ModuleRef, Vec<ModuleRef>>,
    /// Physical pipes: for an ETH-like module, the ETH-like modules on
    /// adjacent devices reachable over a physical link.
    pub phys_neighbors: BTreeMap<ModuleRef, Vec<ModuleRef>>,
}

impl PotentialGraph {
    /// Build the graph.
    pub fn build(
        abstractions: &BTreeMap<DeviceId, Vec<ModuleAbstraction>>,
        adjacency: &BTreeMap<DeviceId, Vec<(PortId, DeviceId, PortId)>>,
    ) -> Self {
        let mut graph = PotentialGraph::default();
        for modules in abstractions.values() {
            for m in modules {
                graph.modules.insert(m.name.clone(), m.clone());
            }
        }

        // Intra-device up/down pipe candidates.
        for modules in abstractions.values() {
            for lower in modules {
                for upper in modules {
                    if lower.name == upper.name {
                        continue;
                    }
                    if lower.can_connect_up(&upper.name.kind)
                        && upper.can_connect_down(&lower.name.kind)
                    {
                        graph
                            .up_neighbors
                            .entry(lower.name.clone())
                            .or_default()
                            .push(upper.name.clone());
                        graph
                            .down_neighbors
                            .entry(upper.name.clone())
                            .or_default()
                            .push(lower.name.clone());
                    }
                }
            }
        }

        // Physical pipes: match (device, port) adjacency with the ports the
        // ETH-like modules advertise.
        let module_on_port = |device: DeviceId, port: PortId| -> Option<ModuleRef> {
            abstractions.get(&device).and_then(|mods| {
                mods.iter()
                    .find(|m| m.physical_pipes.iter().any(|p| p.port == port))
                    .map(|m| m.name.clone())
            })
        };
        for (device, neighbors) in adjacency {
            for (port, peer_device, peer_port) in neighbors {
                let (Some(local), Some(remote)) = (
                    module_on_port(*device, *port),
                    module_on_port(*peer_device, *peer_port),
                ) else {
                    continue;
                };
                graph.phys_neighbors.entry(local).or_default().push(remote);
            }
        }
        // Deduplicate and sort for determinism.
        for v in graph
            .up_neighbors
            .values_mut()
            .chain(graph.down_neighbors.values_mut())
            .chain(graph.phys_neighbors.values_mut())
        {
            v.sort();
            v.dedup();
        }
        graph
    }

    /// The abstraction of a module.
    pub fn abstraction(&self, m: &ModuleRef) -> Option<&ModuleAbstraction> {
        self.modules.get(m)
    }

    /// Modules that could sit above `m` (up-pipe candidates).
    pub fn ups(&self, m: &ModuleRef) -> &[ModuleRef] {
        self.up_neighbors.get(m).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Modules that could sit below `m` (down-pipe candidates).
    pub fn downs(&self, m: &ModuleRef) -> &[ModuleRef] {
        self.down_neighbors.get(m).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Modules reachable from `m` over a physical pipe.
    pub fn phys(&self, m: &ModuleRef) -> &[ModuleRef] {
        self.phys_neighbors.get(m).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of module nodes.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Total number of potential pipe edges (up-down plus physical).
    pub fn edge_count(&self) -> usize {
        // up/down edges are stored twice (once per direction); physical are
        // stored once per endpoint.
        self.up_neighbors.values().map(Vec::len).sum::<usize>()
            + self.phys_neighbors.values().map(Vec::len).sum::<usize>() / 2
    }

    /// Render the per-device sub-graph (Figure 5) as text lines:
    /// `IP(g) -> GRE(l)` meaning an up pipe from g's perspective.
    pub fn render_device_subgraph(&self, device: DeviceId) -> Vec<String> {
        let mut out = Vec::new();
        for (m, ups) in &self.up_neighbors {
            if m.device != device {
                continue;
            }
            for u in ups {
                out.push(format!("{} --up--> {}", m, u));
            }
        }
        for (m, phys) in &self.phys_neighbors {
            if m.device != device {
                continue;
            }
            for p in phys {
                out.push(format!("{} --phys--> {}", m, p));
            }
        }
        let mods: Vec<&ModuleRef> = self.modules.keys().filter(|m| m.device == device).collect();
        for m in mods {
            let a = &self.modules[m];
            if !a.switch.kinds.is_empty() {
                out.push(format!(
                    "{} switch: {}",
                    m,
                    a.switch
                        .kinds
                        .iter()
                        .map(|k| k.notation())
                        .collect::<Vec<_>>()
                        .join(",")
                ));
            }
        }
        out.sort();
        out
    }

    /// Modules of a given kind on a device.
    pub fn modules_of_kind(&self, device: DeviceId, kind: &ModuleKind) -> Vec<ModuleRef> {
        self.modules
            .keys()
            .filter(|m| m.device == device && m.kind == *kind)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::{SwitchKind, SwitchStateSource};
    use crate::ids::ModuleId;

    fn module(
        kind: ModuleKind,
        id: u32,
        device: u64,
        up: Vec<ModuleKind>,
        down: Vec<ModuleKind>,
        port: Option<u32>,
    ) -> ModuleAbstraction {
        let mut a = ModuleAbstraction::empty(ModuleRef::new(
            kind,
            ModuleId(id),
            DeviceId::from_raw(device),
        ));
        a.up_connectable = up;
        a.down_connectable = down;
        a.switch.kinds = vec![SwitchKind::UpDown, SwitchKind::DownUp];
        a.switch.state_source = SwitchStateSource::GeneratedLocally;
        if let Some(p) = port {
            a.physical_pipes.push(crate::abstraction::PhysicalPipeInfo {
                port: PortId(p),
                link: None,
                broadcast: false,
            });
        }
        a
    }

    #[test]
    fn builds_up_down_and_phys_edges() {
        let d1 = DeviceId::from_raw(1);
        let d2 = DeviceId::from_raw(2);
        let mut abstractions = BTreeMap::new();
        abstractions.insert(
            d1,
            vec![
                module(ModuleKind::Eth, 1, 1, vec![ModuleKind::Ip], vec![], Some(0)),
                module(ModuleKind::Ip, 2, 1, vec![], vec![ModuleKind::Eth], None),
            ],
        );
        abstractions.insert(
            d2,
            vec![
                module(ModuleKind::Eth, 1, 2, vec![ModuleKind::Ip], vec![], Some(1)),
                module(ModuleKind::Ip, 2, 2, vec![], vec![ModuleKind::Eth], None),
            ],
        );
        let mut adjacency = BTreeMap::new();
        adjacency.insert(d1, vec![(PortId(0), d2, PortId(1))]);
        adjacency.insert(d2, vec![(PortId(1), d1, PortId(0))]);

        let g = PotentialGraph::build(&abstractions, &adjacency);
        assert_eq!(g.module_count(), 4);
        let eth1 = ModuleRef::new(ModuleKind::Eth, ModuleId(1), d1);
        let ip1 = ModuleRef::new(ModuleKind::Ip, ModuleId(2), d1);
        let eth2 = ModuleRef::new(ModuleKind::Eth, ModuleId(1), d2);
        assert_eq!(g.ups(&eth1), std::slice::from_ref(&ip1));
        assert_eq!(g.downs(&ip1), std::slice::from_ref(&eth1));
        assert_eq!(g.phys(&eth1), &[eth2]);
        assert!(!g.render_device_subgraph(d1).is_empty());
        assert_eq!(g.modules_of_kind(d1, &ModuleKind::Ip), vec![ip1]);
    }

    #[test]
    fn incompatible_modules_are_not_connected() {
        let d1 = DeviceId::from_raw(1);
        let mut abstractions = BTreeMap::new();
        abstractions.insert(
            d1,
            vec![
                // GRE can only connect up to IP, so ETH-GRE has no edge.
                module(ModuleKind::Eth, 1, 1, vec![ModuleKind::Ip], vec![], Some(0)),
                module(
                    ModuleKind::Gre,
                    2,
                    1,
                    vec![ModuleKind::Ip],
                    vec![ModuleKind::Ip],
                    None,
                ),
            ],
        );
        let g = PotentialGraph::build(&abstractions, &BTreeMap::new());
        let eth = ModuleRef::new(ModuleKind::Eth, ModuleId(1), d1);
        assert!(g.ups(&eth).is_empty());
        assert_eq!(g.edge_count(), 0);
    }
}
