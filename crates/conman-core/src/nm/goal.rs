//! Declarative goal management: the NM's desired-state store.
//!
//! The original CONMan interface was a one-shot imperative call — map a
//! [`ConnectivityGoal`](super::ConnectivityGoal) to a path and fire scripts.
//! This module gives goals *identity and a lifecycle* instead: a
//! [`GoalStore`] holds every goal the human manager has declared, each with a
//! [`GoalId`] and a [`GoalStatus`], and the runtime's `reconcile()` entry
//! point drives the network toward the store's desired state (push-style
//! ongoing management rather than pull-style one-shots).
//!
//! Planning is separated from execution: a [`Plan`] is a pure dry-run
//! artifact (chosen path + generated scripts + which modules the plan would
//! start using vs. which it shares with already-active goals) that the
//! runtime turns into a two-phase [`Transaction`](crate::runtime::txn)
//! over the management channel.
//!
//! Concurrent goals share module instances: the store tracks which goals use
//! which modules, so `withdraw` only releases a module once no surviving
//! goal's applied plan traverses it.

use super::pathfinder::PathFinderLimits;
use super::script::ScriptSet;
use super::{ConnectivityGoal, ModulePath};
use crate::ids::ModuleRef;
use netsim::device::DeviceId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Stable identity of a stored goal.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct GoalId(pub u64);

impl fmt::Display for GoalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// Something a goal's planner must route around, as recorded from
/// diagnosis.
///
/// The original self-healing story could only avoid *modules*; a diagnosis
/// that blamed a link (cut, loss spike) never reached the path search, so
/// the re-plan would happily cross the dead link again.  Typing the
/// exclusion lets the traversal prune both: an excluded module is never
/// entered, and an excluded link's physical pipes are never crossed — so on
/// multipath topologies a blamed core link is rerouted around in one pass.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Exclusion {
    /// Avoid a specific module.
    Module(ModuleRef),
    /// Avoid every physical pipe between the two (adjacent) devices,
    /// whichever direction the path would cross it.  Stored with the
    /// smaller device id first — build it through [`Exclusion::link`] so
    /// `(a, b)` and `(b, a)` compare equal.
    Link(DeviceId, DeviceId),
}

impl Exclusion {
    /// A link exclusion, normalised so the endpoint order never matters.
    pub fn link(a: DeviceId, b: DeviceId) -> Self {
        if a <= b {
            Exclusion::Link(a, b)
        } else {
            Exclusion::Link(b, a)
        }
    }
}

impl fmt::Display for Exclusion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exclusion::Module(m) => write!(f, "module {m}"),
            Exclusion::Link(a, b) => write!(f, "link {a}--{b}"),
        }
    }
}

/// Where a goal is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GoalStatus {
    /// Declared (or updated) but not yet applied to the network; the next
    /// `reconcile()` will plan and execute it.
    Pending,
    /// The applied configuration matches the desired goal as far as the NM
    /// knows.
    Active,
    /// The goal is configured but probes or diagnosis say it is not carrying
    /// traffic; `reconcile()` will re-plan it (avoiding any recorded
    /// suspects).
    Degraded,
    /// A repair attempt is in flight.
    Repairing,
    /// Planning or execution gave up (e.g. no path avoids the suspects);
    /// the goal is left alone until it is updated or its failure cleared.
    Failed,
}

impl GoalStatus {
    /// Does this status ask `reconcile()` to (re)apply the goal?
    pub fn needs_work(self) -> bool {
        matches!(
            self,
            GoalStatus::Pending | GoalStatus::Degraded | GoalStatus::Repairing
        )
    }
}

impl fmt::Display for GoalStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GoalStatus::Pending => "pending",
            GoalStatus::Active => "active",
            GoalStatus::Degraded => "degraded",
            GoalStatus::Repairing => "repairing",
            GoalStatus::Failed => "failed",
        };
        f.write_str(s)
    }
}

/// The configuration a goal currently has on the network: the executed
/// path, the scripts that realised it (the teardown mirror is derived from
/// them) and the pipe-id block they were numbered in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppliedPlan {
    /// The module-level path that was executed.
    pub path: ModulePath,
    /// The per-device scripts that were committed.
    pub scripts: ScriptSet,
    /// First pipe id of the block allocated to this execution (every goal
    /// gets a disjoint block so concurrent goals never collide on pipe ids,
    /// blackboard keys or derived table ids).
    pub pipe_base: u32,
}

/// One stored goal.
#[derive(Debug, Clone)]
pub struct GoalRecord {
    /// The goal's identity.
    pub id: GoalId,
    /// What the manager wants.
    pub desired: ConnectivityGoal,
    /// Lifecycle status.
    pub status: GoalStatus,
    /// What is currently configured for this goal (None when nothing is).
    /// Private so every mutation goes through [`GoalStore::set_applied`] /
    /// [`GoalStore::take_applied`] and the incremental module-usage index
    /// cannot silently go stale; read via [`GoalRecord::applied`].
    applied: Option<AppliedPlan>,
    /// Modules and links the planner must avoid for this goal (diagnosed
    /// suspects).  Cleared once a repair verifies, so a transiently blamed
    /// component is not avoided forever.
    pub excluded: BTreeSet<Exclusion>,
    /// Last planning/execution error, for the manager's eyes.
    pub last_error: Option<String>,
    /// Consecutive repair attempts that failed (execution rolled back or
    /// the verification probe found no traffic) since the goal last
    /// converged.  Reset to zero when the goal becomes `Active`, on
    /// `update` and on `retry`.  When it reaches
    /// [`GoalStore::max_repair_attempts`] the reconciler parks the goal
    /// `Failed` instead of cycling `Pending`/`Degraded` → `Repairing`
    /// forever (its pipe block is released with the pass as usual).
    pub repair_attempts: u32,
}

impl GoalRecord {
    /// What is currently configured for this goal (None when nothing is).
    pub fn applied(&self) -> Option<&AppliedPlan> {
        self.applied.as_ref()
    }
}

/// A pure dry-run planning artifact: what executing the goal *would* do.
///
/// Produced by `ManagedNetwork::plan_goal` without sending a single
/// management message; executing it is a separate, explicit step.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The goal this plan realises.
    pub goal: GoalId,
    /// The chosen module-level path.
    pub path: ModulePath,
    /// The per-device scripts that would be staged and committed.
    pub scripts: ScriptSet,
    /// The pipe-id block the scripts are numbered in.
    pub pipe_base: u32,
    /// Modules no other active goal uses: executing the plan takes their
    /// first reference.
    pub modules_created: Vec<ModuleRef>,
    /// Modules already used by other goals' applied plans: executing the
    /// plan shares them (their reference count grows).
    pub modules_reused: Vec<ModuleRef>,
}

/// Why planning failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The goal id is not in the store.
    UnknownGoal(GoalId),
    /// No module-level path satisfies the goal (after exclusions).
    NoPath,
    /// The pipe-id allocator cannot hand out a disjoint block of the
    /// required size without exceeding [`GoalStore::MAX_PIPE_ID`] — beyond
    /// it the identifier spaces *derived* from pipe ids (per-(pipe, role)
    /// route-table and policy-priority ids) would wrap or collide.  The
    /// plan is refused cleanly instead of corrupting live goals.
    PipeSpaceExhausted {
        /// Pipe-id slots the plan needs.
        needed: u32,
        /// Slots left below the cap.
        remaining: u32,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownGoal(id) => write!(f, "unknown goal {id}"),
            PlanError::NoPath => write!(f, "no module path satisfies the goal"),
            PlanError::PipeSpaceExhausted { needed, remaining } => write!(
                f,
                "pipe-id space exhausted: plan needs {needed} slot(s), {remaining} remain \
                 below the derived-id cap"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// The NM's desired-state store: every declared goal, its status, and the
/// shared-module bookkeeping.
#[derive(Debug)]
pub struct GoalStore {
    goals: BTreeMap<GoalId, GoalRecord>,
    next_goal: u64,
    next_txn: u64,
    next_pipe: u32,
    /// The module → using-goals index, maintained incrementally by
    /// [`Self::set_applied`] / [`Self::take_applied`] / [`Self::remove`] so
    /// plan classification and withdraw refcounts are O(path) instead of
    /// rescanning every applied plan (O(goals²) across a reconcile pass).
    module_index: BTreeMap<ModuleRef, BTreeSet<GoalId>>,
    /// Path-search limits used when planning (long chains need a larger
    /// step budget and a smaller path budget than the defaults).
    pub limits: PathFinderLimits,
    /// How many consecutive failed repair attempts park a goal `Failed`
    /// (see [`GoalRecord::repair_attempts`]).  `0` disables the budget —
    /// the pre-loop behaviour, where an unrepairable goal cycles between
    /// `Pending`/`Degraded` and `Repairing` on every pass forever.
    pub max_repair_attempts: u32,
}

impl Default for GoalStore {
    fn default() -> Self {
        GoalStore {
            goals: BTreeMap::new(),
            next_goal: 0,
            next_txn: 0,
            next_pipe: 0,
            module_index: BTreeMap::new(),
            limits: PathFinderLimits::default(),
            max_repair_attempts: Self::DEFAULT_MAX_REPAIR_ATTEMPTS,
        }
    }
}

impl GoalStore {
    /// Default repair-attempt budget: enough for transient races (a fault
    /// landing mid-pass converges on the next tick) without letting a goal
    /// whose every candidate path is dead thrash the network indefinitely.
    pub const DEFAULT_MAX_REPAIR_ATTEMPTS: u32 = 3;

    /// An empty store.
    pub fn new() -> Self {
        GoalStore::default()
    }

    /// Declare a goal; it starts `Pending` and is applied by the next
    /// `reconcile()`.
    pub fn submit(&mut self, desired: ConnectivityGoal) -> GoalId {
        self.next_goal += 1;
        let id = GoalId(self.next_goal);
        self.goals.insert(
            id,
            GoalRecord {
                id,
                desired,
                status: GoalStatus::Pending,
                applied: None,
                excluded: BTreeSet::new(),
                last_error: None,
                repair_attempts: 0,
            },
        );
        id
    }

    /// Replace a goal's desired state.  The goal returns to `Pending`; the
    /// next `reconcile()` tears down the stale configuration and applies the
    /// new one.  Returns false for an unknown id.
    pub fn update(&mut self, id: GoalId, desired: ConnectivityGoal) -> bool {
        match self.goals.get_mut(&id) {
            Some(rec) => {
                rec.desired = desired;
                rec.status = GoalStatus::Pending;
                rec.last_error = None;
                rec.repair_attempts = 0;
                true
            }
            None => false,
        }
    }

    /// Remove a goal record (the runtime's `withdraw` tears the applied
    /// configuration down first).  Returns the removed record.
    pub fn remove(&mut self, id: GoalId) -> Option<GoalRecord> {
        let rec = self.goals.remove(&id);
        if let Some(rec) = &rec {
            if let Some(applied) = &rec.applied {
                Self::unindex(&mut self.module_index, id, applied);
            }
        }
        rec
    }

    /// Replace a goal's applied plan, keeping the module-usage index in
    /// sync.  Returns the previous applied plan.  This is the **only** way
    /// applied plans should change (see [`GoalRecord::applied`]).
    pub fn set_applied(&mut self, id: GoalId, applied: Option<AppliedPlan>) -> Option<AppliedPlan> {
        let rec = self.goals.get_mut(&id)?;
        let previous = rec.applied.take();
        rec.applied = applied;
        let added = rec.applied.clone();
        if let Some(prev) = &previous {
            Self::unindex(&mut self.module_index, id, prev);
        }
        if let Some(now) = &added {
            for step in &now.path.steps {
                self.module_index
                    .entry(step.module.clone())
                    .or_default()
                    .insert(id);
            }
        }
        previous
    }

    /// Clear a goal's applied plan (index-maintaining), returning it.
    pub fn take_applied(&mut self, id: GoalId) -> Option<AppliedPlan> {
        self.set_applied(id, None)
    }

    fn unindex(
        index: &mut BTreeMap<ModuleRef, BTreeSet<GoalId>>,
        id: GoalId,
        applied: &AppliedPlan,
    ) {
        for step in &applied.path.steps {
            if let Some(users) = index.get_mut(&step.module) {
                users.remove(&id);
                if users.is_empty() {
                    index.remove(&step.module);
                }
            }
        }
    }

    /// A stored goal.
    pub fn get(&self, id: GoalId) -> Option<&GoalRecord> {
        self.goals.get(&id)
    }

    /// A stored goal, mutably.
    pub fn get_mut(&mut self, id: GoalId) -> Option<&mut GoalRecord> {
        self.goals.get_mut(&id)
    }

    /// All goal ids, in submission order.
    pub fn ids(&self) -> Vec<GoalId> {
        self.goals.keys().copied().collect()
    }

    /// All goal records.
    pub fn iter(&self) -> impl Iterator<Item = &GoalRecord> {
        self.goals.values()
    }

    /// Number of stored goals.
    pub fn len(&self) -> usize {
        self.goals.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.goals.is_empty()
    }

    /// The status of a goal.
    pub fn status(&self, id: GoalId) -> Option<GoalStatus> {
        self.goals.get(&id).map(|r| r.status)
    }

    /// Mark a goal degraded (e.g. after a failed probe or a diagnosis),
    /// recording the modules and links its next plan must avoid.  Returns
    /// false for an unknown id.
    pub fn mark_degraded(&mut self, id: GoalId, excluded: BTreeSet<Exclusion>) -> bool {
        match self.goals.get_mut(&id) {
            Some(rec) => {
                rec.status = GoalStatus::Degraded;
                rec.excluded = excluded;
                true
            }
            None => false,
        }
    }

    /// Clear a goal's `Failed` status (back to `Pending`) so `reconcile()`
    /// retries it.
    pub fn retry(&mut self, id: GoalId) -> bool {
        match self.goals.get_mut(&id) {
            Some(rec) if rec.status == GoalStatus::Failed => {
                rec.status = GoalStatus::Pending;
                rec.last_error = None;
                rec.repair_attempts = 0;
                true
            }
            _ => false,
        }
    }

    /// Charge one failed repair attempt against `id`'s budget.  Returns
    /// `true` when the budget is exhausted — the caller must park the goal
    /// `Failed` instead of re-queueing it for another pass.
    pub fn charge_repair_attempt(&mut self, id: GoalId) -> bool {
        let budget = self.max_repair_attempts;
        match self.goals.get_mut(&id) {
            Some(rec) => {
                rec.repair_attempts += 1;
                budget > 0 && rec.repair_attempts >= budget
            }
            None => false,
        }
    }

    /// Allocate a fresh transaction id.
    pub fn next_txn(&mut self) -> u64 {
        self.next_txn += 1;
        self.next_txn
    }

    /// Largest pipe id the NM will ever allocate.  Derived identifier
    /// schemes are injective in (pipe, role) with role < 4 — route tables
    /// are `1000 + 4·pipe + role` and policy-rule priorities
    /// `100 + 4·pipe + role` (see the IP module) — so pipe ids must stay
    /// below this cap for those u32 spaces not to wrap.
    pub const MAX_PIPE_ID: u32 = (u32::MAX - 1000) / 4 - 1;

    /// Can a disjoint block of `slots` pipe ids still be allocated without
    /// crossing [`Self::MAX_PIPE_ID`]?  Planning calls this before handing
    /// out a block so exhaustion surfaces as a clean
    /// [`PlanError::PipeSpaceExhausted`] instead of wrapped derived ids
    /// silently colliding with live goals.
    pub fn check_pipe_block(&self, slots: u32) -> Result<(), PlanError> {
        let remaining = Self::MAX_PIPE_ID.saturating_sub(self.next_pipe);
        if slots > remaining {
            return Err(PlanError::PipeSpaceExhausted {
                needed: slots,
                remaining,
            });
        }
        Ok(())
    }

    /// The pipe-id base the next plan will be numbered from (dry-run
    /// planning peeks; execution consumes via [`Self::take_pipe_block`]).
    pub fn peek_pipe_base(&self) -> u32 {
        self.next_pipe
    }

    /// Reserve a block of `slots` pipe ids, returning its base.
    pub fn take_pipe_block(&mut self, slots: u32) -> u32 {
        let base = self.next_pipe;
        self.next_pipe = self.next_pipe.saturating_add(slots);
        base
    }

    /// Ensure the allocator is past `end` (used when adopting externally
    /// executed configuration numbered from pipe 0).
    pub fn reserve_pipes_through(&mut self, end: u32) {
        self.next_pipe = self.next_pipe.max(end);
    }

    /// Roll the allocator back to `watermark` if it currently sits above
    /// it.  The batched reconcile pass allocates one block per planned goal
    /// up front and then releases the tail blocks of goals whose execution
    /// failed (mirroring the per-goal executor, which only consumes a block
    /// on commit) — otherwise a repeatedly failing goal would march the
    /// allocator toward [`Self::MAX_PIPE_ID`].  Callers must pass a
    /// watermark at or above every block still in use.
    pub fn release_pipes_to(&mut self, watermark: u32) {
        self.next_pipe = self.next_pipe.min(watermark);
    }

    /// Which goals' applied plans traverse each module — the reference
    /// counts behind shared-module withdraw semantics.  Served from the
    /// incrementally maintained index (no per-call rescan of applied
    /// plans).
    pub fn module_users(&self) -> &BTreeMap<ModuleRef, BTreeSet<GoalId>> {
        &self.module_index
    }

    /// Number of goals whose applied plans traverse `module`.
    pub fn module_refcount(&self, module: &ModuleRef) -> usize {
        self.module_index.get(module).map_or(0, |s| s.len())
    }

    /// Split `path`'s modules into (first-use, shared) relative to every
    /// *other* goal's applied plan — the "will be created vs. reused"
    /// report of a dry-run [`Plan`].
    pub fn classify_modules(
        &self,
        id: GoalId,
        path: &ModulePath,
    ) -> (Vec<ModuleRef>, Vec<ModuleRef>) {
        let mut created = Vec::new();
        let mut reused = Vec::new();
        let mut seen = BTreeSet::new();
        for step in &path.steps {
            if !seen.insert(step.module.clone()) {
                continue;
            }
            let shared = self
                .module_index
                .get(&step.module)
                .is_some_and(|goals| goals.iter().any(|g| *g != id));
            if shared {
                reused.push(step.module.clone());
            } else {
                created.push(step.module.clone());
            }
        }
        (created, reused)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::SwitchKind;
    use crate::ids::{ModuleId, ModuleKind};
    use crate::nm::pathfinder::{Entry, PathStep};
    use netsim::device::DeviceId;

    fn goal() -> ConnectivityGoal {
        ConnectivityGoal::vpn(
            ModuleRef::new(ModuleKind::Eth, ModuleId(1), DeviceId::from_raw(1)),
            ModuleRef::new(ModuleKind::Eth, ModuleId(1), DeviceId::from_raw(2)),
        )
    }

    fn path_over(modules: &[(u64, u32)]) -> ModulePath {
        ModulePath {
            steps: modules
                .iter()
                .map(|(d, m)| PathStep {
                    module: ModuleRef::new(ModuleKind::Ip, ModuleId(*m), DeviceId::from_raw(*d)),
                    switch: SwitchKind::DownUp,
                    entered: Entry::Below,
                    header: 0,
                    depth: 1,
                })
                .collect(),
        }
    }

    #[test]
    fn lifecycle_and_ids() {
        let mut store = GoalStore::new();
        let a = store.submit(goal());
        let b = store.submit(goal());
        assert_ne!(a, b);
        assert_eq!(store.status(a), Some(GoalStatus::Pending));
        assert!(store.update(a, goal()));
        assert!(store.mark_degraded(b, BTreeSet::new()));
        assert_eq!(store.status(b), Some(GoalStatus::Degraded));
        assert!(store.status(b).unwrap().needs_work());
        store.get_mut(b).unwrap().status = GoalStatus::Failed;
        assert!(!store.status(b).unwrap().needs_work());
        assert!(store.retry(b));
        assert_eq!(store.status(b), Some(GoalStatus::Pending));
        assert!(store.remove(a).is_some());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn link_exclusions_are_direction_agnostic() {
        let a = DeviceId::from_raw(3);
        let b = DeviceId::from_raw(7);
        assert_eq!(Exclusion::link(a, b), Exclusion::link(b, a));
        let mut set = BTreeSet::new();
        set.insert(Exclusion::link(b, a));
        assert!(set.contains(&Exclusion::link(a, b)));
        // Module and link exclusions coexist in one typed set.
        set.insert(Exclusion::Module(ModuleRef::new(
            ModuleKind::Gre,
            ModuleId(1),
            a,
        )));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn pipe_blocks_are_disjoint() {
        let mut store = GoalStore::new();
        assert_eq!(store.take_pipe_block(10), 0);
        assert_eq!(store.peek_pipe_base(), 10);
        assert_eq!(store.take_pipe_block(5), 10);
        store.reserve_pipes_through(100);
        assert_eq!(store.take_pipe_block(1), 100);
    }

    #[test]
    fn pipe_space_exhaustion_is_a_clean_plan_error() {
        let mut store = GoalStore::new();
        // A 512-goal pass on a long chain stays far below the cap...
        store.reserve_pipes_through(512 * 32);
        assert!(store.check_pipe_block(32).is_ok());
        // ...but near the derived-id cap the allocator refuses cleanly
        // instead of letting route-table / priority ids wrap.
        store.reserve_pipes_through(GoalStore::MAX_PIPE_ID - 5);
        assert!(store.check_pipe_block(5).is_ok());
        match store.check_pipe_block(13) {
            Err(PlanError::PipeSpaceExhausted { needed, remaining }) => {
                assert_eq!(needed, 13);
                assert_eq!(remaining, 5);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        // The derived route-table scheme (1000 + 4·pipe + role, role < 4)
        // cannot wrap below the cap.
        assert!(1000u64 + 4 * GoalStore::MAX_PIPE_ID as u64 + 3 <= u32::MAX as u64);
    }

    #[test]
    fn refcounts_follow_applied_plans() {
        let mut store = GoalStore::new();
        let a = store.submit(goal());
        let b = store.submit(goal());
        let shared = path_over(&[(1, 1), (2, 1)]);
        let private = path_over(&[(1, 1), (3, 7)]);
        store.set_applied(
            a,
            Some(AppliedPlan {
                path: shared.clone(),
                scripts: ScriptSet::default(),
                pipe_base: 0,
            }),
        );
        // Before B applies anything, its plan over (1,1)+(3,7) reuses (1,1).
        let (created, reused) = store.classify_modules(b, &private);
        assert_eq!(reused.len(), 1);
        assert_eq!(created.len(), 1);
        store.set_applied(
            b,
            Some(AppliedPlan {
                path: private,
                scripts: ScriptSet::default(),
                pipe_base: 10,
            }),
        );
        let m = ModuleRef::new(ModuleKind::Ip, ModuleId(1), DeviceId::from_raw(1));
        assert_eq!(store.module_refcount(&m), 2);
        store.set_applied(a, None);
        assert_eq!(store.module_refcount(&m), 1);
    }

    #[test]
    fn module_index_follows_set_take_and_remove() {
        let mut store = GoalStore::new();
        let a = store.submit(goal());
        let b = store.submit(goal());
        let path_a = path_over(&[(1, 1), (2, 1)]);
        let path_b = path_over(&[(2, 1), (3, 1)]);
        let plan = |path: &ModulePath, base: u32| AppliedPlan {
            path: path.clone(),
            scripts: ScriptSet::default(),
            pipe_base: base,
        };
        store.set_applied(a, Some(plan(&path_a, 0)));
        store.set_applied(b, Some(plan(&path_b, 10)));
        let shared = ModuleRef::new(ModuleKind::Ip, ModuleId(1), DeviceId::from_raw(2));
        assert_eq!(store.module_refcount(&shared), 2);
        // Replacing A's plan with one avoiding the shared module drops A's
        // reference but keeps B's.
        let replacement = path_over(&[(1, 1), (4, 1)]);
        let previous = store.set_applied(a, Some(plan(&replacement, 20)));
        assert_eq!(previous.unwrap().pipe_base, 0);
        assert_eq!(store.module_refcount(&shared), 1);
        // take_applied and remove both release references.
        assert!(store.take_applied(b).is_some());
        assert_eq!(store.module_refcount(&shared), 0);
        store.set_applied(a, Some(plan(&path_a, 30)));
        assert_eq!(store.module_refcount(&shared), 1);
        store.remove(a);
        assert_eq!(store.module_refcount(&shared), 0);
        assert!(store.module_users().is_empty());
    }
}
