//! The NM's path finder (§III-C.1).
//!
//! Depth-first traversal of the potential-connectivity graph that keeps
//! track of encapsulation and decapsulation along the way, so only paths
//! that are "sane in the protocol sense" are generated (Figure 6(a)), and
//! that uses address-domain information to rule out invalid peerings
//! (Figure 6(b)).  On the paper's Figure 4 testbed this enumerates exactly
//! the nine paths the authors report.

use super::graph::PotentialGraph;
use super::ConnectivityGoal;
use crate::abstraction::SwitchKind;
use crate::ids::{ModuleKind, ModuleRef};
use netsim::device::DeviceId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// How a module was entered during the traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Entry {
    /// Entered from a physical pipe.
    Phys,
    /// Entered from the module below (on its down pipe), i.e. the packet is
    /// travelling up the stack.
    Below,
    /// Entered from the module above (on its up pipe), i.e. the packet is
    /// travelling down the stack.
    Above,
}

/// One step of a module-level path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathStep {
    /// The module traversed.
    pub module: ModuleRef,
    /// The switching configuration it uses on this path.
    pub switch: SwitchKind,
    /// How the packet entered the module.
    pub entered: Entry,
    /// Identifier of the header instance this step pushes, pops or processes.
    pub header: usize,
    /// Stack depth (number of headers on the packet) when the step executes,
    /// before any push/pop performed by the step itself.
    pub depth: usize,
}

/// A complete module-level path satisfying a goal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModulePath {
    /// The steps in travel order.
    pub steps: Vec<PathStep>,
}

impl ModulePath {
    /// Number of up-down pipes that would be instantiated in devices to
    /// realise this path (the NM's selection metric): one pipe between every
    /// pair of consecutive steps on the same device.
    pub fn pipe_count(&self) -> usize {
        self.steps
            .windows(2)
            .filter(|w| w[0].module.device == w[1].module.device)
            .count()
    }

    /// The distinct devices along the path, in order of first appearance.
    pub fn devices(&self) -> Vec<netsim::device::DeviceId> {
        let mut out = Vec::new();
        for s in &self.steps {
            if out.last() != Some(&s.module.device) {
                out.push(s.module.device);
            }
        }
        out
    }

    /// A compact label of the technologies used, e.g. `GRE-IP`,
    /// `MPLS`, `IP-IP over MPLS`, used to compare against the paper's list.
    pub fn technology_label(&self) -> String {
        let has = |k: &ModuleKind| self.steps.iter().any(|s| s.module.kind == *k);
        let gre = has(&ModuleKind::Gre);
        let mpls = has(&ModuleKind::Mpls);
        let vlan = has(&ModuleKind::Vlan);
        // Count encapsulating IP modules (UpDown switching) to distinguish
        // plain forwarding from IP-IP tunnelling.
        let ipip = self
            .steps
            .iter()
            .any(|s| s.module.kind == ModuleKind::Ip && s.switch == SwitchKind::UpDown);
        let mut parts = Vec::new();
        if vlan {
            parts.push("VLAN".to_string());
        }
        if gre {
            parts.push("GRE-IP".to_string());
        } else if ipip {
            parts.push("IP-IP".to_string());
        }
        if mpls {
            if parts.is_empty() {
                parts.push("MPLS".to_string());
            } else {
                parts.push("over MPLS".to_string());
            }
        }
        if parts.is_empty() {
            parts.push("IP".to_string());
        }
        parts.join(" ")
    }

    /// Module-id sequence for compact display (mirrors the paper's
    /// "a, g, h, b, c, i, d, e, j, k, f" notation).
    pub fn module_sequence(&self) -> Vec<ModuleRef> {
        self.steps.iter().map(|s| s.module.clone()).collect()
    }
}

/// Limits guarding the exhaustive traversal.
#[derive(Debug, Clone, Copy)]
pub struct PathFinderLimits {
    /// Maximum number of steps in a path.
    pub max_steps: usize,
    /// Maximum number of complete paths to return.
    pub max_paths: usize,
}

impl Default for PathFinderLimits {
    fn default() -> Self {
        PathFinderLimits {
            max_steps: 64,
            max_paths: 4096,
        }
    }
}

/// One header on the simulated packet during traversal.
#[derive(Debug, Clone, PartialEq)]
struct HeaderInst {
    id: usize,
    kind: ModuleKind,
    domain: Option<String>,
}

/// The path finder.
pub struct PathFinder<'a> {
    graph: &'a PotentialGraph,
    limits: PathFinderLimits,
    excluded: BTreeSet<ModuleRef>,
    /// Device pairs whose physical pipes must never be crossed, normalised
    /// with the smaller device id first (see [`PathFinder::excluding_links`]).
    excluded_links: BTreeSet<(DeviceId, DeviceId)>,
}

impl<'a> PathFinder<'a> {
    /// Create a path finder over a potential graph.
    pub fn new(graph: &'a PotentialGraph) -> Self {
        PathFinder {
            graph,
            limits: PathFinderLimits::default(),
            excluded: BTreeSet::new(),
            excluded_links: BTreeSet::new(),
        }
    }

    /// Override the traversal limits.
    pub fn with_limits(mut self, limits: PathFinderLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Never traverse the given modules.  This is how the self-healing NM
    /// re-plans around a diagnosed fault: the suspects are excluded *inside*
    /// the search, so pruning happens before the exponential fan-out rather
    /// than by filtering complete paths afterwards.
    pub fn excluding(mut self, excluded: BTreeSet<ModuleRef>) -> Self {
        self.excluded = excluded;
        self
    }

    /// Never cross a physical pipe between the given device pairs (either
    /// direction).  This is the link-level counterpart of
    /// [`PathFinder::excluding`]: a diagnosis that blames a *link* (cut or
    /// loss) prunes the traversal at the physical hop itself, so on a
    /// multipath topology the search only ever enumerates genuine
    /// alternatives instead of filtering complete paths afterwards.
    pub fn excluding_links(
        mut self,
        links: impl IntoIterator<Item = (DeviceId, DeviceId)>,
    ) -> Self {
        self.excluded_links = links
            .into_iter()
            .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        self
    }

    /// Is the physical hop from `from`'s device to `to`'s device excluded?
    fn link_excluded(&self, from: &ModuleRef, to: &ModuleRef) -> bool {
        if self.excluded_links.is_empty() {
            return false;
        }
        let (a, b) = if from.device <= to.device {
            (from.device, to.device)
        } else {
            (to.device, from.device)
        };
        self.excluded_links.contains(&(a, b))
    }

    /// Enumerate every path satisfying `goal`.
    pub fn find(&self, goal: &ConnectivityGoal) -> Vec<ModulePath> {
        self.find_with(&mut SearchScratch::default(), goal)
    }

    /// Like [`PathFinder::find`], but reusing caller-owned search buffers.
    /// The reconcile planner calls the finder once per goal per pass;
    /// threading one [`SearchScratch`] through keeps the visited set, the
    /// step buffer and the header stack warm instead of re-allocating them
    /// for every goal.
    pub fn find_with(
        &self,
        scratch: &mut SearchScratch,
        goal: &ConnectivityGoal,
    ) -> Vec<ModulePath> {
        scratch.clear();
        let mut state = SearchState {
            scratch,
            results: Vec::new(),
        };
        // The customer traffic entering the ingress physical pipe: an
        // Ethernet frame, carrying an IP packet in the customer's address
        // domain unless this is a pure layer-2 goal.  The stack is ordered
        // innermost-first, so the outermost header (Ethernet) is pushed last
        // and sits on top.
        if goal.l2_only {
            // Layer-2 goal: the customer's Ethernet frame is the payload that
            // must be carried intact across the provider.
            state.push_header(ModuleKind::Eth, Some(goal.traffic_domain.clone()));
        } else {
            state.push_header(ModuleKind::Ip, Some(goal.traffic_domain.clone()));
        }
        state.push_header(ModuleKind::Eth, None);
        let expected_final: Vec<(ModuleKind, Option<String>)> = state
            .scratch
            .stack
            .iter()
            .map(|h| (h.kind.clone(), h.domain.clone()))
            .collect();

        self.explore(goal, &mut state, &goal.from, Entry::Phys, &expected_final);
        state.results
    }

    #[allow(clippy::too_many_arguments)]
    fn explore(
        &self,
        goal: &ConnectivityGoal,
        state: &mut SearchState<'_>,
        module: &ModuleRef,
        entered: Entry,
        expected_final: &[(ModuleKind, Option<String>)],
    ) {
        if state.results.len() >= self.limits.max_paths
            || state.scratch.steps.len() >= self.limits.max_steps
            || state.scratch.visited.contains(module)
            || self.excluded.contains(module)
        {
            return;
        }
        let Some(abs) = self.graph.abstraction(module) else {
            return;
        };
        state.scratch.visited.insert(module.clone());

        match entered {
            Entry::Phys | Entry::Below => {
                let decap_kind = if entered == Entry::Phys {
                    SwitchKind::PhyUp
                } else {
                    SwitchKind::DownUp
                };
                // Option 1: decapsulate and move up.
                if abs.can_switch(decap_kind) {
                    if let Some(top) = state.scratch.stack.last().cloned() {
                        if top.kind == module.kind && self.domain_ok(abs, &top) {
                            let depth = state.scratch.stack.len();
                            state.scratch.stack.pop();
                            state.scratch.steps.push(PathStep {
                                module: module.clone(),
                                switch: decap_kind,
                                entered,
                                header: top.id,
                                depth,
                            });
                            for next in self.graph.ups(module) {
                                self.explore(goal, state, next, Entry::Below, expected_final);
                            }
                            state.scratch.steps.pop();
                            state.scratch.stack.push(top);
                        }
                    }
                }
                // Option 2: process in place.
                if entered == Entry::Phys {
                    // [phy => phy]: a layer-2 switch carries the frame across.
                    if abs.can_switch(SwitchKind::PhyPhy) {
                        if let Some(top) = state.scratch.stack.last().cloned() {
                            let depth = state.scratch.stack.len();
                            state.scratch.steps.push(PathStep {
                                module: module.clone(),
                                switch: SwitchKind::PhyPhy,
                                entered,
                                header: top.id,
                                depth,
                            });
                            for next in self.graph.phys(module) {
                                if self.link_excluded(module, next) {
                                    continue;
                                }
                                self.explore(goal, state, next, Entry::Phys, expected_final);
                            }
                            state.scratch.steps.pop();
                        }
                    }
                } else if abs.can_switch(SwitchKind::DownDown) {
                    // [down => down]: process the header and forward downwards.
                    if let Some(top) = state.scratch.stack.last().cloned() {
                        let transparent = module.kind == ModuleKind::Vlan;
                        if (top.kind == module.kind && self.domain_ok(abs, &top)) || transparent {
                            let depth = state.scratch.stack.len();
                            state.scratch.steps.push(PathStep {
                                module: module.clone(),
                                switch: SwitchKind::DownDown,
                                entered,
                                header: top.id,
                                depth,
                            });
                            for next in self.graph.downs(module) {
                                self.explore(goal, state, next, Entry::Above, expected_final);
                            }
                            state.scratch.steps.pop();
                        }
                    }
                }
            }
            Entry::Above => {
                // Option 1: encapsulate and continue downwards.
                if abs.can_switch(SwitchKind::UpDown) {
                    let depth = state.scratch.stack.len();
                    let id = state.push_header(module.kind.clone(), abs.address_domain.clone());
                    state.scratch.steps.push(PathStep {
                        module: module.clone(),
                        switch: SwitchKind::UpDown,
                        entered,
                        header: id,
                        depth,
                    });
                    for next in self.graph.downs(module) {
                        self.explore(goal, state, next, Entry::Above, expected_final);
                    }
                    state.scratch.steps.pop();
                    state.scratch.stack.pop();
                }
                // Option 2: encapsulate onto a physical pipe.
                if abs.can_switch(SwitchKind::UpPhy) {
                    let depth = state.scratch.stack.len();
                    let id = state.push_header(ModuleKind::Eth, None);
                    state.scratch.steps.push(PathStep {
                        module: module.clone(),
                        switch: SwitchKind::UpPhy,
                        entered,
                        header: id,
                        depth,
                    });
                    if *module == goal.to {
                        // Reached the egress interface: the path is valid only
                        // if every header the ISP added has been removed again
                        // (the customer sees the same packet it sent).
                        let final_stack: Vec<(ModuleKind, Option<String>)> = state
                            .scratch
                            .stack
                            .iter()
                            .map(|h| (h.kind.clone(), h.domain.clone()))
                            .collect();
                        if final_stack == expected_final
                            && state.results.len() < self.limits.max_paths
                        {
                            state.results.push(ModulePath {
                                steps: state.scratch.steps.clone(),
                            });
                        }
                    } else {
                        for next in self.graph.phys(module) {
                            if self.link_excluded(module, next) {
                                continue;
                            }
                            self.explore(goal, state, next, Entry::Phys, expected_final);
                        }
                    }
                    state.scratch.steps.pop();
                    state.scratch.stack.pop();
                }
            }
        }

        state.scratch.visited.remove(module);
    }

    fn domain_ok(&self, abs: &crate::abstraction::ModuleAbstraction, header: &HeaderInst) -> bool {
        if abs.name.kind != ModuleKind::Ip {
            return true;
        }
        match (&abs.address_domain, &header.domain) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        }
    }
}

/// Reusable buffers for the depth-first traversal: the step buffer, the
/// simulated header stack and the visited set.  One scratch serves any
/// number of consecutive [`PathFinder::find_with`] calls — the planner
/// allocates one per planning worker and reuses it across goals instead of
/// re-allocating per goal.
#[derive(Debug, Default)]
pub struct SearchScratch {
    steps: Vec<PathStep>,
    stack: Vec<HeaderInst>,
    visited: BTreeSet<ModuleRef>,
    next_header: usize,
}

impl SearchScratch {
    fn clear(&mut self) {
        self.steps.clear();
        self.stack.clear();
        self.visited.clear();
        self.next_header = 0;
    }
}

struct SearchState<'s> {
    scratch: &'s mut SearchScratch,
    results: Vec<ModulePath>,
}

impl SearchState<'_> {
    fn push_header(&mut self, kind: ModuleKind, domain: Option<String>) -> usize {
        let id = self.scratch.next_header;
        self.scratch.next_header += 1;
        self.scratch.stack.push(HeaderInst { id, kind, domain });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::{ModuleAbstraction, PhysicalPipeInfo, SwitchKind};
    use crate::ids::ModuleId;
    use netsim::device::{DeviceId, PortId};
    use std::collections::BTreeMap;

    /// Build a tiny two-router network: each router has a customer-facing
    /// ETH, an ISP ETH, a customer IP module and an ISP IP module.  The only
    /// sane path between the customer-facing ETH modules is the IP-IP tunnel.
    fn two_router_world() -> (PotentialGraph, ModuleRef, ModuleRef) {
        let d1 = DeviceId::from_raw(1);
        let d2 = DeviceId::from_raw(2);
        let mut abstractions = BTreeMap::new();
        let mut adjacency = BTreeMap::new();
        for (d, other) in [(d1, d2), (d2, d1)] {
            let mut mods = Vec::new();
            for (id, port) in [(1u32, 0u32), (2, 1)] {
                let mut eth =
                    ModuleAbstraction::empty(ModuleRef::new(ModuleKind::Eth, ModuleId(id), d));
                eth.up_connectable = vec![ModuleKind::Ip];
                eth.switch.kinds = vec![SwitchKind::PhyUp, SwitchKind::UpPhy];
                eth.physical_pipes.push(PhysicalPipeInfo {
                    port: PortId(port),
                    link: None,
                    broadcast: false,
                });
                mods.push(eth);
            }
            let mut ip_cust =
                ModuleAbstraction::empty(ModuleRef::new(ModuleKind::Ip, ModuleId(3), d));
            ip_cust.up_connectable = vec![ModuleKind::Ip];
            ip_cust.down_connectable = vec![ModuleKind::Ip, ModuleKind::Eth];
            ip_cust.switch.kinds = vec![
                SwitchKind::DownUp,
                SwitchKind::UpDown,
                SwitchKind::DownDown,
                SwitchKind::UpUp,
            ];
            ip_cust.address_domain = Some("customer1".to_string());
            mods.push(ip_cust);
            let mut ip_isp =
                ModuleAbstraction::empty(ModuleRef::new(ModuleKind::Ip, ModuleId(4), d));
            ip_isp.up_connectable = vec![ModuleKind::Ip];
            ip_isp.down_connectable = vec![ModuleKind::Ip, ModuleKind::Eth];
            ip_isp.switch.kinds = vec![
                SwitchKind::DownUp,
                SwitchKind::UpDown,
                SwitchKind::DownDown,
                SwitchKind::UpUp,
            ];
            ip_isp.address_domain = Some("isp".to_string());
            mods.push(ip_isp);
            abstractions.insert(d, mods);
            // Port 1 of each device faces the other device.
            adjacency.insert(d, vec![(PortId(1), other, PortId(1))]);
        }
        let graph = PotentialGraph::build(&abstractions, &adjacency);
        let from = ModuleRef::new(ModuleKind::Eth, ModuleId(1), d1);
        let to = ModuleRef::new(ModuleKind::Eth, ModuleId(1), d2);
        (graph, from, to)
    }

    #[test]
    fn finds_the_ip_ip_tunnel_and_plain_forwarding_only() {
        let (graph, from, to) = two_router_world();
        let goal = ConnectivityGoal::vpn(from, to);
        let finder = PathFinder::new(&graph);
        let paths = finder.find(&goal);
        // With adjacent edge routers, both direct forwarding between the two
        // customer-domain IP modules and the IP-IP tunnel are protocol-sane.
        assert_eq!(paths.len(), 2, "expected two sane paths: {paths:#?}");
        let labels: Vec<String> = paths.iter().map(|p| p.technology_label()).collect();
        assert!(labels.contains(&"IP".to_string()));
        assert!(labels.contains(&"IP-IP".to_string()));
        let p = paths
            .iter()
            .find(|p| p.technology_label() == "IP-IP")
            .unwrap();
        // a, ip_cust, ip_isp, eth_isp | eth_isp, ip_isp, ip_cust, eth_cust
        assert_eq!(p.steps.len(), 8);
        assert_eq!(p.pipe_count(), 6);
        assert_eq!(p.devices().len(), 2);
        // Domain pruning: the ISP IP module never processes or pops the
        // customer header (header id 0), only its own outer header.
        for s in &p.steps {
            if s.module.module == ModuleId(4) && s.switch != SwitchKind::UpDown {
                assert_ne!(
                    s.header, 0,
                    "ISP IP module must not touch the customer header"
                );
            }
        }
    }

    #[test]
    fn direct_forwarding_of_customer_traffic_is_rejected() {
        // Remove the customer IP module's ability to be crossed: without the
        // customer-domain IP module at the far end the traversal cannot
        // terminate cleanly, so no path exists.
        let (graph, from, to) = two_router_world();
        let mut goal = ConnectivityGoal::vpn(from, to);
        goal.traffic_domain = "customer2".to_string(); // no module carries this domain... still ok
        let finder = PathFinder::new(&graph);
        // Domain mismatch on both routers' customer IP modules prunes every
        // path that would touch the customer header.
        let paths = finder.find(&goal);
        assert!(paths.is_empty());
    }

    #[test]
    fn excluding_the_only_link_prunes_every_path() {
        let (graph, from, to) = two_router_world();
        let goal = ConnectivityGoal::vpn(from, to);
        let d1 = DeviceId::from_raw(1);
        let d2 = DeviceId::from_raw(2);
        // Exclusion is direction-agnostic: either endpoint order prunes the
        // traversal at the physical hop.
        for pair in [(d1, d2), (d2, d1)] {
            let paths = PathFinder::new(&graph).excluding_links([pair]).find(&goal);
            assert!(paths.is_empty(), "no path may cross the excluded link");
        }
        // An unrelated link exclusion prunes nothing.
        let paths = PathFinder::new(&graph)
            .excluding_links([(DeviceId::from_raw(8), DeviceId::from_raw(9))])
            .find(&goal);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn technology_labels_and_sequences() {
        let (graph, from, to) = two_router_world();
        let goal = ConnectivityGoal::vpn(from, to);
        let paths = PathFinder::new(&graph).find(&goal);
        for p in &paths {
            assert!(["IP", "IP-IP"].contains(&p.technology_label().as_str()));
            assert_eq!(p.module_sequence().len(), p.steps.len());
        }
    }
}
