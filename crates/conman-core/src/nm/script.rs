//! CONMan script generation: translating a chosen module-level path into the
//! per-device `create (pipe, ...)` / `create (switch, ...)` primitives of
//! Figures 7(b), 8(b) and 9(b).
//!
//! The NM generates these scripts algorithmically, with no protocol-specific
//! knowledge beyond the address prefixes and gateways the human manager's
//! high-level goal names (which the paper explicitly allows).

use super::pathfinder::{Entry, ModulePath};
use super::{ConnectivityGoal, NetworkManager};
use crate::abstraction::SwitchKind;
use crate::ids::{ModuleKind, ModuleRef, PipeId};
use crate::primitives::{PipeSpec, Primitive, SwitchSpec, TradeoffChoice};
use netsim::device::DeviceId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The CONMan primitives for one device, plus a human-readable rendering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceScript {
    /// The device the script configures.
    pub device: DeviceId,
    /// Device alias used in the rendering ("A", "B", ...).
    pub device_alias: String,
    /// The primitives in execution order.
    pub primitives: Vec<Primitive>,
    /// Paper-style textual rendering of each primitive.
    pub rendered: Vec<String>,
}

/// The scripts for every device along a path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ScriptSet {
    /// Per-device scripts, in path order.
    pub scripts: Vec<DeviceScript>,
    /// Total number of up-down pipes created.
    pub pipe_count: usize,
}

impl ScriptSet {
    /// All rendered lines, concatenated with per-device headers.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.scripts {
            out.push_str(&format!("# ---- Router {} ----\n", s.device_alias));
            for line in &s.rendered {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    /// The script for a specific device, if it participates in the path.
    pub fn for_device(&self, device: DeviceId) -> Option<&DeviceScript> {
        self.scripts.iter().find(|s| s.device == device)
    }

    /// Total number of primitives across devices.
    pub fn primitive_count(&self) -> usize {
        self.scripts.iter().map(|s| s.primitives.len()).sum()
    }

    /// The teardown mirror of this script set: every `create` undone with a
    /// `delete`, per device in *reverse* path order and within each device in
    /// reverse primitive order (switch rules before the pipes they
    /// reference).  This is the single source of teardown scripts — the
    /// transactional withdraw path, self-healing and mid-commit rollback all
    /// derive their deletes here.
    pub fn teardown(&self) -> Vec<(netsim::device::DeviceId, Vec<Primitive>)> {
        self.scripts
            .iter()
            .rev()
            .map(|ds| (ds.device, Self::teardown_of(ds)))
            .collect()
    }

    /// The delete primitives undoing one device's script.
    pub fn teardown_of(ds: &DeviceScript) -> Vec<Primitive> {
        use crate::primitives::ComponentRef;
        let mut deletes = Vec::new();
        for p in ds.primitives.iter().rev() {
            match p {
                Primitive::CreateSwitch(spec) => deletes.push(Primitive::Delete(
                    ComponentRef::SwitchRule(spec.module.clone(), spec.in_pipe, spec.out_pipe),
                )),
                Primitive::CreatePipe(spec) => {
                    deletes.push(Primitive::Delete(ComponentRef::Pipe(spec.pipe)));
                }
                Primitive::CreateFilter(spec) => deletes.push(Primitive::Delete(
                    ComponentRef::Filter(spec.module.clone(), spec.from.clone(), spec.to.clone()),
                )),
                _ => {}
            }
        }
        deletes
    }
}

/// Number of pipe-id slots `generate` assigns for `path`: one per step
/// boundary (up-down *and* physical pipes both consume an id).  Used by the
/// goal store to reserve disjoint pipe-id blocks per goal.
pub fn slot_count(path: &ModulePath) -> u32 {
    if path.steps.is_empty() {
        0
    } else {
        path.steps.len() as u32 + 1
    }
}

#[derive(Debug, Clone, Copy)]
struct PipeSlot {
    id: PipeId,
    physical: bool,
    /// Index of the upper step, if this is an up-down pipe.
    upper: Option<usize>,
    /// Index of the lower step, if this is an up-down pipe.
    lower: Option<usize>,
}

/// Generate the scripts realising `path` for `goal`, numbering pipes from 0
/// (the paper's numbering — correct when only one goal exists).
pub fn generate(nm: &NetworkManager, path: &ModulePath, goal: &ConnectivityGoal) -> ScriptSet {
    generate_with_base(nm, path, goal, 0)
}

/// Generate the scripts realising `path` for `goal`, numbering pipes from
/// `pipe_base`.  Concurrent goals must execute in disjoint pipe-id blocks:
/// pipe ids key per-device blackboard attributes, module pipe state and
/// derived route-table ids, so two goals sharing a device must never reuse
/// an id.  The goal store reserves one block per execution (see
/// [`slot_count`]).
pub fn generate_with_base(
    nm: &NetworkManager,
    path: &ModulePath,
    goal: &ConnectivityGoal,
    pipe_base: u32,
) -> ScriptSet {
    let steps = &path.steps;
    if steps.is_empty() {
        return ScriptSet::default();
    }
    let devices = path.devices();
    let device_pos: BTreeMap<DeviceId, usize> =
        devices.iter().enumerate().map(|(i, d)| (*d, i)).collect();

    // ------------------------------------------------------------------
    // 1. Allocate pipe slots.  Slot i is the pipe *entering* step i; slot
    //    steps.len() is the pipe leaving the last step.  Up-down pipes are
    //    numbered first (in path order) so the ingress device's first pipe is
    //    P0, matching the paper's numbering; physical pipes get the remaining
    //    numbers.
    // ------------------------------------------------------------------
    let n = steps.len();
    let mut slots: Vec<PipeSlot> = Vec::with_capacity(n + 1);
    // Placeholder fill; ids assigned below.
    for i in 0..=n {
        let physical = if i == 0 || i == n {
            true
        } else {
            steps[i - 1].module.device != steps[i].module.device
        };
        let (upper, lower) = if physical {
            (None, None)
        } else {
            match steps[i].entered {
                Entry::Below => (Some(i), Some(i - 1)),
                Entry::Above => (Some(i - 1), Some(i)),
                Entry::Phys => (None, None),
            }
        };
        slots.push(PipeSlot {
            id: PipeId(0),
            physical,
            upper,
            lower,
        });
    }
    let mut next_id = pipe_base;
    for slot in slots.iter_mut().filter(|s| !s.physical) {
        slot.id = PipeId(next_id);
        next_id += 1;
    }
    for slot in slots.iter_mut().filter(|s| s.physical) {
        slot.id = PipeId(next_id);
        next_id += 1;
    }
    let pipe_count = slots.iter().filter(|s| !s.physical).count();

    // ------------------------------------------------------------------
    // 2. Helpers for peer determination.
    // ------------------------------------------------------------------
    let pushed_by: BTreeMap<usize, usize> = steps
        .iter()
        .enumerate()
        .filter(|(_, s)| s.switch.encapsulates())
        .map(|(i, s)| (s.header, i))
        .collect();
    let popped_by: BTreeMap<usize, usize> = steps
        .iter()
        .enumerate()
        .filter(|(_, s)| s.switch.decapsulates())
        .map(|(i, s)| (s.header, i))
        .collect();

    // The counterpart of step `idx`: where its header is handled at the far
    // end (pusher <-> popper; processors pair with the nearest handler of
    // the same header on a different device).
    let counterpart = |idx: usize| -> Option<usize> {
        let s = &steps[idx];
        let this_device = s.module.device;
        let candidate = if s.switch.encapsulates() {
            popped_by.get(&s.header).copied()
        } else if s.switch.decapsulates() {
            pushed_by.get(&s.header).copied()
        } else {
            // Processor: nearest step (forward first, then backward) on a
            // different device touching the same header.
            let fwd = steps
                .iter()
                .enumerate()
                .skip(idx + 1)
                .find(|(_, o)| o.header == s.header && o.module.device != this_device)
                .map(|(i, _)| i);
            fwd.or_else(|| {
                steps
                    .iter()
                    .enumerate()
                    .take(idx)
                    .rev()
                    .find(|(_, o)| o.header == s.header && o.module.device != this_device)
                    .map(|(i, _)| i)
            })
        };
        candidate.filter(|c| steps[*c].module.device != this_device)
    };

    // Given a target step, find the step on the same device nearest to it
    // that touches `header`.
    let near_on_same_device = |target: usize, header: usize| -> Option<usize> {
        let device = steps[target].module.device;
        let mut best: Option<(usize, usize)> = None;
        for (i, s) in steps.iter().enumerate() {
            if i != target && s.module.device == device && s.header == header {
                let dist = i.abs_diff(target);
                if best.is_none_or(|(_, d)| dist < d) {
                    best = Some((i, dist));
                }
            }
        }
        best.map(|(i, _)| i)
    };

    // ------------------------------------------------------------------
    // 3. Build per-device primitives.
    // ------------------------------------------------------------------
    // Two initial headers either way: customer ETH + customer IP for L3
    // goals, customer ETH + the provider's own ETH hand-off for L2 goals.
    let num_initial_headers = 2;
    let is_edge_ip = |idx: usize| -> bool {
        !goal.l2_only
            && steps[idx].module.kind == ModuleKind::Ip
            && steps[idx].header < num_initial_headers
            && steps[idx].switch == SwitchKind::DownDown
    };

    let mut scripts: Vec<DeviceScript> = devices
        .iter()
        .map(|d| DeviceScript {
            device: *d,
            device_alias: nm.device_alias(*d),
            primitives: Vec::new(),
            rendered: Vec::new(),
        })
        .collect();
    let script_index: BTreeMap<DeviceId, usize> =
        devices.iter().enumerate().map(|(i, d)| (*d, i)).collect();

    let render_module = |m: &ModuleRef| -> String {
        format!("<{},{},{}>", m.kind, nm.device_alias(m.device), m.module)
    };

    // 3a. CreatePipe primitives (slot order).
    for slot in slots.iter().filter(|s| !s.physical) {
        let (ui, li) = (slot.upper.unwrap(), slot.lower.unwrap());
        let upper = steps[ui].module.clone();
        let lower = steps[li].module.clone();
        let device = upper.device;

        // Peers: pair the lower module first (its header defines the pipe's
        // far end), then take the module adjacent to that peer handling the
        // upper module's header.
        let peer_lower_idx = counterpart(li);
        let (peer_upper, peer_lower) = match peer_lower_idx {
            Some(pl) => {
                let pu = near_on_same_device(pl, steps[ui].header);
                (
                    pu.map(|i| steps[i].module.clone()),
                    Some(steps[pl].module.clone()),
                )
            }
            None => (None, None),
        };
        let initiate = match (&peer_upper, &peer_lower) {
            (_, Some(p)) | (Some(p), _) => {
                device_pos.get(&device).copied().unwrap_or(0)
                    < device_pos.get(&p.device).copied().unwrap_or(usize::MAX)
            }
            _ => false,
        };
        // Trade-offs satisfy the lower module's declared up-pipe dependency
        // (e.g. the GRE module's "performance trade-offs to be specified").
        let tradeoffs: Vec<TradeoffChoice> = nm
            .abstraction_of(&lower)
            .filter(|a| !a.up_dependencies.is_empty())
            .map(|_| goal.tradeoffs.clone())
            .unwrap_or_default();

        let spec = PipeSpec {
            pipe: slot.id,
            upper: upper.clone(),
            lower: lower.clone(),
            peer_upper: peer_upper.clone(),
            peer_lower: peer_lower.clone(),
            tradeoffs: tradeoffs.clone(),
            initiate,
            resolved: goal.resolved.clone(),
        };
        let mut args = vec![
            render_module(&upper),
            render_module(&lower),
            peer_upper
                .as_ref()
                .map(&render_module)
                .unwrap_or_else(|| "None".into()),
            peer_lower
                .as_ref()
                .map(&render_module)
                .unwrap_or_else(|| "None".into()),
        ];
        if tradeoffs.is_empty() {
            args.push("None".into());
        } else {
            for t in &tradeoffs {
                args.push(match t {
                    TradeoffChoice::InOrderDelivery => "trade-off: in-order delivery".into(),
                    TradeoffChoice::LowErrorRate => "trade-off: error-rate".into(),
                    TradeoffChoice::LowDelay => "trade-off: low-delay".into(),
                });
            }
        }
        let line = format!("{} = create (pipe, {})", slot.id, args.join(", "));
        let idx = script_index[&device];
        scripts[idx].primitives.push(Primitive::CreatePipe(spec));
        scripts[idx].rendered.push(line);
    }

    // 3b. CreateSwitch primitives (step order).
    for (i, step) in steps.iter().enumerate() {
        let in_slot = &slots[i];
        let out_slot = &slots[i + 1];
        let device = step.module.device;
        let idx = script_index[&device];
        // The edge ETH modules facing the (unmanaged) customer need no switch
        // rule, matching Figure 7(b).
        let touches_unmanaged_phys = i == 0 || i + 1 == steps.len();
        if step.module.kind == ModuleKind::Eth && touches_unmanaged_phys {
            continue;
        }
        let is_first_device = device == devices[0];
        if is_edge_ip(i) {
            // Forward and reverse rules with the traffic class and gateway
            // (Figure 7(b) commands 3 and 4).
            let (customer_pipe, core_pipe) = if is_first_device {
                (in_slot, out_slot)
            } else {
                (out_slot, in_slot)
            };
            let (dst_class, gateway, local_class) = if is_first_device {
                (
                    goal.dst_class.clone(),
                    goal.src_gateway.clone(),
                    goal.src_class.clone(),
                )
            } else {
                (
                    goal.src_class.clone(),
                    goal.dst_gateway.clone(),
                    goal.dst_class.clone(),
                )
            };
            // The reverse rule needs the local site's prefix so the module can
            // install the return route towards the customer gateway; the NM
            // already tracks this resolution (dependency maintenance).
            let mut rev_resolved = goal.resolved.clone();
            if let Some(prefix) = goal.resolved.get(&local_class) {
                rev_resolved.insert("gateway-prefix".to_string(), prefix.clone());
            }
            let fwd = SwitchSpec {
                module: step.module.clone(),
                in_pipe: customer_pipe.id,
                out_pipe: core_pipe.id,
                dst_class: Some(dst_class.clone()),
                gateway: None,
                resolved: goal.resolved.clone(),
            };
            let rev = SwitchSpec {
                module: step.module.clone(),
                in_pipe: core_pipe.id,
                out_pipe: customer_pipe.id,
                dst_class: None,
                gateway: Some(gateway.clone()),
                resolved: rev_resolved,
            };
            scripts[idx].rendered.push(format!(
                "create (switch, {}, [{}, dst:{} => {}])",
                render_module(&step.module),
                customer_pipe.id,
                dst_class,
                core_pipe.id
            ));
            scripts[idx].rendered.push(format!(
                "create (switch, {}, [{} => {}, {}])",
                render_module(&step.module),
                core_pipe.id,
                customer_pipe.id,
                gateway
            ));
            scripts[idx].primitives.push(Primitive::CreateSwitch(fwd));
            scripts[idx].primitives.push(Primitive::CreateSwitch(rev));
        } else {
            let spec = SwitchSpec {
                module: step.module.clone(),
                in_pipe: in_slot.id,
                out_pipe: out_slot.id,
                dst_class: None,
                gateway: None,
                resolved: goal.resolved.clone(),
            };
            scripts[idx].rendered.push(format!(
                "create (switch, {}, {}, {})",
                render_module(&step.module),
                in_slot.id,
                out_slot.id
            ));
            scripts[idx].primitives.push(Primitive::CreateSwitch(spec));
        }
    }

    ScriptSet {
        scripts,
        pipe_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nm::pathfinder::PathStep;

    /// A hand-built two-step path exercises the degenerate cases (no peers,
    /// single device).
    #[test]
    fn empty_and_tiny_paths_do_not_panic() {
        let nm = NetworkManager::new(DeviceId::from_raw(1));
        let goal = ConnectivityGoal::vpn(
            ModuleRef::new(
                ModuleKind::Eth,
                crate::ids::ModuleId(1),
                DeviceId::from_raw(1),
            ),
            ModuleRef::new(
                ModuleKind::Eth,
                crate::ids::ModuleId(2),
                DeviceId::from_raw(2),
            ),
        );
        let empty = ModulePath { steps: vec![] };
        assert_eq!(generate(&nm, &empty, &goal).scripts.len(), 0);

        let d = DeviceId::from_raw(1);
        let path = ModulePath {
            steps: vec![
                PathStep {
                    module: ModuleRef::new(ModuleKind::Eth, crate::ids::ModuleId(1), d),
                    switch: SwitchKind::PhyUp,
                    entered: Entry::Phys,
                    header: 1,
                    depth: 2,
                },
                PathStep {
                    module: ModuleRef::new(ModuleKind::Ip, crate::ids::ModuleId(3), d),
                    switch: SwitchKind::DownDown,
                    entered: Entry::Below,
                    header: 0,
                    depth: 1,
                },
                PathStep {
                    module: ModuleRef::new(ModuleKind::Eth, crate::ids::ModuleId(2), d),
                    switch: SwitchKind::UpPhy,
                    entered: Entry::Above,
                    header: 2,
                    depth: 1,
                },
            ],
        };
        let set = generate(&nm, &path, &goal);
        assert_eq!(set.scripts.len(), 1);
        assert_eq!(set.pipe_count, 2);
        // The edge IP module gets the two classified switch rules; the edge
        // ETH modules get none.
        let prims = &set.scripts[0].primitives;
        let switches = prims
            .iter()
            .filter(|p| matches!(p, Primitive::CreateSwitch(_)))
            .count();
        assert_eq!(switches, 2);
        assert!(set.render().contains("dst:C1-S2"));
    }
}
