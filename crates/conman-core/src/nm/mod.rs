//! The Network Manager (NM).
//!
//! The NM is a software entity residing on one of the devices (§II).  It
//! learns the network's *potential* from device announcements and
//! `showPotential` answers, maps high-level connectivity goals onto
//! module-level paths, generates the CONMan primitive scripts that realise a
//! chosen path, and relays module-to-module messages during configuration.

pub mod goal;
pub mod graph;
pub mod pathfinder;
pub mod script;

use crate::abstraction::ModuleAbstraction;
use crate::ids::{ModuleKind, ModuleRef};
use crate::primitives::{Announcement, TradeoffChoice};
use netsim::device::{DeviceId, PortId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

pub use goal::{
    AppliedPlan, Exclusion, GoalId, GoalRecord, GoalStatus, GoalStore, Plan, PlanError,
};
pub use graph::PotentialGraph;
pub use pathfinder::{Entry, ModulePath, PathFinder, PathFinderLimits, PathStep, SearchScratch};
pub use script::{DeviceScript, ScriptSet};

/// A high-level connectivity goal: "configure connectivity between the
/// customer-facing interfaces X and Y for traffic between site classes S1
/// and S2" (§III-C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectivityGoal {
    /// Ingress customer-facing module (e.g. `<ETH,A,a>`).
    pub from: ModuleRef,
    /// Egress customer-facing module (e.g. `<ETH,C,f>`).
    pub to: ModuleRef,
    /// Address domain of the customer traffic (e.g. `customer1`); used by the
    /// path finder's domain pruning.
    pub traffic_domain: String,
    /// Is this a pure layer-2 goal (VLAN tunnelling) rather than an IP goal?
    pub l2_only: bool,
    /// Name of the source site traffic class (e.g. `C1-S1`).
    pub src_class: String,
    /// Name of the destination site traffic class (e.g. `C1-S2`).
    pub dst_class: String,
    /// Name of the gateway on the source site (e.g. `S1-gateway`).
    pub src_gateway: String,
    /// Name of the gateway on the destination site (e.g. `S2-gateway`).
    pub dst_gateway: String,
    /// Mapping from the high-level names above to concrete values (prefixes,
    /// gateway addresses).  This is the one place the NM holds
    /// protocol-specific values, which the paper explicitly allows for IP
    /// addresses (§III-C).
    pub resolved: BTreeMap<String, String>,
    /// Performance trade-offs requested by the human manager.
    pub tradeoffs: Vec<TradeoffChoice>,
}

impl ConnectivityGoal {
    /// Convenience constructor for the paper's VPN goal.
    pub fn vpn(from: ModuleRef, to: ModuleRef) -> Self {
        ConnectivityGoal {
            from,
            to,
            traffic_domain: "customer1".to_string(),
            l2_only: false,
            src_class: "C1-S1".to_string(),
            dst_class: "C1-S2".to_string(),
            src_gateway: "S1-gateway".to_string(),
            dst_gateway: "S2-gateway".to_string(),
            resolved: BTreeMap::new(),
            tradeoffs: vec![
                TradeoffChoice::InOrderDelivery,
                TradeoffChoice::LowErrorRate,
            ],
        }
    }

    /// Add a resolved name → value mapping.
    pub fn resolve(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.resolved.insert(name.into(), value.into());
        self
    }
}

/// What the NM knows about the network: topology announcements plus the
/// module abstractions gathered through `showPotential`.
#[derive(Debug, Default)]
pub struct NetworkManager {
    /// The device hosting the NM.
    pub host: Option<DeviceId>,
    /// Device names by id (from announcements).
    pub device_names: BTreeMap<DeviceId, String>,
    /// Physical adjacency: device -> (port, neighbour device, neighbour port).
    pub adjacency: BTreeMap<DeviceId, Vec<(PortId, DeviceId, PortId)>>,
    /// Module abstractions per device (from showPotential).
    pub abstractions: BTreeMap<DeviceId, Vec<ModuleAbstraction>>,
    /// Resolved identifier → low-level value dependencies the NM tracks
    /// (§II-E: dependency maintenance).
    pub resolved_fields: BTreeMap<String, String>,
}

impl NetworkManager {
    /// Create an NM hosted on `host`.
    pub fn new(host: DeviceId) -> Self {
        NetworkManager {
            host: Some(host),
            ..Default::default()
        }
    }

    /// Record a device announcement.
    pub fn record_announcement(&mut self, a: &Announcement) {
        self.device_names.insert(a.device, a.device_name.clone());
        self.adjacency.insert(a.device, a.neighbors.clone());
    }

    /// Record the showPotential answer of a device.
    pub fn record_potential(&mut self, device: DeviceId, modules: Vec<ModuleAbstraction>) {
        self.abstractions.insert(device, modules);
    }

    /// Record a resolved field value (dependency tracking).
    pub fn record_resolved(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.resolved_fields.insert(name.into(), value.into());
    }

    /// Number of managed devices (devices that have announced).
    pub fn device_count(&self) -> usize {
        self.device_names.len()
    }

    /// Short alias for a device, used when rendering scripts ("RouterA" ->
    /// "A", "SwitchB" -> "B").
    pub fn device_alias(&self, device: DeviceId) -> String {
        match self.device_names.get(&device) {
            Some(name) => name
                .trim_start_matches("Router")
                .trim_start_matches("Switch")
                .trim_start_matches("Device")
                .trim_start_matches("Customer")
                .to_string(),
            None => device.to_string(),
        }
    }

    /// Look up the abstraction of a module.
    pub fn abstraction_of(&self, module: &ModuleRef) -> Option<&ModuleAbstraction> {
        self.abstractions
            .get(&module.device)
            .and_then(|v| v.iter().find(|a| a.name == *module))
    }

    /// Find a module on a device by kind (first match), useful for writing
    /// goals in tests and examples.
    pub fn find_module(&self, device: DeviceId, kind: &ModuleKind) -> Option<ModuleRef> {
        self.abstractions
            .get(&device)?
            .iter()
            .map(|a| a.name.clone())
            .find(|r| r.kind == *kind)
    }

    /// Find the ETH module bound to a given port of a device.
    pub fn find_eth_on_port(&self, device: DeviceId, port: PortId) -> Option<ModuleRef> {
        self.abstractions.get(&device)?.iter().find_map(|a| {
            if a.name.kind == ModuleKind::Eth && a.physical_pipes.iter().any(|p| p.port == port) {
                Some(a.name.clone())
            } else {
                None
            }
        })
    }

    /// Build the potential connectivity graph from everything learnt so far.
    pub fn build_graph(&self) -> PotentialGraph {
        PotentialGraph::build(&self.abstractions, &self.adjacency)
    }

    /// Enumerate all module-level paths that satisfy `goal`.
    pub fn find_paths(&self, goal: &ConnectivityGoal) -> Vec<ModulePath> {
        let graph = self.build_graph();
        PathFinder::new(&graph).find(goal)
    }

    /// Enumerate paths under explicit traversal limits (long chains need a
    /// larger step budget and a smaller path budget than the defaults).
    pub fn find_paths_with(
        &self,
        goal: &ConnectivityGoal,
        limits: pathfinder::PathFinderLimits,
    ) -> Vec<ModulePath> {
        let graph = self.build_graph();
        PathFinder::new(&graph).with_limits(limits).find(goal)
    }

    /// Enumerate paths that avoid the given exclusions — the re-planning
    /// step of self-healing: suspects reported by the diagnoser are excluded
    /// from the traversal itself (§III-C's "route around the faulty
    /// component").  Excluded *modules* are never entered and excluded
    /// *links* are never crossed, so a diagnosis that blames a physical link
    /// reroutes onto a genuine alternative where the topology offers one.
    pub fn find_paths_avoiding(
        &self,
        goal: &ConnectivityGoal,
        excluded: &std::collections::BTreeSet<goal::Exclusion>,
        limits: pathfinder::PathFinderLimits,
    ) -> Vec<ModulePath> {
        let graph = self.build_graph();
        self.find_paths_avoiding_in(
            &graph,
            goal,
            excluded,
            limits,
            &mut pathfinder::SearchScratch::default(),
        )
    }

    /// Like [`NetworkManager::find_paths_avoiding`], but searching a
    /// caller-built [`PotentialGraph`] with caller-owned scratch buffers.
    /// This is the planner's hot path: one graph build and one scratch per
    /// planning worker amortised over every goal in a reconcile pass,
    /// instead of a graph rebuild and fresh buffers per goal.
    pub fn find_paths_avoiding_in(
        &self,
        graph: &PotentialGraph,
        goal: &ConnectivityGoal,
        excluded: &std::collections::BTreeSet<goal::Exclusion>,
        limits: pathfinder::PathFinderLimits,
        scratch: &mut pathfinder::SearchScratch,
    ) -> Vec<ModulePath> {
        let mut modules = std::collections::BTreeSet::new();
        let mut links = Vec::new();
        for e in excluded {
            match e {
                goal::Exclusion::Module(m) => {
                    modules.insert(m.clone());
                }
                goal::Exclusion::Link(a, b) => links.push((*a, *b)),
            }
        }
        PathFinder::new(graph)
            .with_limits(limits)
            .excluding(modules)
            .excluding_links(links)
            .find_with(scratch, goal)
    }

    /// Choose the best path among candidates.
    ///
    /// The selection metric follows §III-C.1: minimise the number of pipes
    /// instantiated in the routers (i.e. router state and NM communication
    /// overhead), breaking ties in favour of paths whose modules advertise
    /// good forwarding bandwidth (which makes the NM prefer the MPLS path).
    pub fn choose_path<'a>(&self, paths: &'a [ModulePath]) -> Option<&'a ModulePath> {
        paths.iter().min_by_key(|p| {
            let pipes = p.pipe_count();
            let fast = p
                .steps
                .iter()
                .filter(|s| {
                    self.abstraction_of(&s.module)
                        .map(|a| a.fast_forwarding)
                        .unwrap_or(false)
                })
                .count();
            // Fewer pipes first; then prefer more fast-forwarding modules.
            (pipes, usize::MAX - fast)
        })
    }

    /// Generate the per-device CONMan scripts realising `path` for `goal`.
    pub fn generate_scripts(&self, path: &ModulePath, goal: &ConnectivityGoal) -> ScriptSet {
        script::generate(self, path, goal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ModuleId;

    #[test]
    fn aliases_strip_common_prefixes() {
        let mut nm = NetworkManager::new(DeviceId::from_raw(1));
        nm.device_names
            .insert(DeviceId::from_raw(1), "RouterA".into());
        nm.device_names
            .insert(DeviceId::from_raw(2), "SwitchB".into());
        nm.device_names
            .insert(DeviceId::from_raw(3), "weird".into());
        assert_eq!(nm.device_alias(DeviceId::from_raw(1)), "A");
        assert_eq!(nm.device_alias(DeviceId::from_raw(2)), "B");
        assert_eq!(nm.device_alias(DeviceId::from_raw(3)), "weird");
        assert!(nm.device_alias(DeviceId::from_raw(99)).starts_with("dev:"));
    }

    #[test]
    fn goal_builder() {
        let from = ModuleRef::new(ModuleKind::Eth, ModuleId(1), DeviceId::from_raw(1));
        let to = ModuleRef::new(ModuleKind::Eth, ModuleId(2), DeviceId::from_raw(2));
        let goal = ConnectivityGoal::vpn(from, to)
            .resolve("C1-S2", "10.0.2.0/24")
            .resolve("S1-gateway", "192.168.0.1");
        assert_eq!(goal.resolved["C1-S2"], "10.0.2.0/24");
        assert_eq!(goal.tradeoffs.len(), 2);
        assert!(!goal.l2_only);
    }
}
