//! Two-phase configuration transactions over the management channel.
//!
//! A goal's scripts touch several devices; executing them fire-and-forget
//! (the original `configure` behaviour) can strand half-configured state
//! when a mid-path device is missing a module or crashes mid-flight.  The
//! transaction executor makes multi-device configuration atomic:
//!
//! 1. **Stage** — every device in the script set validates its primitives
//!    (are the referenced modules present?) and holds them without touching
//!    the data plane.  Any rejection or silence (a crashed device) aborts
//!    the transaction everywhere before anything is applied.
//! 2. **Commit** — devices commit one at a time in reverse path order (so
//!    every peer-negotiation initiator finds its peers already configured).
//!    A device that fails its commit (or never answers) triggers a
//!    rollback: every already-committed device gets the teardown mirror of
//!    its script (`delete` per `create`, reverse order), and still-staged
//!    devices get an abort.
//!
//! Teardown transactions (withdraw, self-healing) run **lenient**: a device
//! that does not answer is skipped rather than failing the transaction — it
//! is either crashed (nothing to delete; a reboot clears state anyway) or
//! will be cleaned up by a later reconcile.

use super::ManagedNetwork;
use crate::nm::goal::GoalId;
use crate::nm::ScriptSet;
use crate::primitives::{Primitive, SegmentCommit, SegmentVerdict, WireMessage};
use conman_obs::TraceKind;
use mgmt_channel::ManagementChannel;
use netsim::device::DeviceId;
use netsim::network::Network;
use std::collections::{BTreeMap, BTreeSet};

/// Moments a [`TxnHook`] is invoked at, for deterministic fault injection
/// between transaction phases (e.g. crash a device after it staged but
/// before it commits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnEvent {
    /// Every device staged successfully; commits are about to start.
    Staged {
        /// The transaction id.
        txn: u64,
    },
    /// The commit for `device` is about to be sent.
    BeforeCommit {
        /// The transaction id.
        txn: u64,
        /// The device about to commit.
        device: DeviceId,
    },
    /// `device` acknowledged its commit successfully.
    Committed {
        /// The transaction id.
        txn: u64,
        /// The device that committed.
        device: DeviceId,
    },
}

/// A hook invoked between transaction phases with mutable access to the
/// simulated network — the injection point for mid-transaction faults.
pub type TxnHook = Box<dyn FnMut(&TxnEvent, &mut Network) + Send>;

/// What a batched transaction did: per-goal verdicts plus the message-level
/// shape of the batch (how many devices were contacted — one stage and one
/// commit round-trip each, regardless of how many goals the pass carries).
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// The transaction id shared by every device in the batch.
    pub txn: u64,
    /// Goals whose every segment committed.
    pub committed: Vec<GoalId>,
    /// Goals that failed staging or commit (with the first error), each
    /// rolled back via its teardown mirror without disturbing siblings.
    pub failed: Vec<(GoalId, String)>,
    /// Goals whose reverse path order could not share the batch's single
    /// commit order; each ran as its own strict transaction instead (their
    /// verdicts still land in `committed`/`failed`).
    pub fallback: Vec<GoalId>,
    /// Devices that carried at least one segment of the batch proper
    /// (fallback transactions not included).
    pub devices_contacted: usize,
    /// Total primitives committed across all segments.
    pub primitives: usize,
}

impl BatchOutcome {
    /// The recorded error for a failed goal.
    pub fn error_for(&self, goal: GoalId) -> Option<&str> {
        self.failed
            .iter()
            .find(|(g, _)| *g == goal)
            .map(|(_, e)| e.as_str())
    }
}

/// One goal's teardown work: its delete primitives grouped per device
/// (the shape `ScriptSet::teardown` returns).
pub type GoalTeardown = (GoalId, Vec<(DeviceId, Vec<Primitive>)>);

/// What a batched lenient teardown did: every goal's delete scripts in the
/// pass ran as **one** StageBatch/CommitBatch transaction — each touched
/// device staged once and committed once for the whole teardown phase,
/// instead of one lenient transaction per goal (the ROADMAP's batched
/// teardown item).
#[derive(Debug, Clone, Default)]
pub struct TeardownBatchOutcome {
    /// The transaction id shared by every device in the batch.
    pub txn: u64,
    /// Devices that carried at least one teardown segment.
    pub devices_contacted: usize,
    /// Total delete primitives committed across all segments.
    pub primitives: usize,
    /// Delete primitives committed per goal.
    pub per_goal: BTreeMap<GoalId, usize>,
    /// Devices skipped leniently (listed in `skip`, silent, or crashed
    /// between the phases) — deletes are idempotent and a rebooted device
    /// comes back with clean state, exactly as with
    /// [`ManagedNetwork::run_teardown`].
    pub skipped: Vec<DeviceId>,
}

/// What a transaction did.
#[derive(Debug, Clone, Default)]
pub struct TransactionOutcome {
    /// The transaction id.
    pub txn: u64,
    /// Did every device commit successfully?
    pub committed: bool,
    /// Devices that staged successfully.
    pub staged: Vec<DeviceId>,
    /// Devices that committed successfully (in commit order).
    pub committed_devices: Vec<DeviceId>,
    /// The device whose staging or commit failed, if any.
    pub failed_device: Option<DeviceId>,
    /// Errors reported by the failed device (empty when it simply never
    /// answered).
    pub errors: Vec<String>,
    /// Devices whose already-committed state was rolled back with the
    /// teardown mirror of their scripts.
    pub rolled_back: Vec<DeviceId>,
    /// Devices skipped by a lenient transaction (they did not answer).
    pub skipped: Vec<DeviceId>,
    /// Total primitives committed (configuration) or issued (teardown).
    pub primitives: usize,
}

impl TransactionOutcome {
    /// A one-line summary for error reporting.
    pub fn summary(&self) -> String {
        if self.committed {
            format!(
                "txn {} committed on {} device(s)",
                self.txn,
                self.committed_devices.len()
            )
        } else {
            format!(
                "txn {} failed at {:?}: {} (rolled back {} device(s))",
                self.txn,
                self.failed_device,
                self.errors
                    .first()
                    .cloned()
                    .unwrap_or_else(|| "no answer".into()),
                self.rolled_back.len()
            )
        }
    }
}

impl<C: ManagementChannel> ManagedNetwork<C> {
    fn fire_hook(&mut self, event: TxnEvent) {
        if let Some(mut hook) = self.txn_hook.take() {
            hook(&event, &mut self.net);
            self.txn_hook = Some(hook);
        }
    }

    /// Drain the staging verdict for (`device`, `txn`), if one arrived.
    fn take_stage_result(&mut self, device: DeviceId, txn: u64) -> Option<Vec<String>> {
        self.stage_results.remove(&(device, txn))
    }

    /// Drain the commit result for (`device`, `txn`), if one arrived.
    fn take_commit_result(
        &mut self,
        device: DeviceId,
        txn: u64,
    ) -> Option<Vec<Result<crate::primitives::PrimitiveResult, String>>> {
        self.commit_results.remove(&(device, txn))
    }

    /// Drain the batched staging verdicts for (`device`, `txn`).
    fn take_stage_batch_result(
        &mut self,
        device: DeviceId,
        txn: u64,
    ) -> Option<Vec<SegmentVerdict>> {
        self.stage_batch_results.remove(&(device, txn))
    }

    /// Drain the batched commit results for (`device`, `txn`).
    fn take_commit_batch_result(
        &mut self,
        device: DeviceId,
        txn: u64,
    ) -> Option<Vec<SegmentCommit>> {
        self.commit_batch_results.remove(&(device, txn))
    }

    /// Execute `scripts` as a strict two-phase transaction: stage on every
    /// device, then commit device by device, rolling back on any failure.
    /// On return either every device committed (`outcome.committed`) or no
    /// device retains any of the transaction's configuration.
    pub fn run_transaction(&mut self, scripts: &ScriptSet) -> TransactionOutcome {
        let txn = self.goals.next_txn();
        let mut outcome = TransactionOutcome {
            txn,
            ..Default::default()
        };
        if scripts.scripts.is_empty() {
            outcome.committed = true;
            return outcome;
        }

        // ---- Phase 1: stage everywhere. -------------------------------
        for ds in &scripts.scripts {
            let msg = WireMessage::Stage {
                txn,
                primitives: ds.primitives.clone(),
            };
            self.send(self.nm_host(), ds.device, &msg);
        }
        self.run_management();
        for ds in &scripts.scripts {
            let ok = match self.take_stage_result(ds.device, txn) {
                Some(errors) if errors.is_empty() => {
                    outcome.staged.push(ds.device);
                    true
                }
                // First failure in path order wins, so the reported device
                // and errors stay consistent when several devices fail.
                Some(errors) => {
                    if outcome.failed_device.is_none() {
                        outcome.failed_device = Some(ds.device);
                        outcome.errors = errors;
                    }
                    false
                }
                None => {
                    // Silence: crashed or unreachable.
                    if outcome.failed_device.is_none() {
                        outcome.failed_device = Some(ds.device);
                    }
                    false
                }
            };
            self.recorder.event(
                self.net.now().as_nanos(),
                TraceKind::StageDevice {
                    txn,
                    device: ds.device.as_u64(),
                    segments: 1,
                    ok,
                },
            );
        }
        if outcome.staged.len() < scripts.scripts.len() {
            // Abort everything that staged; nothing was applied anywhere.
            let staged = outcome.staged.clone();
            for device in staged {
                self.send(self.nm_host(), device, &WireMessage::Abort { txn });
                self.recorder.event(
                    self.net.now().as_nanos(),
                    TraceKind::AbortDevice {
                        txn,
                        device: device.as_u64(),
                    },
                );
            }
            self.run_management();
            return outcome;
        }
        self.fire_hook(TxnEvent::Staged { txn });

        // ---- Phase 2: commit in *reverse* path order. -----------------
        // Peer negotiations (field queries, GRE keys, MPLS labels) are
        // always initiated by the earlier device of a peer pair, so
        // committing back-to-front guarantees every initiator's peers are
        // already configured and can answer within the initiator's own
        // management round.
        for i in (0..scripts.scripts.len()).rev() {
            let ds = &scripts.scripts[i];
            let device = ds.device;
            self.fire_hook(TxnEvent::BeforeCommit { txn, device });
            self.send(self.nm_host(), device, &WireMessage::Commit { txn });
            self.run_management();
            let ok = match self.take_commit_result(device, txn) {
                Some(results) => {
                    let errs: Vec<String> =
                        results.iter().filter_map(|r| r.clone().err()).collect();
                    outcome.primitives += results.len();
                    if errs.is_empty() {
                        true
                    } else {
                        outcome.errors = errs;
                        false
                    }
                }
                None => false,
            };
            self.recorder.event(
                self.net.now().as_nanos(),
                TraceKind::CommitDevice {
                    txn,
                    device: device.as_u64(),
                    ok,
                },
            );
            if ok {
                outcome.committed_devices.push(device);
                self.fire_hook(TxnEvent::Committed { txn, device });
                continue;
            }
            // Commit failed here: roll back what already committed (and the
            // failing device itself, whose partial creates may have landed),
            // abort the rest.
            outcome.failed_device = Some(device);
            let mut to_rollback: Vec<&crate::nm::DeviceScript> =
                scripts.scripts[i..].iter().collect();
            // A silent device (crashed) cannot be rolled back; skip it.
            to_rollback.retain(|d| self.net.device(d.device).map(|dev| dev.up).unwrap_or(false));
            for ds in to_rollback {
                let deletes = ScriptSet::teardown_of(ds);
                if deletes.is_empty() {
                    continue;
                }
                self.run_script(ds.device, deletes);
                outcome.rolled_back.push(ds.device);
            }
            for ds in &scripts.scripts[..i] {
                self.send(self.nm_host(), ds.device, &WireMessage::Abort { txn });
                self.recorder.event(
                    self.net.now().as_nanos(),
                    TraceKind::AbortDevice {
                        txn,
                        device: ds.device.as_u64(),
                    },
                );
            }
            self.run_management();
            return outcome;
        }
        outcome.committed = true;
        outcome
    }

    /// Execute a teardown (all-`delete`) script set as a lenient
    /// transaction: devices that fail to stage or commit are skipped, never
    /// rolled back — deletes are idempotent and a crashed device loses the
    /// state at reboot anyway.  `skip` lists devices known unresponsive
    /// (e.g. from a fault report); they are not contacted at all.
    pub fn run_teardown(
        &mut self,
        teardown: &[(DeviceId, Vec<Primitive>)],
        skip: &[DeviceId],
    ) -> TransactionOutcome {
        let txn = self.goals.next_txn();
        let mut outcome = TransactionOutcome {
            txn,
            ..Default::default()
        };
        let work: Vec<&(DeviceId, Vec<Primitive>)> = teardown
            .iter()
            .filter(|(d, prims)| !skip.contains(d) && !prims.is_empty())
            .collect();
        if work.is_empty() {
            outcome.committed = true;
            return outcome;
        }
        for (device, primitives) in &work {
            let msg = WireMessage::Stage {
                txn,
                primitives: primitives.clone(),
            };
            self.send(self.nm_host(), *device, &msg);
        }
        self.run_management();
        let mut committable = Vec::new();
        for (device, _) in &work {
            match self.take_stage_result(*device, txn) {
                Some(errors) if errors.is_empty() => {
                    outcome.staged.push(*device);
                    committable.push(*device);
                }
                _ => outcome.skipped.push(*device),
            }
        }
        for device in committable {
            self.send(self.nm_host(), device, &WireMessage::Commit { txn });
            self.run_management();
            match self.take_commit_result(device, txn) {
                Some(results) => {
                    outcome.primitives += results.len();
                    outcome.committed_devices.push(device);
                }
                None => {
                    // Staged but silent (crashed between the phases): abort
                    // so the agent does not hold the staged deletes forever
                    // if it comes back.
                    self.send(self.nm_host(), device, &WireMessage::Abort { txn });
                    outcome.skipped.push(device);
                }
            }
        }
        self.run_management();
        outcome.committed = true;
        outcome
    }

    /// Execute many goals' teardown scripts (all-`delete`) as **one**
    /// batched lenient transaction: every touched device is staged once
    /// (all goals' delete segments in one `StageBatch`) and committed once,
    /// so a withdraw- or update-heavy pass costs one stage + one commit
    /// round-trip per device instead of one transaction per goal.
    ///
    /// Teardown semantics stay lenient: devices in `skip` are not contacted
    /// at all, and a device that does not answer either phase is passed
    /// over (its staged deletes are aborted so a rebooting agent does not
    /// hold them forever) — never rolled back, since deletes are idempotent
    /// and a crashed device loses the state at reboot anyway.
    pub fn run_teardown_batch(
        &mut self,
        items: &[GoalTeardown],
        skip: &[DeviceId],
    ) -> TeardownBatchOutcome {
        let txn = self.goals.next_txn();
        let mut outcome = TeardownBatchOutcome {
            txn,
            ..Default::default()
        };
        // Borrow each goal's primitive list straight out of `items` — the
        // segments are never cloned; the encoder reads the slices in place.
        let mut segments: BTreeMap<DeviceId, Vec<(u64, &[Primitive])>> = BTreeMap::new();
        for (goal, teardown) in items {
            outcome.per_goal.entry(*goal).or_insert(0);
            for (device, primitives) in teardown {
                if skip.contains(device) || primitives.is_empty() {
                    continue;
                }
                segments
                    .entry(*device)
                    .or_default()
                    .push((goal.0, primitives.as_slice()));
            }
        }
        outcome.devices_contacted = segments.len();
        if segments.is_empty() {
            return outcome;
        }
        let prev_batch_relays = self.batch_relays;
        self.batch_relays = true;

        // ---- Phase 1: stage every device once. ------------------------
        let goals_by_device: BTreeMap<DeviceId, Vec<u64>> = segments
            .iter()
            .map(|(d, segs)| (*d, segs.iter().map(|(g, _)| *g).collect()))
            .collect();
        for (device, segs) in &segments {
            self.send_stage_batch(*device, txn, segs);
        }
        drop(segments);
        self.run_management();
        // Deletes always validate, so a device either answers (committable)
        // or is silent (lenient skip).
        let mut committable = Vec::new();
        for (device, goals) in &goals_by_device {
            let ok = match self.take_stage_batch_result(*device, txn) {
                Some(_) => {
                    committable.push(*device);
                    true
                }
                None => {
                    outcome.skipped.push(*device);
                    false
                }
            };
            self.recorder.event(
                self.net.now().as_nanos(),
                TraceKind::StageDevice {
                    txn,
                    device: device.as_u64(),
                    segments: goals.len() as u64,
                    ok,
                },
            );
        }

        // ---- Phase 2: commit each answering device once. --------------
        for device in &committable {
            self.send(
                self.nm_host(),
                *device,
                &WireMessage::CommitBatch {
                    txn,
                    goals: goals_by_device[device].clone(),
                },
            );
        }
        self.run_management();
        for device in committable {
            let ok = match self.take_commit_batch_result(device, txn) {
                Some(segs) => {
                    for sc in segs {
                        outcome.primitives += sc.results.len();
                        *outcome.per_goal.entry(GoalId(sc.goal)).or_insert(0) += sc.results.len();
                    }
                    true
                }
                None => {
                    // Crashed between the phases: abort so the agent does
                    // not hold the staged deletes forever if it comes back.
                    self.send(
                        self.nm_host(),
                        device,
                        &WireMessage::AbortBatch {
                            txn,
                            goals: goals_by_device[&device].clone(),
                        },
                    );
                    self.recorder.event(
                        self.net.now().as_nanos(),
                        TraceKind::AbortDevice {
                            txn,
                            device: device.as_u64(),
                        },
                    );
                    outcome.skipped.push(device);
                    false
                }
            };
            self.recorder.event(
                self.net.now().as_nanos(),
                TraceKind::CommitDevice {
                    txn,
                    device: device.as_u64(),
                    ok,
                },
            );
        }
        self.run_management();
        self.batch_relays = prev_batch_relays;
        outcome
    }

    /// Execute many goals' script sets as **one** batched two-phase
    /// transaction: every device is staged once (all its goals' segments in
    /// one `StageBatch`) and committed once (one `CommitBatch`), so the
    /// NM's command count per pass is proportional to the number of devices
    /// touched, not `goals × devices`.  Relays are coalesced per
    /// (device, round) for the duration of the batch.
    ///
    /// Per-goal atomicity is preserved inside the batch: a goal whose
    /// segment fails staging or commit on any device is rolled back via its
    /// teardown mirror (and its still-held segments aborted) without
    /// aborting sibling goals.  Commit order across devices follows the
    /// reverse of the latest path position any goal assigns a device, so
    /// every peer-negotiation initiator still finds its peers committed.
    /// A goal whose own reverse path order cannot be embedded in that
    /// single global order (e.g. two goals traversing shared devices in
    /// opposite directions) is excluded from the batch and executed as its
    /// own strict transaction afterwards — correctness first, batching
    /// where it is sound (`BatchOutcome::fallback` records them).
    pub fn run_batch(&mut self, items: &[(GoalId, &ScriptSet)]) -> BatchOutcome {
        // Execution-time verification (debug builds): every script set
        // handed to the batch executor must carry an exact teardown mirror,
        // or the rollback/withdraw paths below would leak staged state.
        // (Commit-order conflicts are *not* asserted — the fixed-point
        // partition below resolves them via the strict fallback.)
        #[cfg(debug_assertions)]
        {
            let model = super::verify::scripts_model(items);
            let violations = conman_analyze::plan::check_teardowns(&model);
            debug_assert!(
                violations.is_empty(),
                "batch scripts fail teardown-mirror verification: {violations:?}"
            );
        }
        let txn = self.goals.next_txn();
        let mut outcome = BatchOutcome {
            txn,
            ..Default::default()
        };
        // Partition into goals that can share one commit order and goals
        // that must fall back to per-goal transactions.  Removing a
        // conflicting goal changes the aggregate order, so iterate to a
        // fixed point (immediate for same-direction goal sets, the common
        // case on every chain topology).
        let mut batchable: Vec<(GoalId, &ScriptSet)> = items.to_vec();
        let mut fallback: Vec<(GoalId, &ScriptSet)> = Vec::new();
        let mut position: BTreeMap<DeviceId, usize>;
        loop {
            position = BTreeMap::new();
            for (_, scripts) in &batchable {
                for (i, ds) in scripts.scripts.iter().enumerate() {
                    let p = position.entry(ds.device).or_insert(0);
                    *p = (*p).max(i);
                }
            }
            let mut order: Vec<DeviceId> = position.keys().copied().collect();
            order.sort_by(|a, b| position[b].cmp(&position[a]).then(a.cmp(b)));
            let commit_index: BTreeMap<DeviceId, usize> =
                order.iter().enumerate().map(|(i, d)| (*d, i)).collect();
            // A goal is batchable iff its devices' commit positions strictly
            // decrease along its path (its own reverse path order is a
            // subsequence of the global commit order).
            let violators: Vec<usize> = batchable
                .iter()
                .enumerate()
                .filter(|(_, (_, scripts))| {
                    scripts
                        .scripts
                        .windows(2)
                        .any(|w| commit_index[&w[0].device] < commit_index[&w[1].device])
                })
                .map(|(k, _)| k)
                .collect();
            if violators.is_empty() {
                break;
            }
            for k in violators.into_iter().rev() {
                fallback.push(batchable.remove(k));
            }
        }
        // Preserve submission order for the fallback executions.
        fallback.reverse();

        // Coalesce: one segment list per device (goal order preserved) for
        // the StageBatch messages, plus a lighter per-device goal-id list
        // for the bookkeeping that follows.  Each goal's primitives are
        // *borrowed* straight out of its plan — the stage encoder reads the
        // slices in place, so nothing is cloned at all.
        let mut segments: BTreeMap<DeviceId, Vec<(u64, &[Primitive])>> = BTreeMap::new();
        let mut goals_by_device: BTreeMap<DeviceId, Vec<u64>> = BTreeMap::new();
        for (goal, scripts) in &batchable {
            for ds in &scripts.scripts {
                segments
                    .entry(ds.device)
                    .or_default()
                    .push((goal.0, ds.primitives.as_slice()));
                goals_by_device.entry(ds.device).or_default().push(goal.0);
            }
        }
        let mut alive: BTreeSet<GoalId> = batchable.iter().map(|(g, _)| *g).collect();
        let mut errors: BTreeMap<GoalId, String> = BTreeMap::new();
        outcome.devices_contacted = goals_by_device.len();
        self.recorder.inc("txn.batches", 1);
        self.recorder
            .observe("txn.batch.devices", outcome.devices_contacted as f64);
        if goals_by_device.is_empty() && fallback.is_empty() {
            outcome.committed = alive.into_iter().collect();
            return outcome;
        }
        let prev_batch_relays = self.batch_relays;
        self.batch_relays = true;

        // ---- Phase 1: stage every device once. ------------------------
        if !segments.is_empty() {
            for (device, segs) in &segments {
                self.send_stage_batch(*device, txn, segs);
            }
            drop(segments);
            self.run_management();
        } else {
            drop(segments);
        }
        let mut silent: BTreeSet<DeviceId> = BTreeSet::new();
        for (device, goals) in &goals_by_device {
            let ok = match self.take_stage_batch_result(*device, txn) {
                Some(verdicts) => {
                    let mut clean = true;
                    for v in verdicts {
                        if v.errors.is_empty() {
                            continue;
                        }
                        clean = false;
                        let goal = GoalId(v.goal);
                        if alive.remove(&goal) {
                            errors.insert(
                                goal,
                                format!("txn {txn}: staging failed on {device}: {}", v.errors[0]),
                            );
                        }
                    }
                    clean
                }
                None => {
                    // Silence: crashed or unreachable — every segment it
                    // holds is lost.
                    silent.insert(*device);
                    for goal in goals.iter().map(|g| GoalId(*g)) {
                        if alive.remove(&goal) {
                            errors.insert(
                                goal,
                                format!("txn {txn}: {device} did not answer staging"),
                            );
                        }
                    }
                    false
                }
            };
            self.recorder.event(
                self.net.now().as_nanos(),
                TraceKind::StageDevice {
                    txn,
                    device: device.as_u64(),
                    segments: goals.len() as u64,
                    ok,
                },
            );
        }
        // Abort dead goals' segments still held on answering devices.
        let mut aborted_any = false;
        for (device, goals) in &goals_by_device {
            if silent.contains(device) {
                continue;
            }
            let dead: Vec<u64> = goals
                .iter()
                .copied()
                .filter(|g| !alive.contains(&GoalId(*g)))
                .collect();
            if !dead.is_empty() {
                self.send(
                    self.nm_host(),
                    *device,
                    &WireMessage::AbortBatch { txn, goals: dead },
                );
                self.recorder.event(
                    self.net.now().as_nanos(),
                    TraceKind::AbortDevice {
                        txn,
                        device: device.as_u64(),
                    },
                );
                aborted_any = true;
            }
        }
        if aborted_any {
            self.run_management();
        }
        if !alive.is_empty() {
            self.fire_hook(TxnEvent::Staged { txn });
        }

        // ---- Phase 2: commit each device once, latest-position first. --
        // Peer negotiations are initiated by the earlier device of a peer
        // pair, so committing devices in reverse path position guarantees
        // every initiator's peers are already configured (the same argument
        // as the per-goal executor, lifted to the batch).
        let mut order: Vec<DeviceId> = goals_by_device
            .keys()
            .copied()
            .filter(|d| !silent.contains(d))
            .collect();
        order.sort_by(|a, b| position[b].cmp(&position[a]).then(a.cmp(b)));
        if alive.is_empty() {
            order.clear();
        }
        for (idx, device) in order.iter().copied().enumerate() {
            let goals_here: Vec<u64> = goals_by_device[&device]
                .iter()
                .copied()
                .filter(|g| alive.contains(&GoalId(*g)))
                .collect();
            if goals_here.is_empty() {
                continue;
            }
            self.fire_hook(TxnEvent::BeforeCommit { txn, device });
            self.send(
                self.nm_host(),
                device,
                &WireMessage::CommitBatch {
                    txn,
                    goals: goals_here.clone(),
                },
            );
            self.run_management();
            let mut newly_failed: Vec<GoalId> = Vec::new();
            let commit_ok = match self.take_commit_batch_result(device, txn) {
                Some(segs) => {
                    let mut clean = true;
                    for sc in segs {
                        let goal = GoalId(sc.goal);
                        outcome.primitives += sc.results.len();
                        let first_err = sc.results.iter().find_map(|r| r.clone().err());
                        match first_err {
                            None => {}
                            Some(e) => {
                                clean = false;
                                if alive.remove(&goal) {
                                    errors.insert(
                                        goal,
                                        format!("txn {txn}: commit failed on {device}: {e}"),
                                    );
                                    newly_failed.push(goal);
                                }
                            }
                        }
                    }
                    if clean {
                        self.fire_hook(TxnEvent::Committed { txn, device });
                    }
                    clean
                }
                None => {
                    // The whole device went silent mid-commit: every goal it
                    // was asked to commit fails (its partial creates are
                    // unreachable anyway — a reboot clears them).
                    for goal in goals_here.iter().map(|g| GoalId(*g)) {
                        if alive.remove(&goal) {
                            errors
                                .insert(goal, format!("txn {txn}: {device} did not answer commit"));
                            newly_failed.push(goal);
                        }
                    }
                    false
                }
            };
            self.recorder.event(
                self.net.now().as_nanos(),
                TraceKind::CommitDevice {
                    txn,
                    device: device.as_u64(),
                    ok: commit_ok,
                },
            );
            for goal in newly_failed {
                self.rollback_goal_in_batch(txn, goal, items, &order[..=idx], &order[idx + 1..]);
            }
        }
        self.run_management();

        // ---- Fallback: conflicting goals run as their own strict
        // transactions (correct commit order per goal, per-goal rollback as
        // before batching existed). ------------------------------------
        for (goal, scripts) in fallback {
            outcome.fallback.push(goal);
            let t = self.run_transaction(scripts);
            outcome.primitives += t.primitives;
            if t.committed {
                alive.insert(goal);
            } else {
                errors.insert(goal, t.summary());
            }
        }

        outcome.committed = items
            .iter()
            .map(|(g, _)| *g)
            .filter(|g| alive.contains(g))
            .collect();
        outcome.failed = errors.into_iter().collect();
        self.batch_relays = prev_batch_relays;
        outcome
    }

    /// Undo one failed goal inside a batch: teardown-mirror its segments on
    /// devices that already (possibly partially) committed, abort its
    /// still-staged segments on devices yet to commit.  Sibling goals are
    /// untouched — their segments live in disjoint pipe-id blocks.
    fn rollback_goal_in_batch(
        &mut self,
        txn: u64,
        goal: GoalId,
        items: &[(GoalId, &ScriptSet)],
        committed_devices: &[DeviceId],
        pending_devices: &[DeviceId],
    ) {
        let Some(scripts) = items.iter().find(|(g, _)| *g == goal).map(|(_, s)| *s) else {
            return;
        };
        for ds in &scripts.scripts {
            if !committed_devices.contains(&ds.device) {
                continue;
            }
            // A silent device (crashed) cannot be rolled back; skip it.
            if !self
                .net
                .device(ds.device)
                .map(|dev| dev.up)
                .unwrap_or(false)
            {
                continue;
            }
            let deletes = ScriptSet::teardown_of(ds);
            if !deletes.is_empty() {
                self.run_script(ds.device, deletes);
            }
        }
        for device in pending_devices {
            if scripts.scripts.iter().any(|ds| ds.device == *device) {
                self.send(
                    self.nm_host(),
                    *device,
                    &WireMessage::AbortBatch {
                        txn,
                        goals: vec![goal.0],
                    },
                );
                self.recorder.event(
                    self.net.now().as_nanos(),
                    TraceKind::AbortDevice {
                        txn,
                        device: device.as_u64(),
                    },
                );
            }
        }
    }
}
