//! Two-phase configuration transactions over the management channel.
//!
//! A goal's scripts touch several devices; executing them fire-and-forget
//! (the original `configure` behaviour) can strand half-configured state
//! when a mid-path device is missing a module or crashes mid-flight.  The
//! transaction executor makes multi-device configuration atomic:
//!
//! 1. **Stage** — every device in the script set validates its primitives
//!    (are the referenced modules present?) and holds them without touching
//!    the data plane.  Any rejection or silence (a crashed device) aborts
//!    the transaction everywhere before anything is applied.
//! 2. **Commit** — devices commit one at a time in reverse path order (so
//!    every peer-negotiation initiator finds its peers already configured).
//!    A device that fails its commit (or never answers) triggers a
//!    rollback: every already-committed device gets the teardown mirror of
//!    its script (`delete` per `create`, reverse order), and still-staged
//!    devices get an abort.
//!
//! Teardown transactions (withdraw, self-healing) run **lenient**: a device
//! that does not answer is skipped rather than failing the transaction — it
//! is either crashed (nothing to delete; a reboot clears state anyway) or
//! will be cleaned up by a later reconcile.

use super::ManagedNetwork;
use crate::nm::ScriptSet;
use crate::primitives::{Primitive, WireMessage};
use mgmt_channel::ManagementChannel;
use netsim::device::DeviceId;
use netsim::network::Network;

/// Moments a [`TxnHook`] is invoked at, for deterministic fault injection
/// between transaction phases (e.g. crash a device after it staged but
/// before it commits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnEvent {
    /// Every device staged successfully; commits are about to start.
    Staged {
        /// The transaction id.
        txn: u64,
    },
    /// The commit for `device` is about to be sent.
    BeforeCommit {
        /// The transaction id.
        txn: u64,
        /// The device about to commit.
        device: DeviceId,
    },
    /// `device` acknowledged its commit successfully.
    Committed {
        /// The transaction id.
        txn: u64,
        /// The device that committed.
        device: DeviceId,
    },
}

/// A hook invoked between transaction phases with mutable access to the
/// simulated network — the injection point for mid-transaction faults.
pub type TxnHook = Box<dyn FnMut(&TxnEvent, &mut Network) + Send>;

/// What a transaction did.
#[derive(Debug, Clone, Default)]
pub struct TransactionOutcome {
    /// The transaction id.
    pub txn: u64,
    /// Did every device commit successfully?
    pub committed: bool,
    /// Devices that staged successfully.
    pub staged: Vec<DeviceId>,
    /// Devices that committed successfully (in commit order).
    pub committed_devices: Vec<DeviceId>,
    /// The device whose staging or commit failed, if any.
    pub failed_device: Option<DeviceId>,
    /// Errors reported by the failed device (empty when it simply never
    /// answered).
    pub errors: Vec<String>,
    /// Devices whose already-committed state was rolled back with the
    /// teardown mirror of their scripts.
    pub rolled_back: Vec<DeviceId>,
    /// Devices skipped by a lenient transaction (they did not answer).
    pub skipped: Vec<DeviceId>,
    /// Total primitives committed (configuration) or issued (teardown).
    pub primitives: usize,
}

impl TransactionOutcome {
    /// A one-line summary for error reporting.
    pub fn summary(&self) -> String {
        if self.committed {
            format!(
                "txn {} committed on {} device(s)",
                self.txn,
                self.committed_devices.len()
            )
        } else {
            format!(
                "txn {} failed at {:?}: {} (rolled back {} device(s))",
                self.txn,
                self.failed_device,
                self.errors
                    .first()
                    .cloned()
                    .unwrap_or_else(|| "no answer".into()),
                self.rolled_back.len()
            )
        }
    }
}

impl<C: ManagementChannel> ManagedNetwork<C> {
    fn fire_hook(&mut self, event: TxnEvent) {
        if let Some(mut hook) = self.txn_hook.take() {
            hook(&event, &mut self.net);
            self.txn_hook = Some(hook);
        }
    }

    /// Drain the staging verdict for (`device`, `txn`), if one arrived.
    fn take_stage_result(&mut self, device: DeviceId, txn: u64) -> Option<Vec<String>> {
        let idx = self
            .stage_results
            .iter()
            .position(|(d, t, _)| *d == device && *t == txn)?;
        Some(self.stage_results.swap_remove(idx).2)
    }

    /// Drain the commit result for (`device`, `txn`), if one arrived.
    fn take_commit_result(
        &mut self,
        device: DeviceId,
        txn: u64,
    ) -> Option<Vec<Result<crate::primitives::PrimitiveResult, String>>> {
        let idx = self
            .commit_results
            .iter()
            .position(|(d, t, _)| *d == device && *t == txn)?;
        Some(self.commit_results.swap_remove(idx).2)
    }

    /// Execute `scripts` as a strict two-phase transaction: stage on every
    /// device, then commit device by device, rolling back on any failure.
    /// On return either every device committed (`outcome.committed`) or no
    /// device retains any of the transaction's configuration.
    pub fn run_transaction(&mut self, scripts: &ScriptSet) -> TransactionOutcome {
        let txn = self.goals.next_txn();
        let mut outcome = TransactionOutcome {
            txn,
            ..Default::default()
        };
        if scripts.scripts.is_empty() {
            outcome.committed = true;
            return outcome;
        }

        // ---- Phase 1: stage everywhere. -------------------------------
        for ds in &scripts.scripts {
            let msg = WireMessage::Stage {
                txn,
                primitives: ds.primitives.clone(),
            };
            self.send(self.nm_host(), ds.device, &msg);
        }
        self.run_management();
        for ds in &scripts.scripts {
            match self.take_stage_result(ds.device, txn) {
                Some(errors) if errors.is_empty() => outcome.staged.push(ds.device),
                // First failure in path order wins, so the reported device
                // and errors stay consistent when several devices fail.
                Some(errors) => {
                    if outcome.failed_device.is_none() {
                        outcome.failed_device = Some(ds.device);
                        outcome.errors = errors;
                    }
                }
                None => {
                    // Silence: crashed or unreachable.
                    if outcome.failed_device.is_none() {
                        outcome.failed_device = Some(ds.device);
                    }
                }
            }
        }
        if outcome.staged.len() < scripts.scripts.len() {
            // Abort everything that staged; nothing was applied anywhere.
            let staged = outcome.staged.clone();
            for device in staged {
                self.send(self.nm_host(), device, &WireMessage::Abort { txn });
            }
            self.run_management();
            return outcome;
        }
        self.fire_hook(TxnEvent::Staged { txn });

        // ---- Phase 2: commit in *reverse* path order. -----------------
        // Peer negotiations (field queries, GRE keys, MPLS labels) are
        // always initiated by the earlier device of a peer pair, so
        // committing back-to-front guarantees every initiator's peers are
        // already configured and can answer within the initiator's own
        // management round.
        for i in (0..scripts.scripts.len()).rev() {
            let ds = &scripts.scripts[i];
            let device = ds.device;
            self.fire_hook(TxnEvent::BeforeCommit { txn, device });
            self.send(self.nm_host(), device, &WireMessage::Commit { txn });
            self.run_management();
            let ok = match self.take_commit_result(device, txn) {
                Some(results) => {
                    let errs: Vec<String> =
                        results.iter().filter_map(|r| r.clone().err()).collect();
                    outcome.primitives += results.len();
                    if errs.is_empty() {
                        true
                    } else {
                        outcome.errors = errs;
                        false
                    }
                }
                None => false,
            };
            if ok {
                outcome.committed_devices.push(device);
                self.fire_hook(TxnEvent::Committed { txn, device });
                continue;
            }
            // Commit failed here: roll back what already committed (and the
            // failing device itself, whose partial creates may have landed),
            // abort the rest.
            outcome.failed_device = Some(device);
            let mut to_rollback: Vec<&crate::nm::DeviceScript> =
                scripts.scripts[i..].iter().collect();
            // A silent device (crashed) cannot be rolled back; skip it.
            to_rollback.retain(|d| self.net.device(d.device).map(|dev| dev.up).unwrap_or(false));
            for ds in to_rollback {
                let deletes = ScriptSet::teardown_of(ds);
                if deletes.is_empty() {
                    continue;
                }
                self.run_script(ds.device, deletes);
                outcome.rolled_back.push(ds.device);
            }
            for ds in &scripts.scripts[..i] {
                self.send(self.nm_host(), ds.device, &WireMessage::Abort { txn });
            }
            self.run_management();
            return outcome;
        }
        outcome.committed = true;
        outcome
    }

    /// Execute a teardown (all-`delete`) script set as a lenient
    /// transaction: devices that fail to stage or commit are skipped, never
    /// rolled back — deletes are idempotent and a crashed device loses the
    /// state at reboot anyway.  `skip` lists devices known unresponsive
    /// (e.g. from a fault report); they are not contacted at all.
    pub fn run_teardown(
        &mut self,
        teardown: &[(DeviceId, Vec<Primitive>)],
        skip: &[DeviceId],
    ) -> TransactionOutcome {
        let txn = self.goals.next_txn();
        let mut outcome = TransactionOutcome {
            txn,
            ..Default::default()
        };
        let work: Vec<&(DeviceId, Vec<Primitive>)> = teardown
            .iter()
            .filter(|(d, prims)| !skip.contains(d) && !prims.is_empty())
            .collect();
        if work.is_empty() {
            outcome.committed = true;
            return outcome;
        }
        for (device, primitives) in &work {
            let msg = WireMessage::Stage {
                txn,
                primitives: primitives.clone(),
            };
            self.send(self.nm_host(), *device, &msg);
        }
        self.run_management();
        let mut committable = Vec::new();
        for (device, _) in &work {
            match self.take_stage_result(*device, txn) {
                Some(errors) if errors.is_empty() => {
                    outcome.staged.push(*device);
                    committable.push(*device);
                }
                _ => outcome.skipped.push(*device),
            }
        }
        for device in committable {
            self.send(self.nm_host(), device, &WireMessage::Commit { txn });
            self.run_management();
            match self.take_commit_result(device, txn) {
                Some(results) => {
                    outcome.primitives += results.len();
                    outcome.committed_devices.push(device);
                }
                None => {
                    // Staged but silent (crashed between the phases): abort
                    // so the agent does not hold the staged deletes forever
                    // if it comes back.
                    self.send(self.nm_host(), device, &WireMessage::Abort { txn });
                    outcome.skipped.push(device);
                }
            }
        }
        self.run_management();
        outcome.committed = true;
        outcome
    }
}
