//! The autonomic control loop: an event-driven NM runtime.
//!
//! Everything before this module was *call-driven*: an operator invoked
//! `reconcile()` / the Healer, and the network converged exactly once.  The
//! [`ControlLoop`] closes the loop the way CONMan's management plane is
//! meant to run — push-style, continuously, with no operator in the path:
//!
//! 1. **Tick** — a [`StepClock`] advances the simulated network by one
//!    fixed-width tick (`Network::run_until` lands exactly on the
//!    boundary, so runs replay tick for tick), and the shared
//!    [`TelemetrySchedule`] converts due rounds into events.
//! 2. **Events** — the loop drains one unified [`NmEvent`] stream:
//!    telemetry ticks, push-mode counter deltas from subscribed agents,
//!    module notifications, operator submissions / updates / withdrawals.
//!    Withdrawals coalesce into a single batched teardown and always win
//!    over an in-flight repair.
//! 3. **Health** — every `Active` goal with known endpoints gets a short
//!    probe burst inside its own flow-attribution window; the goal is
//!    marked `Degraded` when its **attributed delivery ratio** (delivered
//!    vs. sent, from the destination host's per-goal
//!    [`FlowCounters`](netsim::stats::FlowCounters)) drops below the
//!    configured threshold — *not* when device totals move, so one goal's
//!    fault never degrades its healthy neighbours.
//! 4. **Diagnose** — degraded goals are handed to the pluggable
//!    [`LoopClient`] (the `conman-diagnose` Diagnoser/Healer pair in the
//!    full system), which localises the fault from per-goal flow deltas
//!    under the other goals' live background traffic and reports the
//!    modules the re-plan must avoid.
//! 5. **Repair** — one **batched** `reconcile_with` pass re-plans and
//!    re-executes everything that needs work (each device staged once and
//!    committed once), verifies each repair with an end-to-end probe, and
//!    epoch-tags the pass: a fault that lands *while* a pass is committing
//!    fails that pass's verification and simply converges on the next
//!    tick's epoch.
//!
//! On a converged network a tick sends **zero** management messages: health
//! is judged from customer-side traffic, so the management plane is silent
//! until something is actually wrong.

use super::event::{EventQueue, GoalEndpoints, NmEvent};
use super::reconcile::ReconcileReport;
use super::ManagedNetwork;
use crate::nm::goal::{Exclusion, GoalId, GoalStatus};
use conman_obs::TraceKind;
use mgmt_channel::{ManagementChannel, TelemetrySchedule};
use netsim::clock::{SimDuration, SimTime, StepClock};
use netsim::device::DeviceId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Event budget for driving one probe (and its encapsulation chain) to
/// quiescence; matches the testbeds' probe helpers.
const PROBE_EVENT_BUDGET: u64 = 100_000;

/// Tuning knobs of a [`ControlLoop`].
#[derive(Debug, Clone, Copy)]
pub struct LoopConfig {
    /// Width of one tick of simulated time.
    pub tick: SimDuration,
    /// Telemetry period (health rounds fall due on this schedule; defaults
    /// to one round per tick).
    pub telemetry_period: SimDuration,
    /// Probes sent per goal per health round.
    pub probes_per_goal: u32,
    /// A goal is `Degraded` when its attributed delivery percentage falls
    /// *below* this threshold (100 = any loss degrades).
    pub degraded_below_pct: u8,
}

impl Default for LoopConfig {
    fn default() -> Self {
        let tick = SimDuration::from_millis(100);
        LoopConfig {
            tick,
            telemetry_period: tick,
            probes_per_goal: 2,
            degraded_below_pct: 100,
        }
    }
}

/// What the loop's diagnosis client reports for one degraded goal.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LoopDiagnosis {
    /// Modules and links the goal's re-plan must avoid.  Link exclusions
    /// reach the path finder's traversal, so the batched repair pass
    /// reroutes around a blamed link in one epoch wherever the topology
    /// offers an alternative.
    pub excluded: BTreeSet<Exclusion>,
    /// Path devices that did not answer telemetry (crashed or unreachable).
    pub unresponsive: Vec<DeviceId>,
    /// The device the prime suspect pins the fault to, if any.
    pub blamed: Option<DeviceId>,
    /// The physical link a suspect pins the fault to, if any (normalised
    /// with the smaller device id first).
    pub blamed_link: Option<(DeviceId, DeviceId)>,
    /// One-line human-readable verdict.
    pub summary: String,
}

/// The loop's pluggable diagnosis stage.  `conman-diagnose` implements
/// this with its Diagnoser (per-goal flow-delta localisation) and Healer
/// (suspects → excluded modules) — the two become *clients of the loop*
/// rather than operator entry points.  Without a client the loop still
/// repairs by re-planning blind (good enough for transient faults).
pub trait LoopClient<C: ManagementChannel> {
    /// Localise why `goal` is not carrying traffic.  `endpoints` names the
    /// goal's probe endpoints; `background` lists the *other* live goals so
    /// the client can keep their traffic flowing during the measurement —
    /// localisation must stay correct under load.
    fn localise(
        &mut self,
        mn: &mut ManagedNetwork<C>,
        goal: GoalId,
        endpoints: GoalEndpoints,
        background: &[(GoalId, GoalEndpoints)],
    ) -> LoopDiagnosis;
}

/// What one tick did.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TickReport {
    /// The tick's ordinal (1-based).
    pub tick: u64,
    /// Simulated time at the tick boundary.
    pub at: SimTime,
    /// The repair epoch after the tick (increments once per repair pass).
    pub epoch: u64,
    /// Events drained this tick.
    pub events: usize,
    /// Telemetry rounds that fell due.
    pub telemetry_rounds: usize,
    /// Push-mode counter-delta events received.
    pub counter_deltas: usize,
    /// Agent notifications received.
    pub notifications: usize,
    /// Goals submitted through the event stream this tick.
    pub submitted: Vec<GoalId>,
    /// Goals withdrawn this tick (their teardowns ran as one batch).
    pub withdrawn: Vec<GoalId>,
    /// Goals the health phase freshly degraded (attributed delivery ratio
    /// below threshold).
    pub degraded: Vec<GoalId>,
    /// Per-goal diagnosis verdicts from the loop client.
    pub diagnosed: Vec<(GoalId, LoopDiagnosis)>,
    /// The repair pass, when one ran.
    pub repair: Option<ReconcileReport>,
    /// Management messages the NM sent during the tick (0 when converged).
    pub nm_sent: u64,
    /// Management messages the NM received during the tick.
    pub nm_received: u64,
    /// Link-level frames the network delivered during the tick (probe
    /// traffic, and — on the in-band channel — every flooded management
    /// frame: the tick's frame budget, previously visible only inside the
    /// bench harness).
    pub frames: u64,
}

impl TickReport {
    /// Did this tick leave the management plane silent?
    pub fn quiescent(&self) -> bool {
        self.nm_sent == 0 && self.nm_received == 0
    }
}

/// A multi-tick run's worth of reports.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LoopReport {
    /// Per-tick reports, in order.
    pub ticks: Vec<TickReport>,
    /// Did the run end with every goal settled (`Active` or `Failed`) and
    /// the management plane silent?
    pub converged: bool,
}

impl LoopReport {
    /// The first tick (1-based ordinal) whose health phase degraded a goal.
    pub fn first_detection(&self) -> Option<u64> {
        self.ticks
            .iter()
            .find(|t| !t.degraded.is_empty())
            .map(|t| t.tick)
    }

    /// The first tick whose repair pass left every stored goal `Active`.
    pub fn first_repair(&self) -> Option<u64> {
        self.ticks
            .iter()
            .find(|t| t.repair.as_ref().is_some_and(|r| r.converged()))
            .map(|t| t.tick)
    }

    /// The first tick (1-based ordinal) whose health phase degraded *this*
    /// goal — its per-goal ticks-to-detect, relative to the run.
    pub fn detection_tick(&self, id: GoalId) -> Option<u64> {
        self.ticks
            .iter()
            .find(|t| t.degraded.contains(&id))
            .map(|t| t.tick)
    }

    /// The first tick whose repair pass left *this* goal `Active` — its
    /// per-goal ticks-to-repair, relative to the run.
    pub fn repair_tick(&self, id: GoalId) -> Option<u64> {
        self.ticks
            .iter()
            .find(|t| {
                t.repair.as_ref().is_some_and(|r| {
                    r.outcome(id)
                        .is_some_and(|o| o.status == GoalStatus::Active)
                })
            })
            .map(|t| t.tick)
    }

    /// Link-level frames delivered across the whole run (sum of the ticks'
    /// frame budgets).
    pub fn frames(&self) -> u64 {
        self.ticks.iter().map(|t| t.frames).sum()
    }

    /// Frames delivered from the first detection tick to the end of the
    /// run — the wire cost of detect + repair (equals [`Self::frames`]
    /// when the fault was already present at the run's first tick).
    pub fn repair_frames(&self) -> u64 {
        let from = self.first_detection().unwrap_or(u64::MAX);
        self.ticks
            .iter()
            .filter(|t| t.tick >= from)
            .map(|t| t.frames)
            .sum()
    }
}

/// The autonomic control loop.  Owns the tick clock, the telemetry
/// schedule, the event queue and the per-goal probe endpoints; drives a
/// [`ManagedNetwork`]'s goal store to its desired state tick after tick
/// with no operator in the path.
pub struct ControlLoop<C: ManagementChannel> {
    /// Tuning knobs (tick width, probe burst size, degradation threshold).
    pub config: LoopConfig,
    clock: StepClock,
    schedule: TelemetrySchedule,
    events: EventQueue,
    client: Option<Box<dyn LoopClient<C>>>,
    endpoints: BTreeMap<GoalId, GoalEndpoints>,
    /// Last pushed per-device subscription lists (so quiescent ticks never
    /// re-send subscriptions).
    subscriptions: BTreeMap<DeviceId, Vec<u64>>,
    probe_seq: u64,
    epoch: u64,
}

impl<C: ManagementChannel> ControlLoop<C> {
    /// A loop anchored at the network's current simulated time: tick
    /// boundaries and telemetry rounds are laid out from "now", shared
    /// between the [`StepClock`] and the [`TelemetrySchedule`].
    pub fn new(mn: &ManagedNetwork<C>, config: LoopConfig) -> Self {
        let now = mn.net.now();
        let clock = StepClock::starting_at(now, config.tick);
        let mut schedule = TelemetrySchedule::new(config.telemetry_period);
        // First round due at the first tick boundary, not at time zero.
        schedule.align_to(now + config.telemetry_period);
        ControlLoop {
            config,
            clock,
            schedule,
            events: EventQueue::new(),
            client: None,
            endpoints: BTreeMap::new(),
            subscriptions: BTreeMap::new(),
            probe_seq: 0,
            epoch: 0,
        }
    }

    /// Attach a diagnosis client (builder style).
    pub fn with_client(mut self, client: Box<dyn LoopClient<C>>) -> Self {
        self.client = Some(client);
        self
    }

    /// Completed ticks.
    pub fn ticks(&self) -> u64 {
        self.clock.ticks()
    }

    /// The current repair epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Queue a raw event.
    pub fn enqueue(&mut self, event: NmEvent) {
        self.events.push(event);
    }

    /// Operator intent: declare a goal (applied on the next tick).
    pub fn submit(&mut self, goal: crate::nm::ConnectivityGoal, endpoints: Option<GoalEndpoints>) {
        self.events.push(NmEvent::Submit { goal, endpoints });
    }

    /// Operator intent: withdraw a goal (processed on the next tick, before
    /// any repair — a withdrawal cancels an in-flight repair cleanly).
    pub fn withdraw(&mut self, id: GoalId) {
        self.events.push(NmEvent::Withdraw(id));
    }

    /// Adopt a goal that was submitted to the store directly, registering
    /// its probe endpoints with the loop.
    pub fn track(&mut self, id: GoalId, endpoints: GoalEndpoints) {
        self.endpoints.insert(id, endpoints);
    }

    /// Run one tick: advance the network to the tick boundary, drain the
    /// event stream, and — when a telemetry round fell due — run the
    /// health → diagnose → repair pipeline.
    pub fn tick(&mut self, mn: &mut ManagedNetwork<C>) -> TickReport {
        let before = mn.nm_counters();
        let frames_before = mn.net.frames_delivered();
        let deadline = self.clock.advance();
        mn.net.run_until(deadline);
        let now = mn.net.now();
        let mut report = TickReport {
            tick: self.clock.ticks(),
            at: now,
            epoch: self.epoch,
            ..Default::default()
        };
        mn.recorder.enter(
            now.as_nanos(),
            TraceKind::TickStart {
                tick: report.tick,
                epoch: self.epoch,
            },
        );
        mn.recorder.inc("loop.ticks", 1);

        // ---- 1. Event-ify this tick's inputs. -------------------------
        for at in self.schedule.take_due(now) {
            self.events.push(NmEvent::TelemetryDue { at });
        }
        for n in mn.notifications.drain(..) {
            self.events.push(NmEvent::AgentNotification(n));
        }
        for (device, flows) in mn.take_pushed_flow_reports() {
            // The push report feeds the telemetry history store *and* the
            // event stream: the loop reacts to the event, the flight
            // recorder keeps the window queryable after the fact.
            for (tag, counters) in &flows {
                mn.recorder
                    .record_flow(device.as_u64(), *tag, now.as_nanos(), *counters);
            }
            mn.recorder.inc("flow.push_reports", 1);
            self.events.push(NmEvent::CounterDelta { device, flows });
        }

        // ---- 2. Drain the stream, in arrival order. -------------------
        let mut withdraws = Vec::new();
        for event in self.events.drain() {
            report.events += 1;
            match event {
                NmEvent::TelemetryDue { .. } => report.telemetry_rounds += 1,
                NmEvent::CounterDelta { .. } => report.counter_deltas += 1,
                NmEvent::AgentNotification(_) => report.notifications += 1,
                NmEvent::Submit { goal, endpoints } => {
                    let id = mn.submit(goal);
                    if let Some(ep) = endpoints {
                        self.endpoints.insert(id, ep);
                    }
                    mn.recorder
                        .event(now.as_nanos(), TraceKind::Submit { goal: id.0 });
                    report.submitted.push(id);
                }
                NmEvent::Update { id, goal } => {
                    mn.update_goal(id, goal);
                }
                NmEvent::Withdraw(id) => withdraws.push(id),
            }
        }

        // ---- 3. Withdrawals first: one batched teardown, and an
        // in-flight repair of a withdrawn goal is simply dropped. --------
        if !withdraws.is_empty() {
            for id in &withdraws {
                self.endpoints.remove(id);
                mn.recorder
                    .event(now.as_nanos(), TraceKind::Withdraw { goal: id.0 });
            }
            mn.withdraw_many(&withdraws);
            report.withdrawn = withdraws;
            // The withdrawn goals' tags must stop being watched even if no
            // repair pass runs this tick (the tick already carries teardown
            // messages, so this costs no quiescent-tick silence).
            self.refresh_subscriptions(mn);
        }

        if report.telemetry_rounds > 0 {
            self.health_phase(mn, &mut report);
            self.diagnose_phase(mn, &mut report);
            self.repair_phase(mn, &mut report);
        }

        let after = mn.nm_counters();
        report.nm_sent = after.sent.saturating_sub(before.sent);
        report.nm_received = after.received.saturating_sub(before.received);
        report.frames = mn.net.frames_delivered().saturating_sub(frames_before);
        mn.recorder.event(
            mn.net.now().as_nanos(),
            TraceKind::TickEnd {
                events: report.events as u64,
                nm_sent: report.nm_sent,
                nm_received: report.nm_received,
                frames: report.frames,
            },
        );
        mn.recorder.exit();
        report
    }

    /// Tick until every stored goal is settled (`Active` or `Failed`), the
    /// event queue is empty and the management plane went silent for a full
    /// tick — or `max_ticks` ran out.
    pub fn run_until_converged(
        &mut self,
        mn: &mut ManagedNetwork<C>,
        max_ticks: u64,
    ) -> LoopReport {
        let mut report = LoopReport::default();
        for _ in 0..max_ticks {
            let tick = self.tick(mn);
            let had_round = tick.telemetry_rounds > 0;
            let silent = tick.nm_sent == 0;
            report.ticks.push(tick);
            let settled = mn
                .goals
                .iter()
                .all(|r| matches!(r.status, GoalStatus::Active | GoalStatus::Failed));
            if had_round && silent && settled && self.events.is_empty() {
                report.converged = true;
                return report;
            }
        }
        report
    }

    /// One end-to-end probe burst for a goal, inside its flow-attribution
    /// windows.  Returns `(sent, delivered)` with `delivered` read from the
    /// destination host's per-goal [`FlowCounters`] — window-based
    /// attribution, not device totals, so concurrent goals never score each
    /// other's traffic.
    fn burst(&mut self, mn: &mut ManagedNetwork<C>, id: GoalId, ep: GoalEndpoints) -> (u64, u64) {
        let sent = u64::from(self.config.probes_per_goal.max(1));
        let before = mn.net.flow_counters(ep.dst, id.0).local_delivered;
        for _ in 0..sent {
            self.probe_seq += 1;
            let payload = format!("loop-{}-{}", id.0, self.probe_seq).into_bytes();
            mn.net.begin_flow_window(id.0);
            let _ = mn.net.send_udp(ep.src, ep.dst_ip, 40000, 7000, &payload);
            mn.net.run_to_quiescence(PROBE_EVENT_BUDGET);
            mn.net.end_flow_window();
        }
        // Keep the sink host's delivered-packet buffer from growing without
        // bound across a long run; the verdict comes from the counters.
        if let Ok(d) = mn.net.device_mut(ep.dst) {
            let _ = d.take_delivered();
        }
        let after = mn.net.flow_counters(ep.dst, id.0).local_delivered;
        (sent, after.saturating_sub(before))
    }

    /// Health: probe every `Active` goal with known endpoints; degrade the
    /// ones whose attributed delivery ratio fell below threshold.
    fn health_phase(&mut self, mn: &mut ManagedNetwork<C>, report: &mut TickReport) {
        let active: Vec<GoalId> = mn
            .goals
            .ids()
            .into_iter()
            .filter(|id| mn.goals.status(*id) == Some(GoalStatus::Active))
            .collect();
        for id in active {
            let Some(ep) = self.endpoints.get(&id).copied() else {
                continue;
            };
            let (sent, delivered) = self.burst(mn, id, ep);
            let healthy = delivered * 100 >= u64::from(self.config.degraded_below_pct) * sent;
            mn.recorder.event(
                mn.net.now().as_nanos(),
                TraceKind::HealthProbe {
                    goal: id.0,
                    sent,
                    delivered,
                    healthy,
                },
            );
            if !healthy {
                if let Some(rec) = mn.goals.get_mut(id) {
                    rec.status = GoalStatus::Degraded;
                    rec.last_error = Some(format!(
                        "health round: {delivered}/{sent} probe(s) delivered for this goal"
                    ));
                }
                mn.recorder.inc("health.degraded", 1);
                report.degraded.push(id);
            }
        }
    }

    /// Diagnose: hand every degraded goal that still has an applied plan to
    /// the loop client, with the other live goals as background traffic;
    /// record the exclusions its re-plan must respect.
    fn diagnose_phase(&mut self, mn: &mut ManagedNetwork<C>, report: &mut TickReport) {
        let Some(mut client) = self.client.take() else {
            return;
        };
        let work: Vec<GoalId> = mn
            .goals
            .ids()
            .into_iter()
            .filter(|id| mn.goals.status(*id).is_some_and(|s| s.needs_work()))
            .collect();
        for id in work {
            if mn.goals.get(id).and_then(|r| r.applied()).is_none() {
                continue;
            }
            let Some(ep) = self.endpoints.get(&id).copied() else {
                continue;
            };
            let background: Vec<(GoalId, GoalEndpoints)> = self
                .endpoints
                .iter()
                .filter(|(g, _)| **g != id && mn.goals.status(**g) == Some(GoalStatus::Active))
                .map(|(g, e)| (*g, *e))
                .collect();
            mn.recorder.enter(
                mn.net.now().as_nanos(),
                TraceKind::DiagnoseStart { goal: id.0 },
            );
            let diagnosis = client.localise(mn, id, ep, &background);
            mn.recorder.event(
                mn.net.now().as_nanos(),
                TraceKind::Diagnosed {
                    goal: id.0,
                    blamed_device: diagnosis.blamed.map(|d| d.as_u64()),
                    blamed_link: diagnosis.blamed_link.map(|(a, b)| (a.as_u64(), b.as_u64())),
                    exclusions: diagnosis.excluded.len() as u64,
                    summary: diagnosis.summary.clone(),
                },
            );
            mn.recorder.exit();
            mn.recorder
                .observe("diagnose.exclusions", diagnosis.excluded.len() as f64);
            mn.goals.mark_degraded(id, diagnosis.excluded.clone());
            report.diagnosed.push((id, diagnosis));
        }
        self.client = Some(client);
    }

    /// Repair: one batched reconcile pass over everything that needs work,
    /// each repair verified with an end-to-end probe.  The pass gets its
    /// own epoch: a fault racing the pass fails verification and converges
    /// under the next tick's epoch instead of wedging this one.
    fn repair_phase(&mut self, mn: &mut ManagedNetwork<C>, report: &mut TickReport) {
        let needing = mn.goals.iter().filter(|r| r.status.needs_work()).count();
        if needing == 0 {
            return;
        }
        self.epoch += 1;
        report.epoch = self.epoch;
        mn.recorder.enter(
            mn.net.now().as_nanos(),
            TraceKind::RepairStart {
                epoch: self.epoch,
                goals: needing as u64,
            },
        );
        let wall = Instant::now();
        let endpoints = self.endpoints.clone();
        let mut seq = self.probe_seq;
        let outcome = mn.reconcile_with(|mn, id| {
            let ep = endpoints.get(&id)?;
            seq += 1;
            let payload = format!("verify-{}-{seq}", id.0).into_bytes();
            mn.net
                .send_udp(ep.src, ep.dst_ip, 40000, 7000, &payload)
                .ok()?;
            mn.net.run_to_quiescence(PROBE_EVENT_BUDGET);
            let delivered = mn
                .net
                .device_mut(ep.dst)
                .map(|d| d.take_delivered().iter().any(|p| p.payload == payload))
                .unwrap_or(false);
            Some(delivered)
        });
        self.probe_seq = seq;
        mn.recorder.inc("repair.passes", 1);
        mn.recorder
            .observe("repair.wall_us", wall.elapsed().as_micros() as f64);
        mn.recorder.observe("repair.pass.goals", needing as f64);
        mn.recorder.event(
            mn.net.now().as_nanos(),
            TraceKind::RepairEnd {
                epoch: self.epoch,
                transactions: outcome.transactions as u64,
            },
        );
        mn.recorder.exit();
        self.refresh_subscriptions(mn);
        report.repair = Some(outcome);
    }

    /// Subscribe every device on an active goal's path to push-mode flow
    /// reports for the goals crossing it.  Only *changed* subscription
    /// lists are re-sent, and only repair ticks call this — quiescent ticks
    /// stay silent.
    fn refresh_subscriptions(&mut self, mn: &mut ManagedNetwork<C>) {
        let mut wanted: BTreeMap<DeviceId, Vec<u64>> = BTreeMap::new();
        for rec in mn.goals.iter() {
            if rec.status != GoalStatus::Active {
                continue;
            }
            let Some(applied) = rec.applied() else {
                continue;
            };
            for device in applied.path.devices() {
                let tags = wanted.entry(device).or_default();
                if !tags.contains(&rec.id.0) {
                    tags.push(rec.id.0);
                }
            }
        }
        // Cancel before (re)subscribing: a device no active goal's path
        // crosses any more gets the empty tag list, so its agent stops
        // watching — otherwise goal churn would grow the watch sets (and
        // this map) without bound and retired goal ids could keep pushing
        // phantom reports.
        let stale: Vec<DeviceId> = self
            .subscriptions
            .keys()
            .filter(|d| !wanted.contains_key(d))
            .copied()
            .collect();
        for device in stale {
            mn.subscribe_flows(&[device], &[]);
            self.subscriptions.remove(&device);
        }
        let changed: Vec<(DeviceId, Vec<u64>)> = wanted
            .iter()
            .filter(|(d, tags)| self.subscriptions.get(d) != Some(tags))
            .map(|(d, tags)| (*d, tags.clone()))
            .collect();
        for (device, tags) in changed {
            mn.subscribe_flows(&[device], &tags);
            self.subscriptions.insert(device, tags);
        }
    }
}
