//! The NM's unified event stream.
//!
//! Everything that can make the autonomic control loop act is an
//! [`NmEvent`] on one deterministic queue: telemetry rounds falling due on
//! the simulated clock, push-mode counter reports from device agents,
//! module notifications, and operator intent changes (submit / update /
//! withdraw).  The loop drains the queue once per tick, in arrival order —
//! there is no other control path, which is what makes a run replayable
//! tick for tick.

use crate::nm::{ConnectivityGoal, GoalId};
use crate::primitives::Notification;
use netsim::clock::SimTime;
use netsim::device::DeviceId;
use netsim::stats::FlowCounters;
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// The data-plane endpoints the loop probes a goal between: the customer
/// host that originates test traffic and the host (and address) that must
/// receive it.  Both sit *outside* the managed network — per-goal health is
/// judged the way the customer experiences it, from delivered traffic, not
/// from management state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoalEndpoints {
    /// Host that originates the goal's probe traffic.
    pub src: DeviceId,
    /// Host that must receive it.
    pub dst: DeviceId,
    /// Destination address the probes are sent to.
    pub dst_ip: Ipv4Addr,
}

/// One event on the NM's unified stream.
#[derive(Debug, Clone)]
pub enum NmEvent {
    /// A telemetry round fell due at `at` (from
    /// [`TelemetrySchedule::take_due`](mgmt_channel::TelemetrySchedule::take_due)).
    /// The loop's health/diagnose/repair machinery only runs on ticks that
    /// carry at least one of these.
    TelemetryDue {
        /// The instant the round was scheduled for.
        at: SimTime,
    },
    /// A device pushed an unsolicited flow report (`SubscribeFlows`
    /// subscription): the listed tags' counters moved since the last
    /// report.
    CounterDelta {
        /// The reporting device.
        device: DeviceId,
        /// `(flow tag, new cumulative counters)` per changed tag.
        flows: Vec<(u64, FlowCounters)>,
    },
    /// A module raised a notification through its agent.
    AgentNotification(Notification),
    /// Operator intent: declare a goal (applied by the next tick's
    /// reconcile, with per-goal probing if endpoints are known).
    Submit {
        /// The desired connectivity.
        goal: ConnectivityGoal,
        /// Probe endpoints, when the operator can name them.
        endpoints: Option<GoalEndpoints>,
    },
    /// Operator intent: replace a goal's desired state.
    Update {
        /// The goal to update.
        id: GoalId,
        /// The new desired connectivity.
        goal: ConnectivityGoal,
    },
    /// Operator intent: withdraw a goal.  Withdrawals in one tick coalesce
    /// into a single batched teardown, and a withdrawal always wins over an
    /// in-flight repair — the goal is simply gone.
    Withdraw(GoalId),
}

/// A FIFO of [`NmEvent`]s.  Deterministic: events are processed strictly in
/// arrival order, once per loop tick.
#[derive(Debug, Default)]
pub struct EventQueue {
    queue: VecDeque<NmEvent>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn push(&mut self, event: NmEvent) {
        self.queue.push_back(event);
    }

    /// Drain every queued event, in arrival order.
    pub fn drain(&mut self) -> Vec<NmEvent> {
        self.queue.drain(..).collect()
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_drain_in_arrival_order() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(NmEvent::TelemetryDue { at: SimTime::ZERO });
        q.push(NmEvent::Withdraw(GoalId(4)));
        assert_eq!(q.len(), 2);
        let drained = q.drain();
        assert!(matches!(drained[0], NmEvent::TelemetryDue { .. }));
        assert!(matches!(drained[1], NmEvent::Withdraw(GoalId(4))));
        assert!(q.is_empty());
    }
}
