//! Orchestration of a managed network: the simulated network, one management
//! agent per managed device, the management channel between them, and the NM.
//!
//! This is the "harness" that the examples, integration tests and experiment
//! binaries drive: announce → discover (showPotential) → map a high-level
//! goal to paths → execute the chosen path's scripts while relaying
//! module-to-module messages and counting everything for Table VI.

#[path = "loop.rs"]
pub mod control_loop;
pub mod event;
pub mod reconcile;
pub mod txn;
pub mod verify;

use crate::abstraction::CounterSnapshot;
use crate::agent::ManagementAgent;
use crate::nm::{ConnectivityGoal, GoalStore, ModulePath, NetworkManager, ScriptSet};
use crate::primitives::{
    EnvelopeKind, ModuleEnvelope, Notification, Primitive, PrimitiveResult, ScriptSegment,
    SegmentCommit, SegmentVerdict, WireMessage,
};
use crate::wire::{self, WireCodec};
use conman_obs::Recorder;
use mgmt_channel::{ChannelCounters, ManagementChannel, MessageCategory, MgmtMessage};
use netsim::device::DeviceId;
use netsim::network::Network;
use std::collections::BTreeMap;

pub use control_loop::{
    ControlLoop, LoopClient, LoopConfig, LoopDiagnosis, LoopReport, TickReport,
};
pub use event::{EventQueue, GoalEndpoints, NmEvent};
pub use reconcile::{ReconcileAction, ReconcileOutcome, ReconcileReport, WithdrawOutcome};
pub use txn::GoalTeardown;
pub use txn::{BatchOutcome, TeardownBatchOutcome, TransactionOutcome, TxnEvent, TxnHook};

/// Per-primitive results of one device's commit.
pub(crate) type CommitResults = Vec<Result<PrimitiveResult, String>>;

/// One device's flow report: `(device, request id, per-tag counters)`;
/// request 0 marks a push-mode report.
pub type FlowReportEntry = (DeviceId, u64, Vec<(u64, netsim::stats::FlowCounters)>);

/// Upper bound on relay rounds per management operation; real exchanges
/// converge in a handful of rounds.
const MAX_ROUNDS: usize = 64;

/// The outcome of mapping and executing a connectivity goal.
#[derive(Debug, Clone, Default)]
pub struct ConfigureOutcome {
    /// Every path the path finder enumerated.
    pub paths: Vec<ModulePath>,
    /// The path the NM chose (None if no path satisfies the goal).
    pub chosen: Option<ModulePath>,
    /// The scripts generated and executed for the chosen path.
    pub scripts: ScriptSet,
}

/// A network under CONMan management.
pub struct ManagedNetwork<C: ManagementChannel> {
    /// The simulated network (data plane).
    pub net: Network,
    /// Management agents by device.
    pub agents: BTreeMap<DeviceId, ManagementAgent>,
    /// The management channel.
    pub channel: C,
    /// The network manager state.
    pub nm: NetworkManager,
    nm_host: DeviceId,
    next_request: u64,
    /// Notifications received by the NM.
    pub notifications: Vec<Notification>,
    /// Script results received by the NM: (device, per-primitive results).
    pub script_results: Vec<(DeviceId, Vec<Result<PrimitiveResult, String>>)>,
    /// Counter reports received by the NM and not yet consumed:
    /// (device, request, snapshots).  Drained by [`Self::poll_counters`].
    pub counter_reports: Vec<(DeviceId, u64, Vec<CounterSnapshot>)>,
    /// Flow-attribution reports received by the NM and not yet consumed:
    /// (device, request, per-tag counters).  Solicited reports are drained
    /// by [`Self::poll_flows`]; push-mode reports (`request == 0`, from
    /// `SubscribeFlows` subscriptions) accumulate here until the control
    /// loop drains them into its event stream.
    pub flow_reports: Vec<FlowReportEntry>,
    /// The NM's declarative goal store (see [`reconcile`]).
    pub goals: GoalStore,
    /// Staging verdicts received by the NM, indexed by (device, txn) so the
    /// executor's drain is a map lookup rather than a linear scan (batch
    /// replies arrive in bulk; scanning per response is quadratic).
    pub(crate) stage_results: BTreeMap<(DeviceId, u64), Vec<String>>,
    /// Commit results received by the NM, indexed by (device, txn).
    pub(crate) commit_results: BTreeMap<(DeviceId, u64), CommitResults>,
    /// Batched staging verdicts (one per goal segment), indexed by
    /// (device, txn).
    pub(crate) stage_batch_results: BTreeMap<(DeviceId, u64), Vec<SegmentVerdict>>,
    /// Batched commit results (one per goal segment), indexed by
    /// (device, txn).
    pub(crate) commit_batch_results: BTreeMap<(DeviceId, u64), Vec<SegmentCommit>>,
    /// When set, module-to-module relays are coalesced into one
    /// [`WireMessage::RelayBatch`] per (destination device, management
    /// round) instead of one message per envelope.  Enabled by the batched
    /// transaction executor; off by default so the per-message Table VI
    /// parity counts stay intact.
    pub(crate) batch_relays: bool,
    /// Relays buffered for the current management round (relay batching).
    pending_relays: BTreeMap<DeviceId, Vec<ModuleEnvelope>>,
    /// Deterministic fault-injection hook invoked between transaction
    /// phases (see [`TxnEvent`]); used by tests and the fault experiments to
    /// crash devices mid-commit.
    pub txn_hook: Option<TxnHook>,
    /// Flight recorder every management layer writes into (disabled by
    /// default — attach an enabled one with [`Self::set_recorder`]).
    pub recorder: Recorder,
    /// Wire codec for management payloads.  Defaults to vendored JSON
    /// (paper parity); switch to [`WireCodec::Binary`] to put the batch
    /// messages on the zero-copy binary framing.  Decoding always
    /// auto-detects, so the codec can be flipped at any time.
    pub codec: WireCodec,
}

impl<C: ManagementChannel> ManagedNetwork<C> {
    /// Create a managed network with the NM hosted on `nm_host`.
    pub fn new(net: Network, nm_host: DeviceId, channel: C) -> Self {
        ManagedNetwork {
            net,
            agents: BTreeMap::new(),
            channel,
            nm: NetworkManager::new(nm_host),
            nm_host,
            next_request: 0,
            notifications: Vec::new(),
            script_results: Vec::new(),
            counter_reports: Vec::new(),
            flow_reports: Vec::new(),
            goals: GoalStore::new(),
            stage_results: BTreeMap::new(),
            commit_results: BTreeMap::new(),
            stage_batch_results: BTreeMap::new(),
            commit_batch_results: BTreeMap::new(),
            batch_relays: false,
            pending_relays: BTreeMap::new(),
            txn_hook: None,
            recorder: Recorder::disabled(),
            codec: WireCodec::default(),
        }
    }

    /// The device hosting the NM.
    pub fn nm_host(&self) -> DeviceId {
        self.nm_host
    }

    /// Attach a flight recorder: the runtime, the transaction executors and
    /// the channel's message tap all write into it from here on.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.channel.attach_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// Register a management agent (a managed device).
    pub fn add_agent(&mut self, agent: ManagementAgent) {
        self.agents.insert(agent.device, agent);
    }

    /// Message counters of the NM host (Table VI).
    pub fn nm_counters(&self) -> ChannelCounters {
        self.channel.counters(self.nm_host)
    }

    /// Reset channel counters (e.g. after discovery, before configuration, so
    /// Table VI counts only the configuration phase like the paper does).
    pub fn reset_counters(&mut self) {
        self.channel.reset_counters();
    }

    fn category_for(msg: &WireMessage) -> MessageCategory {
        match msg {
            WireMessage::Announce(_) => MessageCategory::Announcement,
            WireMessage::Script { .. }
            | WireMessage::Stage { .. }
            | WireMessage::Commit { .. }
            | WireMessage::Abort { .. }
            | WireMessage::StageBatch { .. }
            | WireMessage::CommitBatch { .. }
            | WireMessage::AbortBatch { .. } => MessageCategory::Command,
            WireMessage::ScriptResult { .. }
            | WireMessage::StageResult { .. }
            | WireMessage::CommitResult { .. }
            | WireMessage::StageBatchResult { .. }
            | WireMessage::CommitBatchResult { .. } => MessageCategory::Response,
            WireMessage::Module(env) => match env.kind {
                EnvelopeKind::Convey => MessageCategory::ConveyMessage,
                EnvelopeKind::FieldQuery | EnvelopeKind::FieldResponse => {
                    MessageCategory::FieldQuery
                }
            },
            // A relay batch is one management message carrying many
            // envelopes; it is counted once, under the convey category.
            WireMessage::RelayBatch { .. } => MessageCategory::ConveyMessage,
            WireMessage::Notify(_) => MessageCategory::Notification,
            WireMessage::PollCounters { .. }
            | WireMessage::CounterReport { .. }
            | WireMessage::PollFlows { .. }
            | WireMessage::SubscribeFlows { .. }
            | WireMessage::FlowReport { .. } => MessageCategory::Telemetry,
        }
    }

    fn send(&mut self, from: DeviceId, to: DeviceId, msg: &WireMessage) {
        let payload = msg.encode_with(self.codec);
        if wire::is_batch_txn_message(msg) {
            self.recorder.inc("txn.encode_bytes", payload.len() as u64);
        }
        let m = MgmtMessage::new(from, to, Self::category_for(msg), payload);
        self.channel.send(&mut self.net, m);
    }

    /// Send a `StageBatch` straight from borrowed per-goal primitive
    /// slices.  Under the binary codec this is the zero-copy hot path — no
    /// owned [`ScriptSegment`]s, no JSON value tree; under JSON the
    /// segments are materialised once, here, and nowhere else.
    pub(crate) fn send_stage_batch(
        &mut self,
        to: DeviceId,
        txn: u64,
        segments: &[(u64, &[Primitive])],
    ) {
        let payload = match self.codec {
            WireCodec::Binary => wire::encode_stage_batch(txn, segments),
            WireCodec::Json => WireMessage::StageBatch {
                txn,
                segments: segments
                    .iter()
                    .map(|(goal, primitives)| ScriptSegment {
                        goal: *goal,
                        primitives: primitives.to_vec(),
                    })
                    .collect(),
            }
            .encode(),
        };
        self.recorder.inc("txn.encode_bytes", payload.len() as u64);
        let m = MgmtMessage::new(self.nm_host, to, MessageCategory::Command, payload);
        self.channel.send(&mut self.net, m);
    }

    /// Every managed device announces its physical connectivity to the NM.
    pub fn announce_all(&mut self) {
        let ids: Vec<DeviceId> = self.agents.keys().copied().collect();
        for id in ids {
            let neighbors = self.net.physical_neighbors(id);
            let msg = self.agents[&id].announcement(neighbors);
            self.send(id, self.nm_host, &msg);
        }
        self.run_management();
    }

    /// The NM invokes `showPotential` at every managed device and records the
    /// returned module abstractions.
    pub fn discover(&mut self) {
        let ids: Vec<DeviceId> = self.agents.keys().copied().collect();
        for id in ids {
            self.next_request += 1;
            let msg = WireMessage::Script {
                request: self.next_request,
                primitives: vec![Primitive::ShowPotential],
            };
            self.send(self.nm_host, id, &msg);
        }
        self.run_management();
    }

    /// The NM invokes `showActual` at one device and returns the per-module
    /// state (used for debugging / Fig. reproduction).
    pub fn show_actual(
        &mut self,
        device: DeviceId,
    ) -> Option<BTreeMap<String, crate::primitives::ModuleActual>> {
        self.next_request += 1;
        let req = self.next_request;
        let msg = WireMessage::Script {
            request: req,
            primitives: vec![Primitive::ShowActual],
        };
        self.send(self.nm_host, device, &msg);
        self.run_management();
        self.script_results
            .iter()
            .rev()
            .find(|(d, _)| *d == device)
            .and_then(|(_, results)| {
                results.iter().find_map(|r| match r {
                    Ok(PrimitiveResult::Actual(map)) => Some(map.clone()),
                    _ => None,
                })
            })
    }

    /// Poll every listed device's module counters over the management
    /// channel (one `PollCounters` each) and return the snapshots of the
    /// devices that answered.  Crashed devices simply do not answer — their
    /// absence from the result is itself diagnostic evidence.
    pub fn poll_counters(
        &mut self,
        devices: &[DeviceId],
    ) -> BTreeMap<DeviceId, Vec<CounterSnapshot>> {
        let first_request = self.next_request + 1;
        for id in devices {
            self.next_request += 1;
            let msg = WireMessage::PollCounters {
                request: self.next_request,
            };
            self.send(self.nm_host, *id, &msg);
        }
        self.run_management();
        // Drain the report buffer: matched reports become this poll's
        // result, anything older is stale (its poller already returned) and
        // would otherwise accumulate for the lifetime of the network.
        let mut out = BTreeMap::new();
        for (device, request, snapshots) in self.counter_reports.drain(..) {
            if request >= first_request && request <= self.next_request {
                out.insert(device, snapshots);
            }
        }
        out
    }

    /// Poll the per-flow counter attribution of every listed device for the
    /// given flow tags (one `PollFlows` each) and return what the answering
    /// devices reported.  Crashed devices do not answer — their absence is
    /// itself diagnostic evidence, exactly as with [`Self::poll_counters`].
    pub fn poll_flows(
        &mut self,
        devices: &[DeviceId],
        tags: &[u64],
    ) -> BTreeMap<DeviceId, BTreeMap<u64, netsim::stats::FlowCounters>> {
        let first_request = self.next_request + 1;
        for id in devices {
            self.next_request += 1;
            let msg = WireMessage::PollFlows {
                request: self.next_request,
                tags: tags.to_vec(),
            };
            self.send(self.nm_host, *id, &msg);
        }
        self.run_management();
        let mut out = BTreeMap::new();
        // Drain matched reports; push-mode reports (request 0) stay queued
        // for the control loop's event stream.
        let mut keep = Vec::new();
        for (device, request, flows) in self.flow_reports.drain(..) {
            if request >= first_request && request <= self.next_request {
                out.insert(device, flows.into_iter().collect());
            } else if request == 0 {
                keep.push((device, request, flows));
            }
        }
        self.flow_reports = keep;
        out
    }

    /// Subscribe every listed device to push-mode flow reports for the
    /// given tags (see [`WireMessage::SubscribeFlows`]).  An empty tag list
    /// cancels the devices' subscriptions.
    pub fn subscribe_flows(&mut self, devices: &[DeviceId], tags: &[u64]) {
        for id in devices {
            let msg = WireMessage::SubscribeFlows {
                tags: tags.to_vec(),
            };
            self.send(self.nm_host, *id, &msg);
        }
        self.run_management();
    }

    /// Drain the push-mode flow reports (`request == 0`) that have
    /// accumulated since the last drain.
    pub fn take_pushed_flow_reports(
        &mut self,
    ) -> Vec<(DeviceId, Vec<(u64, netsim::stats::FlowCounters)>)> {
        let mut pushed = Vec::new();
        let mut keep = Vec::new();
        for entry in self.flow_reports.drain(..) {
            if entry.1 == 0 {
                pushed.push((entry.0, entry.2));
            } else {
                keep.push(entry);
            }
        }
        self.flow_reports = keep;
        pushed
    }

    /// Map a goal to paths, choose one, and execute it — the original
    /// one-shot imperative call, kept for Table VI parity experiments.  New
    /// code should prefer the declarative flow ([`Self::submit`] +
    /// [`Self::reconcile`]), which adds goal identity, dry-run planning,
    /// two-phase atomicity and shared-module withdraw semantics on top.
    pub fn configure(&mut self, goal: &ConnectivityGoal) -> ConfigureOutcome {
        let paths = self.nm.find_paths(goal);
        let chosen = self.nm.choose_path(&paths).cloned();
        let scripts = match &chosen {
            Some(p) => self.execute_path(p, goal),
            None => ScriptSet::default(),
        };
        ConfigureOutcome {
            paths,
            chosen,
            scripts,
        }
    }

    /// Send an ad-hoc primitive script to one device and pump the
    /// management plane until quiescent.  Used by the diagnosis layer for
    /// teardown scripts (`delete` primitives) during self-healing.
    pub fn run_script(&mut self, device: DeviceId, primitives: Vec<Primitive>) {
        self.next_request += 1;
        let msg = WireMessage::Script {
            request: self.next_request,
            primitives,
        };
        self.send(self.nm_host, device, &msg);
        self.run_management();
    }

    /// Execute a specific path (used by the experiments to force the GRE,
    /// MPLS or VLAN variant regardless of the NM's preference).
    pub fn execute_path(&mut self, path: &ModulePath, goal: &ConnectivityGoal) -> ScriptSet {
        let scripts = self.nm.generate_scripts(path, goal);
        for ds in &scripts.scripts {
            self.next_request += 1;
            let msg = WireMessage::Script {
                request: self.next_request,
                primitives: ds.primitives.clone(),
            };
            self.send(self.nm_host, ds.device, &msg);
        }
        self.run_management();
        scripts
    }

    /// Deliver queued management messages until the plane is quiescent.
    /// Returns the number of messages processed.
    pub fn run_management(&mut self) -> usize {
        let mut total = 0;
        for _ in 0..MAX_ROUNDS {
            self.channel.run(&mut self.net);
            let mut progressed = 0;
            let ids: Vec<DeviceId> = {
                let mut v: Vec<DeviceId> = self.agents.keys().copied().collect();
                if !v.contains(&self.nm_host) {
                    v.push(self.nm_host);
                }
                v
            };
            for id in ids {
                let messages = self.channel.recv(&mut self.net, id);
                for m in messages {
                    progressed += 1;
                    self.route_message(id, m);
                }
            }
            total += progressed;
            // Flush the round's buffered relays as one message per
            // destination device (relay batching); the flush itself queues
            // messages, so the loop keeps running until both the channel and
            // the relay buffer are empty.
            let flushed = self.flush_pending_relays();
            if progressed == 0 && !flushed {
                break;
            }
        }
        total
    }

    /// Send every buffered relay as one `RelayBatch` per destination.
    /// Returns whether anything was flushed.
    fn flush_pending_relays(&mut self) -> bool {
        if self.pending_relays.is_empty() {
            return false;
        }
        let pending = std::mem::take(&mut self.pending_relays);
        for (device, envelopes) in pending {
            self.send(self.nm_host, device, &WireMessage::RelayBatch { envelopes });
        }
        true
    }

    /// Route a received management message either to the NM (if this device
    /// hosts it and the message is NM-bound) or to the device's agent.
    fn route_message(&mut self, at: DeviceId, msg: MgmtMessage) {
        // A crashed device consumes nothing: whatever the channel delivered
        // is lost, exactly as with a powered-off box.
        if !self.net.device(at).map(|d| d.up).unwrap_or(false) {
            return;
        }
        // Zero-copy fast path: a binary StageBatch is always agent-bound,
        // so hand the raw payload to the agent for in-place validation
        // instead of materialising a message tree first.
        if wire::is_binary_stage_batch(&msg.payload) {
            if let (Some(agent), Ok(device)) = (self.agents.get_mut(&at), self.net.device_mut(at)) {
                if let Some(outputs) = agent.handle_stage_batch_in_place(device, &msg.payload) {
                    for out in outputs {
                        self.send(at, self.nm_host, &out);
                    }
                    return;
                }
            }
            // No agent or unparseable framing: fall through to the generic
            // decoder, which drops it like any other malformed payload.
        }
        let Some(wire) = WireMessage::decode(&msg.payload) else {
            return;
        };
        let nm_bound = match &wire {
            WireMessage::Announce(_)
            | WireMessage::ScriptResult { .. }
            | WireMessage::Notify(_)
            | WireMessage::CounterReport { .. }
            | WireMessage::FlowReport { .. }
            | WireMessage::StageResult { .. }
            | WireMessage::CommitResult { .. }
            | WireMessage::StageBatchResult { .. }
            | WireMessage::CommitBatchResult { .. } => true,
            WireMessage::Module(env) => env.to.device != at,
            WireMessage::Script { .. }
            | WireMessage::PollCounters { .. }
            | WireMessage::PollFlows { .. }
            | WireMessage::SubscribeFlows { .. }
            | WireMessage::Stage { .. }
            | WireMessage::Commit { .. }
            | WireMessage::Abort { .. }
            | WireMessage::StageBatch { .. }
            | WireMessage::CommitBatch { .. }
            | WireMessage::AbortBatch { .. }
            | WireMessage::RelayBatch { .. } => false,
        };
        if nm_bound && at == self.nm_host {
            self.nm_handle(msg.from, wire);
            return;
        }
        // Agent-bound.
        let Some(agent) = self.agents.get_mut(&at) else {
            return;
        };
        let Ok(device) = self.net.device_mut(at) else {
            return;
        };
        let outputs = agent.handle(device, &wire);
        for out in outputs {
            self.send(at, self.nm_host, &out);
        }
    }

    /// NM-side handling of NM-bound messages.
    fn nm_handle(&mut self, from: DeviceId, wire: WireMessage) {
        match wire {
            WireMessage::Announce(a) => self.nm.record_announcement(&a),
            WireMessage::ScriptResult { results, .. } => {
                for r in &results {
                    if let Ok(PrimitiveResult::Potential(mods)) = r {
                        self.nm.record_potential(from, mods.clone());
                    }
                }
                self.script_results.push((from, results));
            }
            WireMessage::Module(env) => self.relay(env),
            WireMessage::Notify(n) => self.notifications.push(n),
            WireMessage::CounterReport { request, snapshots } => {
                self.counter_reports.push((from, request, snapshots));
            }
            WireMessage::FlowReport { request, flows } => {
                self.flow_reports.push((from, request, flows));
            }
            WireMessage::StageResult { txn, errors } => {
                self.stage_results.insert((from, txn), errors);
            }
            WireMessage::CommitResult { txn, results } => {
                self.commit_results.insert((from, txn), results);
            }
            WireMessage::StageBatchResult { txn, verdicts } => {
                self.stage_batch_results.insert((from, txn), verdicts);
            }
            WireMessage::CommitBatchResult { txn, segments } => {
                self.commit_batch_results.insert((from, txn), segments);
            }
            WireMessage::Script { .. }
            | WireMessage::PollCounters { .. }
            | WireMessage::PollFlows { .. }
            | WireMessage::SubscribeFlows { .. }
            | WireMessage::Stage { .. }
            | WireMessage::Commit { .. }
            | WireMessage::Abort { .. }
            | WireMessage::StageBatch { .. }
            | WireMessage::CommitBatch { .. }
            | WireMessage::AbortBatch { .. }
            | WireMessage::RelayBatch { .. } => {}
        }
    }

    /// Relay a module-to-module envelope to its destination device, tracking
    /// any field values it resolves (dependency maintenance, §II-E).  With
    /// relay batching on, the envelope is buffered and flushed at the end of
    /// the management round as part of one `RelayBatch` per destination.
    fn relay(&mut self, env: ModuleEnvelope) {
        if env.kind == EnvelopeKind::FieldResponse {
            if let Some(obj) = env.body.as_object() {
                for (k, v) in obj {
                    if let Some(s) = v.as_str() {
                        self.nm
                            .record_resolved(format!("{}:{}", env.from, k), s.to_string());
                    }
                }
            }
        }
        let to_device = env.to.device;
        if self.batch_relays {
            self.pending_relays.entry(to_device).or_default().push(env);
            return;
        }
        let msg = WireMessage::Module(env);
        self.send(self.nm_host, to_device, &msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::ModuleAbstraction;
    use crate::ids::{ModuleId, ModuleKind, ModuleRef};
    use crate::module::{ModuleCtx, ModuleReaction, ProtocolModule};
    use crate::primitives::PipeSpec;
    use mgmt_channel::OutOfBandChannel;
    use netsim::device::{Device, DeviceRole, PortId};
    use netsim::link::LinkProperties;

    /// A module that, when a pipe with `initiate` is created, sends a Convey
    /// to its peer; the peer replies; both record completion on the
    /// blackboard.  This exercises the full relay round trip.
    struct Chatty {
        me: ModuleRef,
    }

    impl ProtocolModule for Chatty {
        fn reference(&self) -> ModuleRef {
            self.me.clone()
        }
        fn descriptor(&self) -> ModuleAbstraction {
            ModuleAbstraction::empty(self.me.clone())
        }
        fn create_pipe(
            &mut self,
            _ctx: &mut ModuleCtx,
            spec: &PipeSpec,
        ) -> Result<ModuleReaction, crate::module::ModuleError> {
            // Only the upper end of the pipe negotiates, so the exchange
            // costs exactly two relayed messages.
            if spec.initiate && spec.upper == self.me {
                if let Some(peer) = spec.peer_upper.clone().or(spec.peer_lower.clone()) {
                    return Ok(ModuleReaction::envelope(ModuleEnvelope {
                        from: self.me.clone(),
                        to: peer,
                        kind: EnvelopeKind::Convey,
                        body: serde_json::json!({"hello": true}),
                    }));
                }
            }
            Ok(ModuleReaction::none())
        }
        fn handle_envelope(
            &mut self,
            ctx: &mut ModuleCtx,
            env: &ModuleEnvelope,
        ) -> Result<ModuleReaction, crate::module::ModuleError> {
            if env.body.get("hello").is_some() {
                ctx.set("negotiated", "true");
                return Ok(ModuleReaction::envelope(ModuleEnvelope {
                    from: self.me.clone(),
                    to: env.from.clone(),
                    kind: EnvelopeKind::Convey,
                    body: serde_json::json!({"ack": true}),
                }));
            }
            ctx.set("negotiated", "true");
            Ok(ModuleReaction::none())
        }
    }

    #[test]
    fn convey_messages_are_relayed_through_the_nm_and_counted() {
        let mut net = Network::new();
        let d1 = net.add_device(Device::new("RouterA", DeviceRole::Router, 1));
        let d2 = net.add_device(Device::new("RouterB", DeviceRole::Router, 1));
        net.connect((d1, PortId(0)), (d2, PortId(0)), LinkProperties::lan())
            .unwrap();

        let m1 = ModuleRef::new(ModuleKind::Gre, ModuleId(1), d1);
        let low1 = ModuleRef::new(ModuleKind::Eth, ModuleId(2), d1);
        let m2 = ModuleRef::new(ModuleKind::Gre, ModuleId(1), d2);
        let mut a1 = ManagementAgent::new(d1, "RouterA");
        a1.register(Box::new(Chatty { me: m1.clone() }));
        a1.register(Box::new(Chatty { me: low1.clone() }));
        let mut a2 = ManagementAgent::new(d2, "RouterB");
        a2.register(Box::new(Chatty { me: m2.clone() }));

        let mut mn = ManagedNetwork::new(net, d1, OutOfBandChannel::new());
        mn.add_agent(a1);
        mn.add_agent(a2);
        mn.announce_all();
        assert_eq!(mn.nm.device_count(), 2);
        mn.reset_counters();

        // Send a script to d1 creating a pipe whose peer is the module on d2.
        let spec = PipeSpec {
            pipe: crate::ids::PipeId(1),
            upper: m1.clone(),
            lower: low1,
            peer_upper: Some(m2.clone()),
            peer_lower: Some(m2.clone()),
            tradeoffs: vec![],
            initiate: true,
            resolved: Default::default(),
        };
        mn.next_request += 1;
        let msg = WireMessage::Script {
            request: mn.next_request,
            primitives: vec![Primitive::CreatePipe(spec)],
        };
        mn.send(mn.nm_host, d1, &msg);
        mn.run_management();

        // Both sides should have negotiated.
        assert_eq!(
            mn.agents[&d2].blackboard().get("negotiated"),
            Some(&"true".to_string())
        );
        assert_eq!(
            mn.agents[&d1].blackboard().get("negotiated"),
            Some(&"true".to_string())
        );
        // NM accounting: 1 command sent + 2 relayed convey messages sent;
        // 2 convey messages received (plus the script result).
        let c = mn.nm_counters();
        assert_eq!(c.sent_by_category[&MessageCategory::Command], 1);
        assert_eq!(c.sent_by_category[&MessageCategory::ConveyMessage], 2);
        assert_eq!(c.received_by_category[&MessageCategory::ConveyMessage], 2);
    }
}
