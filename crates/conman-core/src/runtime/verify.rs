//! Bridge to the `conman-analyze` pre-flight verifier: build the neutral
//! batch model from the runtime's own artefacts (`GoalStore`, [`Plan`]s,
//! [`ScriptSet`]s) and expose [`ManagedNetwork::verify_plans`].
//!
//! The analyzer deliberately knows nothing about the management layers —
//! its model speaks raw integer ids and display-string module keys, the
//! same vocabulary as the trace journal.  This module is the one place
//! that translation lives.  The batched reconcile pass and `run_batch`
//! call into it under `debug_assertions`, so every test run doubles as a
//! verification run of every plan the runtime produces.

use super::ManagedNetwork;
use crate::nm::{script, Exclusion, GoalId, GoalStore, Plan, ScriptSet};
use crate::primitives::{ComponentRef, Primitive};
use conman_analyze::{BatchModel, DeviceOps, GoalModel, Violation};
use mgmt_channel::ManagementChannel;
use std::collections::{BTreeMap, BTreeSet};

/// Stable key for a created component — the same key its mirroring delete
/// must produce.
fn create_key(p: &Primitive) -> Option<String> {
    match p {
        Primitive::CreatePipe(s) => Some(format!("pipe:{}", s.pipe)),
        Primitive::CreateSwitch(s) => {
            Some(format!("switch:{}:{}:{}", s.module, s.in_pipe, s.out_pipe))
        }
        Primitive::CreateFilter(s) => Some(format!("filter:{}:{}:{}", s.module, s.from, s.to)),
        _ => None,
    }
}

/// Stable key for a delete primitive's target.
fn delete_key(p: &Primitive) -> Option<String> {
    let Primitive::Delete(target) = p else {
        return None;
    };
    Some(match target {
        ComponentRef::Pipe(pipe) => format!("pipe:{pipe}"),
        ComponentRef::SwitchRule(module, in_pipe, out_pipe) => {
            format!("switch:{module}:{in_pipe}:{out_pipe}")
        }
        ComponentRef::Filter(module, from, to) => format!("filter:{module}:{from}:{to}"),
    })
}

/// Per-device create/delete footprints of one script set, in configure
/// order, with the deletes taken from the set's own generated teardown.
fn script_ops(scripts: &ScriptSet) -> (Vec<DeviceOps>, Vec<u64>) {
    let teardown = scripts.teardown();
    let teardown_devices: Vec<u64> = teardown.iter().map(|(d, _)| d.as_u64()).collect();
    let n = scripts.scripts.len();
    let ops = scripts
        .scripts
        .iter()
        .enumerate()
        .map(|(i, ds)| DeviceOps {
            device: ds.device.as_u64(),
            creates: ds.primitives.iter().filter_map(create_key).collect(),
            // `teardown` lists devices in reverse script order, so device
            // `i`'s deletes sit at the mirrored index.
            deletes: teardown[n - 1 - i]
                .1
                .iter()
                .filter_map(delete_key)
                .collect(),
        })
        .collect();
    (ops, teardown_devices)
}

/// Normalised `(smaller, larger)` device pair of a physical hop.
fn link_key(a: u64, b: u64) -> (u64, u64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The neutral model of one plan, in the context of its goal's record.
pub fn plan_model(goals: &GoalStore, plan: &Plan) -> GoalModel {
    let (scripts, teardown_devices) = script_ops(&plan.scripts);
    let mut path_modules = BTreeSet::new();
    for step in &plan.path.steps {
        path_modules.insert(step.module.to_string());
    }
    let mut path_links = BTreeSet::new();
    for w in plan.path.steps.windows(2) {
        let (a, b) = (w[0].module.device.as_u64(), w[1].module.device.as_u64());
        if a != b {
            path_links.insert(link_key(a, b));
        }
    }
    let mut excluded_modules = BTreeSet::new();
    let mut excluded_links = BTreeSet::new();
    if let Some(rec) = goals.get(plan.goal) {
        for e in &rec.excluded {
            match e {
                Exclusion::Module(m) => {
                    excluded_modules.insert(m.to_string());
                }
                Exclusion::Link(a, b) => {
                    excluded_links.insert(link_key(a.as_u64(), b.as_u64()));
                }
            }
        }
    }
    GoalModel {
        goal: plan.goal.0,
        pipe_base: plan.pipe_base,
        pipe_slots: script::slot_count(&plan.path),
        scripts,
        teardown_devices,
        path_modules,
        path_links,
        excluded_modules,
        excluded_links,
        modules_created: plan.modules_created.iter().map(|m| m.to_string()).collect(),
        modules_reused: plan.modules_reused.iter().map(|m| m.to_string()).collect(),
    }
}

/// The store's module → goal index in the analyzer's vocabulary.
pub fn module_users_model(goals: &GoalStore) -> BTreeMap<String, BTreeSet<u64>> {
    goals
        .module_users()
        .iter()
        .map(|(m, users)| (m.to_string(), users.iter().map(|g| g.0).collect()))
        .collect()
}

/// The neutral model of a whole planned batch against the store's current
/// index.
pub fn batch_model(goals: &GoalStore, plans: &[Plan]) -> BatchModel {
    BatchModel {
        max_pipe_id: GoalStore::MAX_PIPE_ID,
        goals: plans.iter().map(|p| plan_model(goals, p)).collect(),
        module_users: module_users_model(goals),
    }
}

/// A scripts-only model for execution-time checks (`run_batch` sees
/// script sets, not plans): carries the teardown-mirror and commit-order
/// facts, leaves pipe/refcount/exclusion fields empty.
pub fn scripts_model(items: &[(GoalId, &ScriptSet)]) -> BatchModel {
    BatchModel {
        max_pipe_id: GoalStore::MAX_PIPE_ID,
        goals: items
            .iter()
            .map(|(id, scripts)| {
                let (ops, teardown_devices) = script_ops(scripts);
                GoalModel {
                    goal: id.0,
                    scripts: ops,
                    teardown_devices,
                    ..GoalModel::default()
                }
            })
            .collect(),
        module_users: BTreeMap::new(),
    }
}

impl<C: ManagementChannel> ManagedNetwork<C> {
    /// Statically verify a set of dry-run plans against the current goal
    /// store — the explicit entry point to the `conman-analyze` pre-flight
    /// verifier.  Returns every violation found (empty = safe); advisory
    /// findings ([`Violation::severity`]) predict runtime fallbacks rather
    /// than bugs.
    ///
    /// Pipe-block disjointness is checked on the plans as given: plans
    /// produced by successive [`Self::plan_goal`] calls share the peeked
    /// base until a block is consumed (`GoalStore::take_pipe_block`), the
    /// way the batched reconcile pass numbers them.
    pub fn verify_plans(&self, plans: &[Plan]) -> Vec<Violation> {
        conman_analyze::verify_batch(&batch_model(&self.goals, plans))
    }
}
