//! The declarative management loop: drive every stored goal toward its
//! desired state.
//!
//! `submit` / `update` / `withdraw` manipulate the NM's [`GoalStore`];
//! [`ManagedNetwork::reconcile`] is the single entry point that makes the
//! network match it — planning every goal that needs work first (pure
//! dry-run [`Plan`]s in disjoint pipe-id blocks), then executing them all
//! as **one batched two-phase transaction** (each device staged once and
//! committed once per pass, per-goal atomicity preserved inside the
//! batch), and optionally verifying with per-goal probes.  It subsumes the
//! old one-shot `configure` call and is what the self-healing layer
//! drives: heal = mark the goal `Degraded` with the diagnosed suspects
//! excluded, reconcile.
//!
//! [`ManagedNetwork::reconcile_per_goal`] keeps the pre-batching executor
//! (one full two-phase transaction per goal) as the message-count baseline
//! the `goals` bench compares against, and as an equivalence oracle for
//! the batched path.
//!
//! Planning inside the batched pass runs **in parallel**: path search is a
//! pure read of the goal store and the potential graph, and pipe-id blocks
//! are disjoint by construction, so the per-goal searches fan out across a
//! small `std::thread::scope` worker pool and the chosen paths are merged
//! back into the batch in deterministic goal-id order.  Everything with a
//! side effect — pipe-block allocation, journal events, store mutation —
//! happens in the merge, on the calling thread, so journals, transcripts
//! and reports are byte-identical to the sequential engine.
//! [`ManagedNetwork::reconcile_sequential`] keeps that sequential engine
//! (per-goal graph rebuild and fresh search state, exactly the pre-PR-10
//! planning loop) as the equivalence oracle and bench baseline.

use super::txn::{GoalTeardown, TransactionOutcome};
use super::ManagedNetwork;
use crate::ids::ModuleRef;
use crate::nm::goal::{AppliedPlan, GoalId, GoalStatus, Plan, PlanError};
use crate::nm::{
    script, ConnectivityGoal, GoalStore, ModulePath, NetworkManager, PotentialGraph, SearchScratch,
};
use conman_obs::TraceKind;
use mgmt_channel::ManagementChannel;
use netsim::device::DeviceId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// What `reconcile()` did for one goal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconcileAction {
    /// The goal was already converged; nothing was sent.
    Unchanged,
    /// The goal was planned and its transaction committed.
    Applied,
    /// Stale configuration was torn down before re-applying.
    Reapplied,
    /// Planning found no path (goal is now `Failed`).
    PlanFailed,
    /// The transaction failed and was rolled back (goal stays `Pending`).
    ExecuteFailed,
    /// The transaction committed but the verification probe failed (goal is
    /// now `Degraded`).
    ProbeFailed,
}

/// Per-goal reconcile result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReconcileOutcome {
    /// The goal.
    pub goal: GoalId,
    /// What happened.
    pub action: ReconcileAction,
    /// The goal's status after the pass.
    pub status: GoalStatus,
    /// Error detail for the failed actions.
    pub error: Option<String>,
}

/// The result of one reconcile pass.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReconcileReport {
    /// One outcome per stored goal, in id order.
    pub outcomes: Vec<ReconcileOutcome>,
    /// Transactions executed during the pass (0 on a converged network —
    /// reconcile is idempotent).  A batched pass counts one transaction for
    /// the whole batch, one for the pass's coalesced stale-configuration
    /// teardowns (all replaced goals share a single batched lenient
    /// teardown), and one per best-effort restore.
    pub transactions: usize,
    /// Management messages the NM sent during this pass (counter delta
    /// around the call, so callers no longer diff `nm_counters()`
    /// themselves).
    pub nm_sent: u64,
    /// Management messages the NM received during this pass.
    pub nm_received: u64,
}

impl ReconcileReport {
    /// Goals whose status is `Active` after the pass.
    pub fn active(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status == GoalStatus::Active)
            .count()
    }

    /// Did the pass leave every goal `Active`?
    pub fn converged(&self) -> bool {
        self.outcomes.iter().all(|o| o.status == GoalStatus::Active)
    }

    /// The outcome for one goal.
    pub fn outcome(&self, id: GoalId) -> Option<&ReconcileOutcome> {
        self.outcomes.iter().find(|o| o.goal == id)
    }
}

/// What `withdraw` did.
#[derive(Debug, Clone, Default)]
pub struct WithdrawOutcome {
    /// Was the goal found (and removed)?
    pub removed: bool,
    /// Delete primitives committed while tearing the goal down.
    pub teardown_primitives: usize,
    /// Modules whose last reference this withdraw released — no surviving
    /// goal uses them any more.  Modules still referenced by other goals'
    /// applied plans are *not* touched (shared-module semantics).
    pub released: Vec<ModuleRef>,
}

/// A planning worker's verdict for one goal: the chosen path plus whether
/// the suspect-fallback (re-search with the exclusions dropped) produced
/// it — the merge must clear the goal's exclusions in that case, exactly
/// like the sequential `plan_goal_or_reinstall`.
type PathChoice = Result<(ModulePath, bool), PlanError>;

/// Everything the path search reads from a goal record: the endpoint
/// modules, the layer-2 flag, the traffic domain (domain pruning) and the
/// exclusion set.  Two goals with equal keys get byte-identical search
/// results, so each planning worker memoises its searches under this key —
/// a fleet of same-shaped goals (the common case: many VPNs between the
/// same edge interfaces) costs one traversal instead of one per goal.
type SearchKey = (
    ModuleRef,
    ModuleRef,
    bool,
    String,
    BTreeSet<crate::nm::goal::Exclusion>,
);

/// [`choose_goal_path`] behind a per-worker memo.  Correct because the
/// search is a pure function of the key (see [`SearchKey`]), the hoisted
/// graph and the store-wide limits — all constant within one pass.
fn choose_goal_path_memo(
    nm: &NetworkManager,
    goals: &GoalStore,
    graph: &PotentialGraph,
    id: GoalId,
    scratch: &mut SearchScratch,
    memo: &mut BTreeMap<SearchKey, PathChoice>,
) -> PathChoice {
    let Some(rec) = goals.get(id) else {
        return Err(PlanError::UnknownGoal(id));
    };
    let key = (
        rec.desired.from.clone(),
        rec.desired.to.clone(),
        rec.desired.l2_only,
        rec.desired.traffic_domain.clone(),
        rec.excluded.clone(),
    );
    if let Some(hit) = memo.get(&key) {
        return hit.clone();
    }
    let choice = choose_goal_path(nm, goals, graph, id, scratch);
    memo.insert(key, choice.clone());
    choice
}

/// The read-only half of planning one goal: enumerate paths avoiding the
/// goal's exclusions, fall back to a search straight through the suspects
/// when nothing avoids them, and pick the best candidate.  Runs on the
/// planning workers, so it touches nothing mutable — the store-side
/// effects of a fallback happen later, in the merge, in goal-id order.
fn choose_goal_path(
    nm: &NetworkManager,
    goals: &GoalStore,
    graph: &PotentialGraph,
    id: GoalId,
    scratch: &mut SearchScratch,
) -> PathChoice {
    let rec = goals.get(id).ok_or(PlanError::UnknownGoal(id))?;
    let paths =
        nm.find_paths_avoiding_in(graph, &rec.desired, &rec.excluded, goals.limits, scratch);
    if let Some(path) = nm.choose_path(&paths) {
        return Ok((path.clone(), false));
    }
    if !rec.excluded.is_empty() {
        let paths =
            nm.find_paths_avoiding_in(graph, &rec.desired, &BTreeSet::new(), goals.limits, scratch);
        if let Some(path) = nm.choose_path(&paths) {
            return Ok((path.clone(), true));
        }
    }
    Err(PlanError::NoPath)
}

impl<C: ManagementChannel> ManagedNetwork<C> {
    /// Declare a goal.  It is applied by the next [`Self::reconcile`].
    pub fn submit(&mut self, goal: ConnectivityGoal) -> GoalId {
        self.goals.submit(goal)
    }

    /// Replace a goal's desired state; the next reconcile tears down the
    /// stale configuration and applies the new one.
    pub fn update_goal(&mut self, id: GoalId, goal: ConnectivityGoal) -> bool {
        self.goals.update(id, goal)
    }

    /// Adopt configuration that was executed outside the store (the legacy
    /// `configure`/`execute_path` flow): register `goal` as `Active` with
    /// `path` as its applied plan, so withdraw/heal can manage it.  If an
    /// identical desired goal is already stored, its id is returned instead
    /// of creating a duplicate.
    pub fn adopt_goal(&mut self, goal: &ConnectivityGoal, path: &ModulePath) -> GoalId {
        let existing = self.goals.iter().find(|r| r.desired == *goal).map(|r| r.id);
        // A store-managed record that already tracks applied configuration
        // wins over the caller's view.
        if let Some(id) = existing {
            if self.goals.get(id).is_some_and(|r| r.applied().is_some()) {
                return id;
            }
        }
        let scripts = self.nm.generate_scripts(path, goal);
        let id = existing.unwrap_or_else(|| self.goals.submit(goal.clone()));
        // Legacy executions are numbered from pipe 0; keep future blocks
        // clear of them.
        self.goals.reserve_pipes_through(script::slot_count(path));
        self.goals.set_applied(
            id,
            Some(AppliedPlan {
                path: path.clone(),
                scripts,
                pipe_base: 0,
            }),
        );
        if let Some(rec) = self.goals.get_mut(id) {
            rec.status = GoalStatus::Active;
        }
        id
    }

    /// Dry-run planning: choose the best path for the goal (avoiding its
    /// excluded modules) and generate — but do not send — its scripts.
    pub fn plan_goal(&self, id: GoalId) -> Result<Plan, PlanError> {
        let rec = self.goals.get(id).ok_or(PlanError::UnknownGoal(id))?;
        let paths = self
            .nm
            .find_paths_avoiding(&rec.desired, &rec.excluded, self.goals.limits);
        let path = self
            .nm
            .choose_path(&paths)
            .cloned()
            .ok_or(PlanError::NoPath)?;
        self.plan_for_path(id, &path)
    }

    /// [`Self::plan_goal`], with the reconciler's suspect-fallback: when no
    /// path avoids the goal's exclusions — diagnosis blamed an *edge*
    /// module every path must traverse, or (on a chain) a *link* with no
    /// physical alternative — the exclusions are dropped and the goal
    /// re-planned straight through the suspects.  Lost configuration state
    /// (flushed tables, wiped label maps) is repaired by *reconfiguring*
    /// the blamed module; a transient link fault heals on a later pass once
    /// the link returns.  If the component is genuinely dead the
    /// verification probe fails the reinstall and the repair-attempt budget
    /// parks the goal `Failed` instead of thrashing.  Blamed links and
    /// blamed edge modules are handled symmetrically: both fall back to
    /// reinstall-through rather than an instant `PlanFailed`.
    fn plan_goal_or_reinstall(&mut self, id: GoalId) -> Result<Plan, PlanError> {
        match self.plan_goal(id) {
            Err(PlanError::NoPath)
                if self.goals.get(id).is_some_and(|r| !r.excluded.is_empty()) =>
            {
                self.goals
                    .get_mut(id)
                    .expect("goal exists")
                    .excluded
                    .clear();
                self.plan_goal(id)
            }
            other => other,
        }
    }

    /// Dry-run planning for an explicit path (used by the self-healing
    /// layer, which ranks its own candidate list).
    ///
    /// The scripts are numbered from the store's next free pipe block; the
    /// block is only consumed when the plan is executed.  Fails cleanly
    /// with [`PlanError::PipeSpaceExhausted`] when the block would cross
    /// the derived-identifier cap.
    pub fn plan_for_path(&self, id: GoalId, path: &ModulePath) -> Result<Plan, PlanError> {
        let rec = self.goals.get(id).ok_or(PlanError::UnknownGoal(id))?;
        self.goals.check_pipe_block(script::slot_count(path))?;
        let pipe_base = self.goals.peek_pipe_base();
        let scripts = script::generate_with_base(&self.nm, path, &rec.desired, pipe_base);
        let (modules_created, modules_reused) = self.goals.classify_modules(id, path);
        Ok(Plan {
            goal: id,
            path: path.clone(),
            scripts,
            pipe_base,
            modules_created,
            modules_reused,
        })
    }

    /// Execute a plan as a two-phase transaction.  On commit the goal
    /// becomes `Active` and the plan is recorded as applied (module
    /// references included); on failure everything the transaction touched
    /// has been rolled back and the goal keeps its previous applied state
    /// (none) with `last_error` set.
    pub fn execute_plan(&mut self, plan: Plan) -> TransactionOutcome {
        let mut plan = plan;
        // The block may have moved since the dry run (another goal executed
        // in between): renumber onto the current base.
        if plan.pipe_base != self.goals.peek_pipe_base() {
            if let Err(e) = self.goals.check_pipe_block(script::slot_count(&plan.path)) {
                // Renumbering would cross the derived-id cap: fail the
                // execution cleanly instead of wrapping.
                let outcome = TransactionOutcome {
                    errors: vec![e.to_string()],
                    ..Default::default()
                };
                if let Some(rec) = self.goals.get_mut(plan.goal) {
                    rec.last_error = Some(e.to_string());
                }
                return outcome;
            }
            let rec = self.goals.get(plan.goal).expect("goal exists");
            plan.pipe_base = self.goals.peek_pipe_base();
            plan.scripts =
                script::generate_with_base(&self.nm, &plan.path, &rec.desired, plan.pipe_base);
        }
        let outcome = self.run_transaction(&plan.scripts);
        if outcome.committed {
            self.goals.take_pipe_block(script::slot_count(&plan.path));
            self.goals.set_applied(
                plan.goal,
                Some(AppliedPlan {
                    path: plan.path,
                    scripts: plan.scripts,
                    pipe_base: plan.pipe_base,
                }),
            );
            if let Some(rec) = self.goals.get_mut(plan.goal) {
                rec.status = GoalStatus::Active;
                rec.last_error = None;
            }
        } else if let Some(rec) = self.goals.get_mut(plan.goal) {
            rec.last_error = Some(outcome.summary());
        }
        outcome
    }

    /// Tear down a goal's applied configuration with a lenient transaction
    /// (devices in `skip` or not answering are passed over).  The goal stays
    /// stored, back in `Pending`.  Returns the number of delete primitives
    /// committed.
    pub fn teardown_goal(&mut self, id: GoalId, skip: &[DeviceId]) -> usize {
        let Some(applied) = self.goals.take_applied(id) else {
            return 0;
        };
        if let Some(rec) = self.goals.get_mut(id) {
            if rec.status == GoalStatus::Active {
                rec.status = GoalStatus::Pending;
            }
        }
        let teardown = applied.scripts.teardown();
        let outcome = self.run_teardown(&teardown, skip);
        outcome.primitives
    }

    /// Withdraw a goal: tear its configuration down (sharing-aware — the
    /// components are per-goal, and module instances survive while any
    /// other goal's applied plan still traverses them) and remove it from
    /// the store.
    pub fn withdraw(&mut self, id: GoalId) -> WithdrawOutcome {
        self.withdraw_many(&[id]).pop().unwrap_or_default()
    }

    /// Withdraw several goals in one pass: all their teardowns run as
    /// **one** batched lenient transaction (each touched device staged once
    /// and committed once for the whole pass, instead of one transaction
    /// per goal), then the records are removed.  Sharing stays correct
    /// across the batch: a module is `released` only when no *surviving*
    /// goal's applied plan traverses it, and it is attributed to the first
    /// withdrawn goal that used it.
    pub fn withdraw_many(&mut self, ids: &[GoalId]) -> Vec<WithdrawOutcome> {
        let removing: BTreeSet<GoalId> = ids.iter().copied().collect();
        let mut outcomes: Vec<WithdrawOutcome> = Vec::with_capacity(ids.len());
        let mut teardowns: Vec<GoalTeardown> = Vec::new();
        let mut released_seen: BTreeSet<ModuleRef> = BTreeSet::new();
        for &id in ids {
            let mut outcome = WithdrawOutcome::default();
            let Some(rec) = self.goals.get(id) else {
                outcomes.push(outcome);
                continue;
            };
            // Modules no surviving goal uses — released once the batch is
            // gone.
            let users = self.goals.module_users();
            if let Some(applied) = rec.applied() {
                for step in &applied.path.steps {
                    if users
                        .get(&step.module)
                        .is_some_and(|g| g.contains(&id) && g.iter().all(|u| removing.contains(u)))
                        && released_seen.insert(step.module.clone())
                    {
                        outcome.released.push(step.module.clone());
                    }
                }
            }
            if let Some(applied) = self.goals.take_applied(id) {
                teardowns.push((id, applied.scripts.teardown()));
            }
            outcome.removed = true;
            outcomes.push(outcome);
        }
        if !teardowns.is_empty() {
            let batch = self.run_teardown_batch(&teardowns, &[]);
            for (i, &id) in ids.iter().enumerate() {
                if let Some(count) = batch.per_goal.get(&id) {
                    outcomes[i].teardown_primitives = *count;
                }
            }
        }
        for (i, &id) in ids.iter().enumerate() {
            if outcomes[i].removed {
                outcomes[i].removed = self.goals.remove(id).is_some();
            }
        }
        outcomes
    }

    /// Drive every stored goal toward its desired state without
    /// verification probes, executing all pending work as **one batched
    /// transaction** (each device staged and committed once per pass).
    /// Idempotent: a converged network produces no transactions.
    pub fn reconcile(&mut self) -> ReconcileReport {
        self.reconcile_with(|_, _| None)
    }

    /// Batched reconcile with per-goal verification.  `probe` receives the
    /// managed network and a goal id and returns `Some(delivered)` when it
    /// can test that goal end to end (`None` = no probe available, trust
    /// the transaction).  Probe traffic runs inside a flow-attribution
    /// window tagged with the goal id, so counter deltas of concurrent
    /// goals stay separable (see `netsim::stats::FlowCounters`).
    ///
    /// The pass: probe `Active` goals (failures degrade and join the work
    /// list), plan every goal that needs work in a disjoint pipe-id block,
    /// tear down stale configurations, execute all plans as one batched
    /// two-phase transaction (per-goal atomicity inside the batch — a goal
    /// whose segment fails anywhere is rolled back via its teardown mirror
    /// without disturbing siblings), then verify each committed goal.
    pub fn reconcile_with<P>(&mut self, probe: P) -> ReconcileReport
    where
        P: FnMut(&mut Self, GoalId) -> Option<bool>,
    {
        self.reconcile_engine(probe, true)
    }

    /// Batched reconcile with the planning loop forced sequential: one
    /// graph rebuild and fresh search state per goal, exactly the pre-
    /// parallel-planning engine.  Kept as the equivalence oracle for
    /// [`Self::reconcile`] (which plans in parallel) and as the wall-time
    /// baseline the `goals` bench measures the raw-speed work against.
    pub fn reconcile_sequential(&mut self) -> ReconcileReport {
        self.reconcile_sequential_with(|_, _| None)
    }

    /// [`Self::reconcile_sequential`] with per-goal verification probes
    /// (see [`Self::reconcile_with`]).
    pub fn reconcile_sequential_with<P>(&mut self, probe: P) -> ReconcileReport
    where
        P: FnMut(&mut Self, GoalId) -> Option<bool>,
    {
        self.reconcile_engine(probe, false)
    }

    /// The batched reconcile engine behind both entry points.  `parallel`
    /// selects how the pass chooses paths: fanned out across a scoped
    /// worker pool over a single hoisted potential graph, or goal-by-goal
    /// with a per-goal graph rebuild (the historical cost profile).  Both
    /// arms feed the same sequential merge, which performs every side
    /// effect in goal-id order, so all observable outputs are identical.
    fn reconcile_engine<P>(&mut self, mut probe: P, parallel: bool) -> ReconcileReport
    where
        P: FnMut(&mut Self, GoalId) -> Option<bool>,
    {
        let before = self.nm_counters();
        let mut report = ReconcileReport::default();
        let ids = self.goals.ids();
        let mut outcomes: BTreeMap<GoalId, ReconcileOutcome> = BTreeMap::new();
        let mut work: Vec<GoalId> = Vec::new();
        for &id in &ids {
            let Some(status) = self.goals.status(id) else {
                continue;
            };
            match status {
                GoalStatus::Failed => {
                    outcomes.insert(
                        id,
                        ReconcileOutcome {
                            goal: id,
                            action: ReconcileAction::Unchanged,
                            status,
                            error: self.goals.get(id).and_then(|r| r.last_error.clone()),
                        },
                    );
                }
                GoalStatus::Active => match self.probe_goal(id, &mut probe) {
                    Some(false) => {
                        // The goal looked converged but is not carrying
                        // traffic: degrade and repair in this same pass.
                        self.goals.get_mut(id).expect("goal exists").status = GoalStatus::Degraded;
                        work.push(id);
                    }
                    _ => {
                        outcomes.insert(
                            id,
                            ReconcileOutcome {
                                goal: id,
                                action: ReconcileAction::Unchanged,
                                status,
                                error: None,
                            },
                        );
                    }
                },
                GoalStatus::Pending | GoalStatus::Degraded | GoalStatus::Repairing => {
                    work.push(id);
                }
            }
        }

        // Plan first — planning is a pure dry run, and a goal whose
        // planning fails must leave its stale-but-possibly-working
        // configuration standing.  Each successful plan consumes its pipe
        // block immediately so every plan in the batch is numbered in a
        // disjoint block; blocks of goals that end up not committing are
        // released again below, so failed passes do not leak id space.
        let pipe_floor = self.goals.peek_pipe_base();
        let mut items: Vec<(GoalId, bool, Option<AppliedPlan>, Plan)> = Vec::new();
        let mut stale: Vec<GoalTeardown> = Vec::new();
        // Pre-flight verification (debug builds): every plan the pass
        // produces is modelled for the static analyzer; refcount claims are
        // checked per goal here, while the index still reflects
        // classification time, and the batch-level invariants below once
        // all blocks are taken.
        #[cfg(debug_assertions)]
        let mut preflight: Vec<conman_analyze::GoalModel> = Vec::new();
        // Path selection: the read-only half of planning.  The parallel arm
        // fans the searches out over the worker pool *before* the merge
        // loop; the sequential arm resolves each goal inline, per-goal
        // graph rebuild included.  Either way the merge below runs on this
        // thread, in goal-id order (`work` comes from the sorted store).
        let mut choices = if parallel {
            Some(self.plan_paths_parallel(&work).into_iter())
        } else {
            None
        };
        let mut last_merged: Option<GoalId> = None;
        for &id in &work {
            if let Some(prev) = last_merged {
                debug_assert!(prev < id, "merged plans must arrive in goal-id order");
            }
            last_merged = Some(id);
            let planned = match choices.as_mut() {
                Some(it) => match it.next().expect("one path choice per goal") {
                    Ok((path, used_fallback)) => {
                        if used_fallback {
                            // The suspect-fallback chose a path straight
                            // through the exclusions; clear them exactly as
                            // `plan_goal_or_reinstall` does before re-planning.
                            self.goals
                                .get_mut(id)
                                .expect("goal exists")
                                .excluded
                                .clear();
                        }
                        self.plan_for_path(id, &path)
                    }
                    Err(e) => Err(e),
                },
                None => self.plan_goal_or_reinstall(id),
            };
            let plan = match planned {
                Ok(plan) => plan,
                Err(e) => {
                    let rec = self.goals.get_mut(id).expect("goal exists");
                    rec.status = GoalStatus::Failed;
                    rec.last_error = Some(e.to_string());
                    outcomes.insert(
                        id,
                        ReconcileOutcome {
                            goal: id,
                            action: ReconcileAction::PlanFailed,
                            status: GoalStatus::Failed,
                            error: Some(e.to_string()),
                        },
                    );
                    continue;
                }
            };
            self.goals.take_pipe_block(script::slot_count(&plan.path));
            #[cfg(debug_assertions)]
            {
                let model = super::verify::plan_model(&self.goals, &plan);
                let refcounts = conman_analyze::plan::check_goal_refcounts(
                    &model,
                    &super::verify::module_users_model(&self.goals),
                );
                debug_assert!(
                    refcounts.is_empty(),
                    "pre-flight: goal {} fails refcount verification: {refcounts:?}",
                    id.0
                );
                preflight.push(model);
            }
            let excluded = self.goals.get(id).map_or(0, |r| r.excluded.len());
            self.recorder.event(
                self.net.now().as_nanos(),
                TraceKind::PlanChosen {
                    goal: id.0,
                    path_len: plan.path.steps.len() as u64,
                    excluded: excluded as u64,
                },
            );
            self.recorder
                .observe("plan.path_len", plan.path.steps.len() as f64);
            self.recorder.observe("plan.exclusions", excluded as f64);
            if let Some(rec) = self.goals.get_mut(id) {
                rec.status = GoalStatus::Repairing;
            }
            // A replacement exists: collect the stale configuration's
            // teardown; all of the pass's teardowns run below as one
            // batched lenient transaction.
            let previous = self.goals.take_applied(id);
            let had_applied = previous.is_some();
            if let Some(prev) = &previous {
                stale.push((id, prev.scripts.teardown()));
            }
            items.push((id, had_applied, previous, plan));
        }
        // Batch-level pre-flight: disjoint pipe blocks under the cap,
        // teardown mirrors, no plan crossing its goal's exclusions.
        // Commit-order conflicts are deliberately not asserted on —
        // they are advisory, and `run_batch` resolves them by demoting
        // the goal to a strict fallback transaction.
        #[cfg(debug_assertions)]
        {
            let batch = conman_analyze::BatchModel {
                max_pipe_id: crate::nm::GoalStore::MAX_PIPE_ID,
                goals: preflight,
                module_users: Default::default(),
            };
            let mut violations = conman_analyze::plan::check_pipes(&batch);
            violations.extend(conman_analyze::plan::check_teardowns(&batch));
            violations.extend(conman_analyze::plan::check_exclusions(&batch));
            debug_assert!(
                violations.is_empty(),
                "pre-flight: planned batch fails verification: {violations:?}"
            );
        }
        // Tear every replaced goal's stale configuration down as ONE
        // batched transaction (each device staged once and committed once
        // for the whole teardown phase), not one per goal.
        if !stale.is_empty() {
            self.run_teardown_batch(&stale, &[]);
            report.transactions += 1;
        }

        if !items.is_empty() {
            let batch_items: Vec<(GoalId, &crate::nm::ScriptSet)> = items
                .iter()
                .map(|(id, _, _, plan)| (*id, &plan.scripts))
                .collect();
            let batch = self.run_batch(&batch_items);
            report.transactions += 1;
            // Release the blocks of goals that did not commit (the per-goal
            // baseline only consumes a block on commit); blocks below a
            // committed goal's block stay reserved — the allocator is
            // monotonic, holes cannot be returned individually.
            let watermark = items
                .iter()
                .filter(|(id, _, _, _)| batch.committed.contains(id))
                .map(|(_, _, _, plan)| plan.pipe_base + script::slot_count(&plan.path))
                .max()
                .unwrap_or(pipe_floor);
            self.goals.release_pipes_to(watermark);
            for (id, had_applied, previous, plan) in items {
                let outcome = if batch.committed.contains(&id) {
                    self.goals.set_applied(
                        id,
                        Some(AppliedPlan {
                            path: plan.path,
                            scripts: plan.scripts,
                            pipe_base: plan.pipe_base,
                        }),
                    );
                    if let Some(rec) = self.goals.get_mut(id) {
                        rec.status = GoalStatus::Active;
                        rec.last_error = None;
                    }
                    self.verify_applied_goal(id, had_applied, &mut probe)
                } else {
                    let error = batch
                        .error_for(id)
                        .unwrap_or("batched transaction failed")
                        .to_string();
                    self.fail_goal_with_restore(id, error, previous, &mut report.transactions)
                };
                outcomes.insert(id, outcome);
            }
        }
        report.outcomes = ids.iter().filter_map(|id| outcomes.remove(id)).collect();
        for o in &report.outcomes {
            if o.action != ReconcileAction::Unchanged {
                self.recorder.event(
                    self.net.now().as_nanos(),
                    TraceKind::GoalOutcome {
                        goal: o.goal.0,
                        action: format!("{:?}", o.action),
                        status: format!("{:?}", o.status),
                    },
                );
            }
        }
        let after = self.nm_counters();
        report.nm_sent = after.sent.saturating_sub(before.sent);
        report.nm_received = after.received.saturating_sub(before.received);
        report
    }

    /// Choose a path (with the suspect-fallback re-search) for every goal
    /// in `work`, fanning the searches out across a `std::thread::scope`
    /// worker pool.  Path search is a pure read of the goal store, the NM
    /// and one hoisted potential graph, so workers share them immutably;
    /// each worker reuses one [`SearchScratch`] across its goals and
    /// memoises searches by [`SearchKey`], so same-shaped goals cost one
    /// traversal.  Results come back positionally, so the caller merges
    /// them in `work` order — nothing about thread scheduling can leak
    /// into the outputs.
    fn plan_paths_parallel(&self, work: &[GoalId]) -> Vec<PathChoice> {
        let started = std::time::Instant::now();
        let graph = self.nm.build_graph();
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
            .min(work.len().max(1));
        self.recorder.gauge("plan.parallel_workers", workers as f64);
        let mut results: Vec<PathChoice> = Vec::with_capacity(work.len());
        results.resize_with(work.len(), || Err(PlanError::NoPath));
        if workers <= 1 {
            // Degenerate pool (single-core host or single goal): search
            // inline, still with the hoisted graph, reused scratch and
            // search memo.
            let mut scratch = SearchScratch::default();
            let mut memo = BTreeMap::new();
            for (slot, &id) in results.iter_mut().zip(work) {
                *slot = choose_goal_path_memo(
                    &self.nm,
                    &self.goals,
                    &graph,
                    id,
                    &mut scratch,
                    &mut memo,
                );
            }
        } else {
            let chunk = work.len().div_ceil(workers);
            let (nm, goals, graph) = (&self.nm, &self.goals, &graph);
            std::thread::scope(|s| {
                for (ids, slots) in work.chunks(chunk).zip(results.chunks_mut(chunk)) {
                    s.spawn(move || {
                        let mut scratch = SearchScratch::default();
                        let mut memo = BTreeMap::new();
                        for (slot, &id) in slots.iter_mut().zip(ids) {
                            *slot = choose_goal_path_memo(
                                nm,
                                goals,
                                graph,
                                id,
                                &mut scratch,
                                &mut memo,
                            );
                        }
                    });
                }
            });
        }
        self.recorder
            .observe("plan.wall_us", started.elapsed().as_micros() as f64);
        results
    }

    /// The pre-batching reconcile loop: one full two-phase transaction per
    /// goal, without verification probes.  Kept as the message-count
    /// baseline for the `goals` bench and as an equivalence oracle for the
    /// batched pass — end state (statuses, module refcounts, data-plane
    /// connectivity) is identical; only the message shape differs.
    pub fn reconcile_per_goal(&mut self) -> ReconcileReport {
        self.reconcile_per_goal_with(|_, _| None)
    }

    /// Per-goal-transaction reconcile with verification probes (see
    /// [`Self::reconcile_per_goal`]).
    pub fn reconcile_per_goal_with<P>(&mut self, mut probe: P) -> ReconcileReport
    where
        P: FnMut(&mut Self, GoalId) -> Option<bool>,
    {
        let before = self.nm_counters();
        let mut report = ReconcileReport::default();
        for id in self.goals.ids() {
            let Some(status) = self.goals.status(id) else {
                continue;
            };
            let outcome = match status {
                GoalStatus::Failed => ReconcileOutcome {
                    goal: id,
                    action: ReconcileAction::Unchanged,
                    status,
                    error: self.goals.get(id).and_then(|r| r.last_error.clone()),
                },
                GoalStatus::Active => {
                    match self.probe_goal(id, &mut probe) {
                        Some(false) => {
                            // The goal looked converged but is not carrying
                            // traffic: degrade and repair in this same pass.
                            self.goals.get_mut(id).expect("goal exists").status =
                                GoalStatus::Degraded;
                            self.apply_goal(id, &mut probe, &mut report.transactions)
                        }
                        _ => ReconcileOutcome {
                            goal: id,
                            action: ReconcileAction::Unchanged,
                            status,
                            error: None,
                        },
                    }
                }
                GoalStatus::Pending | GoalStatus::Degraded | GoalStatus::Repairing => {
                    self.apply_goal(id, &mut probe, &mut report.transactions)
                }
            };
            report.outcomes.push(outcome);
        }
        let after = self.nm_counters();
        report.nm_sent = after.sent.saturating_sub(before.sent);
        report.nm_received = after.received.saturating_sub(before.received);
        report
    }

    /// Probe one goal inside its flow-attribution window.
    fn probe_goal<P>(&mut self, id: GoalId, probe: &mut P) -> Option<bool>
    where
        P: FnMut(&mut Self, GoalId) -> Option<bool>,
    {
        self.net.begin_flow_window(id.0);
        let verdict = probe(self, id);
        self.net.end_flow_window();
        verdict
    }

    /// Plan + execute + verify one goal that needs work.
    fn apply_goal<P>(
        &mut self,
        id: GoalId,
        probe: &mut P,
        transactions: &mut usize,
    ) -> ReconcileOutcome
    where
        P: FnMut(&mut Self, GoalId) -> Option<bool>,
    {
        let had_applied = self.goals.get(id).is_some_and(|r| r.applied().is_some());
        // Plan first — it is a pure dry run, and if no path exists the
        // stale-but-possibly-working configuration must be left standing (a
        // degraded path carrying some traffic beats no path at all).
        let plan = match self.plan_goal_or_reinstall(id) {
            Ok(plan) => plan,
            Err(e) => {
                let rec = self.goals.get_mut(id).expect("goal exists");
                rec.status = GoalStatus::Failed;
                rec.last_error = Some(e.to_string());
                return ReconcileOutcome {
                    goal: id,
                    action: ReconcileAction::PlanFailed,
                    status: GoalStatus::Failed,
                    error: Some(e.to_string()),
                };
            }
        };
        if let Some(rec) = self.goals.get_mut(id) {
            rec.status = GoalStatus::Repairing;
        }
        let previous = self.goals.get(id).and_then(|r| r.applied().cloned());
        if had_applied {
            // A replacement exists: tear the stale configuration down
            // before applying it.
            self.teardown_goal(id, &[]);
            *transactions += 1;
        }
        let txn = self.execute_plan(plan);
        *transactions += 1;
        if !txn.committed {
            return self.fail_goal_with_restore(id, txn.summary(), previous, transactions);
        }
        self.verify_applied_goal(id, had_applied, probe)
    }

    /// Shared post-commit bookkeeping: probe the freshly applied goal and
    /// settle its status/outcome.  Used by both the batched pass and the
    /// per-goal baseline so the two executors cannot drift apart.
    fn verify_applied_goal<P>(
        &mut self,
        id: GoalId,
        had_applied: bool,
        probe: &mut P,
    ) -> ReconcileOutcome
    where
        P: FnMut(&mut Self, GoalId) -> Option<bool>,
    {
        let verdict = self.probe_goal(id, probe);
        self.recorder.event(
            self.net.now().as_nanos(),
            TraceKind::Verify {
                goal: id.0,
                ok: verdict != Some(false),
            },
        );
        match verdict {
            Some(false) => {
                // A committed plan that carries no traffic burns one repair
                // attempt; past the budget the goal parks `Failed` instead
                // of cycling Degraded → Repairing forever.
                let exhausted = self.goals.charge_repair_attempt(id);
                let rec = self.goals.get_mut(id).expect("goal exists");
                let status = if exhausted {
                    rec.last_error = Some(format!(
                        "verification probe failed; giving up after {} repair attempt(s)",
                        rec.repair_attempts
                    ));
                    GoalStatus::Failed
                } else {
                    rec.last_error = Some("verification probe failed".into());
                    GoalStatus::Degraded
                };
                rec.status = status;
                ReconcileOutcome {
                    goal: id,
                    action: ReconcileAction::ProbeFailed,
                    status,
                    error: rec.last_error.clone(),
                }
            }
            _ => {
                let rec = self.goals.get_mut(id).expect("goal exists");
                rec.repair_attempts = 0;
                // The repair verified: stop avoiding the suspects.  A
                // transiently blamed link or module must not be excluded
                // forever — a later fault on the *new* path may have no
                // route around it except back over the recovered original.
                rec.excluded.clear();
                ReconcileOutcome {
                    goal: id,
                    action: if had_applied {
                        ReconcileAction::Reapplied
                    } else {
                        ReconcileAction::Applied
                    },
                    status: GoalStatus::Active,
                    error: None,
                }
            }
        }
    }

    /// Shared execution-failure bookkeeping: best-effort restore of the
    /// previous configuration (its scripts re-execute verbatim — the
    /// teardown freed their blackboard state) and park the goal `Pending`
    /// with the error recorded.  Used by both executors.
    fn fail_goal_with_restore(
        &mut self,
        id: GoalId,
        error: String,
        previous: Option<AppliedPlan>,
        transactions: &mut usize,
    ) -> ReconcileOutcome {
        if let Some(prev) = previous {
            let restore = self.run_transaction(&prev.scripts);
            *transactions += 1;
            if restore.committed {
                self.goals.set_applied(id, Some(prev));
            }
        }
        // A rolled-back execution burns one repair attempt; past the budget
        // the goal parks `Failed` instead of re-entering the work list on
        // every pass (the pipe block it would have used is released with
        // the pass).
        let exhausted = self.goals.charge_repair_attempt(id);
        let rec = self.goals.get_mut(id).expect("goal exists");
        let (status, error) = if exhausted {
            (
                GoalStatus::Failed,
                format!(
                    "{error}; giving up after {} repair attempt(s)",
                    rec.repair_attempts
                ),
            )
        } else {
            (GoalStatus::Pending, error)
        };
        rec.status = status;
        rec.last_error = Some(error.clone());
        ReconcileOutcome {
            goal: id,
            action: ReconcileAction::ExecuteFailed,
            status,
            error: Some(error),
        }
    }
}
