//! The CONMan primitives (Table I) and the wire messages that carry them
//! over the management channel.
//!
//! The NM interacts with devices using only these protocol-independent
//! primitives; everything protocol-specific is worked out by the modules
//! themselves via `conveyMessage` / `listFieldsAndValues` exchanges relayed
//! through the NM.

use crate::abstraction::{CounterSnapshot, ModuleAbstraction};
use crate::ids::{ModuleRef, PipeId};
use netsim::device::{DeviceId, PortId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A performance trade-off choice the NM passes when creating a pipe
/// (satisfying a dependency like Table III row iii).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TradeoffChoice {
    /// Prefer in-order delivery at the cost of delay/jitter
    /// (GRE: enables sequence numbers).
    InOrderDelivery,
    /// Prefer a low error rate at the cost of loss rate / bandwidth
    /// (GRE: enables checksums).
    LowErrorRate,
    /// Prefer low delay (disables both of the above).
    LowDelay,
}

/// Specification of a pipe to create between two modules in the same device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipeSpec {
    /// NM-assigned pipe identifier (the `P1` in the paper's scripts).
    pub pipe: PipeId,
    /// The upper module of the pipe.
    pub upper: ModuleRef,
    /// The lower module of the pipe.
    pub lower: ModuleRef,
    /// Peer of the upper module at the far end of the path (if any).
    pub peer_upper: Option<ModuleRef>,
    /// Peer of the lower module at the far end of the path (if any).
    pub peer_lower: Option<ModuleRef>,
    /// Trade-off choices satisfying the modules' declared dependencies.
    pub tradeoffs: Vec<TradeoffChoice>,
    /// Whether the modules on this device should initiate the peer
    /// negotiation (exactly one side of a peer pair initiates, so each
    /// exchange costs two relayed messages as in Table VI).
    pub initiate: bool,
    /// Field values the NM has already resolved and is passing along opaquely
    /// (high-level names such as `C1-S2` or `S2-gateway` mapped to values).
    pub resolved: BTreeMap<String, String>,
}

/// Specification of a switch rule: packets from `in_pipe` are switched to
/// `out_pipe`, optionally restricted to a named traffic class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchSpec {
    /// The module whose switch is configured.
    pub module: ModuleRef,
    /// Incoming pipe.
    pub in_pipe: PipeId,
    /// Outgoing pipe.
    pub out_pipe: PipeId,
    /// Only traffic destined to this named class takes the rule
    /// (e.g. `dst:C1-S2` in Figure 7(b)).
    pub dst_class: Option<String>,
    /// Gateway name used when switching towards a customer-facing pipe
    /// (e.g. `S2-gateway` in Figure 7(b)).
    pub gateway: Option<String>,
    /// Resolved field values for the named class / gateway.
    pub resolved: BTreeMap<String, String>,
}

/// Specification of a filter: drop traffic from one module to another
/// (§II-E).  The inspecting module resolves the abstract references into
/// protocol fields itself, using `listFieldsAndValues` if needed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterSpec {
    /// The module that should perform the filtering.
    pub module: ModuleRef,
    /// Drop packets coming from this module.
    pub from: ModuleRef,
    /// Drop packets going to this module.
    pub to: ModuleRef,
    /// Resolved field values the NM already knows (dependency tracking).
    pub resolved: BTreeMap<String, String>,
}

/// A component reference for `delete ()`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ComponentRef {
    /// A pipe by id.
    Pipe(PipeId),
    /// A switch rule by (module, in pipe, out pipe).
    SwitchRule(ModuleRef, PipeId, PipeId),
    /// A filter on a module identified by the (from, to) pair it drops.
    Filter(ModuleRef, ModuleRef, ModuleRef),
}

/// A single CONMan primitive invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Primitive {
    /// `showPotential ()`.
    ShowPotential,
    /// `showActual ()`.
    ShowActual,
    /// `create (pipe, ...)`.
    CreatePipe(PipeSpec),
    /// `create (switch, ...)`.
    CreateSwitch(SwitchSpec),
    /// `create (filter, ...)`.
    CreateFilter(FilterSpec),
    /// `delete (...)`.
    Delete(ComponentRef),
}

impl Primitive {
    /// Is this a read-only primitive?
    pub fn is_read_only(&self) -> bool {
        matches!(self, Primitive::ShowPotential | Primitive::ShowActual)
    }
}

/// The kind of module-to-module message being relayed through the NM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnvelopeKind {
    /// `conveyMessage ()` — opaque module-to-module coordination
    /// (e.g. GRE key / sequence-number negotiation).
    Convey,
    /// `listFieldsAndValues ()` — a query for the low-level fields behind a
    /// component identifier (e.g. "what is your IP address?").
    FieldQuery,
    /// The response to a field query.
    FieldResponse,
}

/// A module-to-module message.  The management channel only connects devices
/// to the NM, so these are always relayed by the NM (§II-D.1 d).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleEnvelope {
    /// Originating module.
    pub from: ModuleRef,
    /// Destination module.
    pub to: ModuleRef,
    /// What kind of exchange this is (for NM accounting).
    pub kind: EnvelopeKind,
    /// Opaque, protocol-specific body.  The NM never interprets it.
    pub body: serde_json::Value,
}

/// An unsolicited module-to-NM notification (completion notices, dependency
/// triggers installed by the NM, self-test results).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Notification {
    /// Originating module.
    pub from: ModuleRef,
    /// What happened.
    pub body: serde_json::Value,
}

/// The actual (configured) state of a module, returned by `showActual`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ModuleActual {
    /// Pipes currently configured on the module.
    pub pipes: Vec<PipeId>,
    /// Switch rules as human-readable strings.
    pub switch_rules: Vec<String>,
    /// Filter rules as human-readable strings.
    pub filters: Vec<String>,
    /// Performance report (protocol-independent counters).
    pub perf_report: BTreeMap<String, u64>,
}

/// Result of executing one primitive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PrimitiveResult {
    /// showPotential: the device's modules and their abstractions.
    Potential(Vec<ModuleAbstraction>),
    /// showActual: per-module actual state.
    Actual(BTreeMap<String, ModuleActual>),
    /// A pipe was created.
    PipeCreated(PipeId),
    /// The primitive completed (possibly with deferred low-level work still
    /// being negotiated between modules).
    Done,
}

/// A device-level announcement: physical connectivity reported to the NM so
/// it can build the topology (§II-D).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Announcement {
    /// Announcing device.
    pub device: DeviceId,
    /// Device name (purely cosmetic, for experiment output).
    pub device_name: String,
    /// `(local port, neighbour device, neighbour port)` adjacency.
    pub neighbors: Vec<(PortId, DeviceId, PortId)>,
}

/// One goal's slice of a batched transaction on one device: the primitives
/// realising that goal on that device, tagged with the owning goal id so the
/// agent can validate, commit and roll back each goal independently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptSegment {
    /// The owning goal (`GoalId.0`).
    pub goal: u64,
    /// The primitives of this goal's script for this device.
    pub primitives: Vec<Primitive>,
}

/// The staging verdict for one segment of a batched transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentVerdict {
    /// The owning goal (`GoalId.0`).
    pub goal: u64,
    /// Validation failures (empty = the segment is held, ready to commit).
    pub errors: Vec<String>,
}

/// The commit results for one segment of a batched transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentCommit {
    /// The owning goal (`GoalId.0`).
    pub goal: u64,
    /// One result (or error string) per staged primitive of the segment.
    pub results: Vec<Result<PrimitiveResult, String>>,
}

/// Everything that can travel over the management channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireMessage {
    /// Device → NM: physical connectivity announcement.
    Announce(Announcement),
    /// NM → device: a batch of primitives to execute ("the NM sends commands
    /// to each router along the path").
    Script {
        /// Request identifier for matching responses.
        request: u64,
        /// The primitives, executed in order.
        primitives: Vec<Primitive>,
    },
    /// Device → NM: the per-primitive results of a script.
    ScriptResult {
        /// Request identifier this responds to.
        request: u64,
        /// One result (or error string) per primitive.
        results: Vec<Result<PrimitiveResult, String>>,
    },
    /// Module → module (relayed by the NM in both directions).
    Module(ModuleEnvelope),
    /// Module → NM notification.
    Notify(Notification),
    /// NM → device: sample every module's counters (telemetry).
    PollCounters {
        /// Request identifier for matching reports.
        request: u64,
    },
    /// Device → NM: one counter snapshot per module (telemetry).
    CounterReport {
        /// Request identifier this responds to.
        request: u64,
        /// Per-module snapshots.
        snapshots: Vec<CounterSnapshot>,
    },
    /// NM → device: phase one of a two-phase configuration transaction.
    /// The agent *validates* the primitives (are the referenced modules
    /// present?) and holds them without touching the data plane.
    Stage {
        /// Transaction identifier (shared by every device in the
        /// transaction).
        txn: u64,
        /// The primitives to validate and hold.
        primitives: Vec<Primitive>,
    },
    /// Device → NM: the staging verdict.  Empty `errors` means the device
    /// is ready to commit.
    StageResult {
        /// Transaction this responds to.
        txn: u64,
        /// Validation failures (one per offending primitive).
        errors: Vec<String>,
    },
    /// NM → device: phase two — execute the primitives staged under `txn`.
    Commit {
        /// Transaction to commit.
        txn: u64,
    },
    /// Device → NM: per-primitive results of a committed transaction.
    CommitResult {
        /// Transaction this responds to.
        txn: u64,
        /// One result (or error string) per staged primitive.
        results: Vec<Result<PrimitiveResult, String>>,
    },
    /// NM → device: discard the primitives staged under `txn` (the
    /// transaction failed elsewhere).  No response is expected.
    Abort {
        /// Transaction to discard.
        txn: u64,
    },
    /// NM → device: phase one of a *batched* two-phase transaction — every
    /// goal the reconcile pass touches on this device, in one round trip.
    /// The agent validates each segment independently and holds the valid
    /// ones; per-goal atomicity is preserved inside the batch.
    StageBatch {
        /// Transaction identifier (shared by every device in the batch).
        txn: u64,
        /// One segment per goal with work on this device.
        segments: Vec<ScriptSegment>,
    },
    /// Device → NM: one staging verdict per segment of a `StageBatch`.
    StageBatchResult {
        /// Transaction this responds to.
        txn: u64,
        /// Per-segment verdicts, in segment order.
        verdicts: Vec<SegmentVerdict>,
    },
    /// NM → device: phase two of a batched transaction — execute the listed
    /// goals' segments staged under `txn` (goals that failed staging on a
    /// sibling device are simply not listed).
    CommitBatch {
        /// Transaction to commit.
        txn: u64,
        /// The goals whose segments to execute, in order.
        goals: Vec<u64>,
    },
    /// Device → NM: per-segment results of a committed batch.
    CommitBatchResult {
        /// Transaction this responds to.
        txn: u64,
        /// One entry per committed segment, in commit order.
        segments: Vec<SegmentCommit>,
    },
    /// NM → device: discard the listed goals' segments staged under `txn`
    /// (they failed on a sibling device); other segments stay held.  No
    /// response is expected.
    AbortBatch {
        /// The transaction holding the segments.
        txn: u64,
        /// The goals whose segments to discard.
        goals: Vec<u64>,
    },
    /// NM → device: a round's worth of module-to-module envelopes bound for
    /// this device, relayed as one message.  Batched reconcile passes
    /// coalesce relays per (device, round) so peer negotiations of many
    /// concurrent goals do not dominate the NM's message budget; envelope
    /// order within the batch is preserved.
    RelayBatch {
        /// The relayed envelopes, in relay order.
        envelopes: Vec<ModuleEnvelope>,
    },
    /// NM → device: sample the device's per-flow counter attribution for
    /// the listed flow tags (each tag is an owning goal's id).  The
    /// flow-delta telemetry the autonomic loop's localisation runs on: one
    /// message per device covers any number of goals.
    PollFlows {
        /// Request identifier for matching reports.
        request: u64,
        /// Flow tags (goal ids) to report.
        tags: Vec<u64>,
    },
    /// NM → device: watch the listed flow tags.  After any subsequent
    /// management exchange that changed a watched tag's counters, the agent
    /// *pushes* an unsolicited [`WireMessage::FlowReport`] (with
    /// `request == 0`) alongside its regular replies — the push-mode
    /// complement to pull-style `PollCounters`/`PollFlows`.  An empty tag
    /// list cancels the subscription.  No response is expected.
    SubscribeFlows {
        /// Flow tags (goal ids) to watch.
        tags: Vec<u64>,
    },
    /// Device → NM: per-flow counter attribution.  `request` matches the
    /// `PollFlows` that elicited it, or is `0` for a push-mode report from
    /// a `SubscribeFlows` subscription.
    FlowReport {
        /// Request identifier this responds to (0 = unsolicited push).
        request: u64,
        /// `(flow tag, counters)` per reported tag, in tag order.
        flows: Vec<(u64, netsim::stats::FlowCounters)>,
    },
}

impl WireMessage {
    /// Serialize for the management channel payload.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("wire messages always serialize")
    }

    /// Deserialize from a management channel payload.  The codec is
    /// auto-detected from the first byte: binary batch frames (tags
    /// `0x81..=0x86`) dispatch to [`crate::wire`], everything else parses
    /// as vendored JSON.
    pub fn decode(bytes: &[u8]) -> Option<WireMessage> {
        crate::wire::decode(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ModuleId, ModuleKind};

    fn mref(kind: ModuleKind, m: u32, d: u64) -> ModuleRef {
        ModuleRef::new(kind, ModuleId(m), DeviceId::from_raw(d))
    }

    #[test]
    fn wire_roundtrip_script() {
        let spec = PipeSpec {
            pipe: PipeId(1),
            upper: mref(ModuleKind::Ip, 1, 1),
            lower: mref(ModuleKind::Gre, 2, 1),
            peer_upper: Some(mref(ModuleKind::Ip, 1, 3)),
            peer_lower: Some(mref(ModuleKind::Gre, 2, 3)),
            tradeoffs: vec![
                TradeoffChoice::InOrderDelivery,
                TradeoffChoice::LowErrorRate,
            ],
            initiate: true,
            resolved: BTreeMap::new(),
        };
        let msg = WireMessage::Script {
            request: 7,
            primitives: vec![Primitive::CreatePipe(spec), Primitive::ShowActual],
        };
        let bytes = msg.encode();
        let back = WireMessage::decode(&bytes).unwrap();
        assert_eq!(back, msg);
        assert!(WireMessage::decode(b"not json").is_none());
    }

    #[test]
    fn wire_roundtrip_flow_telemetry() {
        let poll = WireMessage::PollFlows {
            request: 3,
            tags: vec![1, 2],
        };
        assert_eq!(WireMessage::decode(&poll.encode()).unwrap(), poll);
        let sub = WireMessage::SubscribeFlows { tags: vec![7] };
        assert_eq!(WireMessage::decode(&sub.encode()).unwrap(), sub);
        let report = WireMessage::FlowReport {
            request: 0,
            flows: vec![(
                7,
                netsim::stats::FlowCounters {
                    originated: 1,
                    forwarded: 2,
                    local_delivered: 3,
                    drops: 4,
                },
            )],
        };
        assert_eq!(WireMessage::decode(&report.encode()).unwrap(), report);
    }

    #[test]
    fn wire_roundtrip_module_envelope() {
        let env = ModuleEnvelope {
            from: mref(ModuleKind::Gre, 2, 1),
            to: mref(ModuleKind::Gre, 2, 3),
            kind: EnvelopeKind::Convey,
            body: serde_json::json!({"ikey": 1001, "okey": 2001, "seq": true}),
        };
        let msg = WireMessage::Module(env.clone());
        let back = WireMessage::decode(&msg.encode()).unwrap();
        match back {
            WireMessage::Module(e) => assert_eq!(e, env),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn primitive_classification() {
        assert!(Primitive::ShowPotential.is_read_only());
        assert!(!Primitive::Delete(ComponentRef::Pipe(PipeId(1))).is_read_only());
    }

    #[test]
    fn wire_roundtrip_transaction_messages() {
        for msg in [
            WireMessage::Stage {
                txn: 3,
                primitives: vec![Primitive::ShowActual],
            },
            WireMessage::StageResult {
                txn: 3,
                errors: vec!["no module".into()],
            },
            WireMessage::Commit { txn: 3 },
            WireMessage::CommitResult {
                txn: 3,
                results: vec![Ok(PrimitiveResult::Done)],
            },
            WireMessage::Abort { txn: 3 },
        ] {
            let back = WireMessage::decode(&msg.encode()).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn wire_roundtrip_batch_messages() {
        let env = ModuleEnvelope {
            from: mref(ModuleKind::Mpls, 3, 1),
            to: mref(ModuleKind::Mpls, 3, 2),
            kind: EnvelopeKind::Convey,
            body: serde_json::json!({"mpls": {"label": 10001}}),
        };
        for msg in [
            WireMessage::StageBatch {
                txn: 7,
                segments: vec![
                    ScriptSegment {
                        goal: 1,
                        primitives: vec![Primitive::ShowActual],
                    },
                    ScriptSegment {
                        goal: 2,
                        primitives: vec![],
                    },
                ],
            },
            WireMessage::StageBatchResult {
                txn: 7,
                verdicts: vec![
                    SegmentVerdict {
                        goal: 1,
                        errors: vec![],
                    },
                    SegmentVerdict {
                        goal: 2,
                        errors: vec!["no module".into()],
                    },
                ],
            },
            WireMessage::CommitBatch {
                txn: 7,
                goals: vec![1],
            },
            WireMessage::CommitBatchResult {
                txn: 7,
                segments: vec![SegmentCommit {
                    goal: 1,
                    results: vec![Ok(PrimitiveResult::Done)],
                }],
            },
            WireMessage::AbortBatch {
                txn: 7,
                goals: vec![2],
            },
            WireMessage::RelayBatch {
                envelopes: vec![env.clone(), env],
            },
        ] {
            let back = WireMessage::decode(&msg.encode()).unwrap();
            assert_eq!(back, msg);
        }
    }
}
