//! The structured trace journal: causally-linked span events.
//!
//! Every event carries a monotonically increasing sequence number and the
//! sequence number of its *parent* span (0 for top-level events).  An event
//! recorded with [`Journal::enter`] opens a span — subsequent events nest
//! under it until the matching [`Journal::exit`] — so the tick → health →
//! diagnose → repair → stage/commit → verify causality of the autonomic
//! loop is reconstructible from the flat event list alone.
//!
//! Timestamps are **simulated** nanoseconds only: nothing in an event
//! depends on wall time, allocator state or hashing order, so the same
//! seeded scenario yields a byte-identical journal on every run and a
//! failed run can be post-mortemed from its dump (see
//! [`crate::postmortem`]) without re-running the simulation.

use serde::{Deserialize, Serialize};

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Monotonic sequence number, unique within a journal (1-based).
    pub seq: u64,
    /// Sequence number of the enclosing span's opening event (0 = none).
    pub parent: u64,
    /// Simulated time of the event, nanoseconds.
    pub at_ns: u64,
    /// What happened.
    pub kind: TraceKind,
}

/// The journal's event taxonomy.  Identifiers are raw integers — goal ids
/// are `GoalId.0`, device ids are `DeviceId::as_u64()` — so the journal
/// format does not depend on the management layers above this crate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A loop tick began (span: everything the tick did nests under it).
    TickStart {
        /// 1-based tick ordinal.
        tick: u64,
        /// Repair epoch at the start of the tick.
        epoch: u64,
    },
    /// A loop tick finished (recorded inside the tick's span).
    TickEnd {
        /// Events the tick drained from the NM stream.
        events: u64,
        /// NM management messages sent during the tick.
        nm_sent: u64,
        /// NM management messages received during the tick.
        nm_received: u64,
        /// Link-level frames the network delivered during the tick.
        frames: u64,
    },
    /// A goal was submitted through the event stream.
    Submit {
        /// The new goal's id.
        goal: u64,
    },
    /// A goal was withdrawn (its teardown ran in the tick's batch).
    Withdraw {
        /// The withdrawn goal's id.
        goal: u64,
    },
    /// One health-phase probe burst for one goal.
    HealthProbe {
        /// The probed goal.
        goal: u64,
        /// Probes sent.
        sent: u64,
        /// Probes attributed as delivered to the goal's sink.
        delivered: u64,
        /// Did the burst leave the goal healthy?
        healthy: bool,
    },
    /// Diagnosis of one degraded goal began (span: frontier-walk events
    /// nest under it).
    DiagnoseStart {
        /// The degraded goal.
        goal: u64,
    },
    /// One device of the diagnosis frontier walk: the flow's per-device
    /// counter deltas over the measurement window.
    FrontierHop {
        /// The diagnosed goal (the flow tag).
        goal: u64,
        /// The device inspected.
        device: u64,
        /// Packets of the flow that reached the device (forwarded +
        /// delivered + originated).
        arrived: u64,
        /// Packets the device moved onward or delivered.
        moved_on: u64,
        /// Packets the device dropped during the window.
        dropped: u64,
    },
    /// One suspect the frontier walk produced.
    Suspect {
        /// The diagnosed goal.
        goal: u64,
        /// Human-readable suspect target (device / link / module / ...).
        target: String,
        /// Suspicion strength, as reported by the diagnoser.
        confidence: String,
    },
    /// Diagnosis of one goal concluded.
    Diagnosed {
        /// The diagnosed goal.
        goal: u64,
        /// Device the prime suspect blames, if any.
        blamed_device: Option<u64>,
        /// Physical link blamed, if any (smaller device id first).
        blamed_link: Option<(u64, u64)>,
        /// Exclusions handed to the re-planner.
        exclusions: u64,
        /// One-line verdict.
        summary: String,
    },
    /// A batched repair pass began (span: plan/stage/commit/verify events
    /// nest under it).
    RepairStart {
        /// The pass's repair epoch.
        epoch: u64,
        /// Goals needing work when the pass started.
        goals: u64,
    },
    /// The re-planner chose a path for one goal.
    PlanChosen {
        /// The re-planned goal.
        goal: u64,
        /// Module-path length (number of module hops).
        path_len: u64,
        /// Size of the goal's exclusion set at planning time.
        excluded: u64,
    },
    /// One device's stage step of a transaction (batched segment or strict
    /// per-goal stage).
    StageDevice {
        /// Transaction id.
        txn: u64,
        /// The staged device.
        device: u64,
        /// Per-goal script segments staged on the device (1 for strict
        /// transactions).
        segments: u64,
        /// Did the device accept the stage?
        ok: bool,
    },
    /// One device's commit step of a transaction.
    CommitDevice {
        /// Transaction id.
        txn: u64,
        /// The committed device.
        device: u64,
        /// Did the device acknowledge the commit?
        ok: bool,
    },
    /// One device's abort/rollback step of a transaction.
    AbortDevice {
        /// Transaction id.
        txn: u64,
        /// The device whose staged state was discarded.
        device: u64,
    },
    /// End-to-end verification probe of one repaired goal.
    Verify {
        /// The verified goal.
        goal: u64,
        /// Did the probe arrive at the goal's sink?
        ok: bool,
    },
    /// One goal's outcome of a reconcile pass.
    GoalOutcome {
        /// The goal.
        goal: u64,
        /// Reconcile action name (`Applied`, `Unchanged`, `PlanFailed`...).
        action: String,
        /// Goal lifecycle status after the pass.
        status: String,
    },
    /// A batched repair pass finished (recorded inside the pass's span).
    RepairEnd {
        /// The pass's repair epoch.
        epoch: u64,
        /// Transactions the pass ran.
        transactions: u64,
    },
    /// Free-form annotation (harnesses and examples).
    Note {
        /// The annotation.
        text: String,
    },
}

/// The event log plus the currently open span stack.
#[derive(Debug, Default)]
pub struct Journal {
    events: Vec<TraceEvent>,
    stack: Vec<u64>,
    next_seq: u64,
}

impl Journal {
    /// Record a leaf event under the currently open span.
    pub fn record(&mut self, at_ns: u64, kind: TraceKind) -> u64 {
        self.next_seq += 1;
        let seq = self.next_seq;
        self.events.push(TraceEvent {
            seq,
            parent: self.stack.last().copied().unwrap_or(0),
            at_ns,
            kind,
        });
        seq
    }

    /// Record an event and open a span under it; subsequent events nest
    /// under this one until [`Journal::exit`].
    pub fn enter(&mut self, at_ns: u64, kind: TraceKind) -> u64 {
        let seq = self.record(at_ns, kind);
        self.stack.push(seq);
        seq
    }

    /// Close the innermost open span (a no-op at top level).
    pub fn exit(&mut self) {
        self.stack.pop();
    }

    /// All events recorded so far, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the journal empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the journal as a JSON array of events — the dump format the
    /// post-mortem tooling consumes.  Purely a function of the recorded
    /// events, so identical runs dump identical bytes.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.events).expect("trace events always serialize")
    }

    /// Drop every recorded event and close all open spans.
    pub fn clear(&mut self) {
        self.events.clear();
        self.stack.clear();
        self.next_seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_events_link_to_their_parent() {
        let mut j = Journal::new_for_tests();
        let tick = j.enter(100, TraceKind::TickStart { tick: 1, epoch: 0 });
        let probe = j.record(
            100,
            TraceKind::HealthProbe {
                goal: 7,
                sent: 2,
                delivered: 2,
                healthy: true,
            },
        );
        let diag = j.enter(101, TraceKind::DiagnoseStart { goal: 7 });
        let hop = j.record(
            101,
            TraceKind::FrontierHop {
                goal: 7,
                device: 3,
                arrived: 2,
                moved_on: 0,
                dropped: 2,
            },
        );
        j.exit();
        let after = j.record(
            102,
            TraceKind::TickEnd {
                events: 1,
                nm_sent: 0,
                nm_received: 0,
                frames: 4,
            },
        );
        j.exit();

        let by_seq = |s: u64| j.events().iter().find(|e| e.seq == s).unwrap();
        assert_eq!(by_seq(tick).parent, 0);
        assert_eq!(by_seq(probe).parent, tick);
        assert_eq!(by_seq(diag).parent, tick);
        assert_eq!(by_seq(hop).parent, diag);
        assert_eq!(by_seq(after).parent, tick, "span closed back to the tick");
    }

    #[test]
    fn json_roundtrip_preserves_every_event() {
        let mut j = Journal::new_for_tests();
        j.enter(5, TraceKind::RepairStart { epoch: 2, goals: 3 });
        j.record(
            5,
            TraceKind::StageDevice {
                txn: 9,
                device: 4,
                segments: 3,
                ok: true,
            },
        );
        j.record(
            6,
            TraceKind::Diagnosed {
                goal: 1,
                blamed_device: Some(4),
                blamed_link: Some((4, 5)),
                exclusions: 2,
                summary: "link (4,5) dropped the flow".into(),
            },
        );
        j.exit();
        let dump = j.to_json();
        let back: Vec<TraceEvent> = serde_json::from_str(&dump).unwrap();
        assert_eq!(back, j.events());
    }

    impl Journal {
        fn new_for_tests() -> Self {
            Journal::default()
        }
    }
}
