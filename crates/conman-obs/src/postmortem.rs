//! Post-mortem reconstruction: rebuild what a run did from its journal
//! dump alone — no simulation, no live `ManagedNetwork`.
//!
//! The [`Postmortem`] walks a dumped event list and recovers the facts an
//! operator asks after a failure: which component was blamed, how many
//! repair passes ran and what each staged/committed, which goals verified.
//! This is the acceptance check for the journal's purpose: a failed
//! scenario must be explainable from its dump.

use crate::journal::{TraceEvent, TraceKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One reconstructed repair pass.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RepairPass {
    /// The pass's repair epoch.
    pub epoch: u64,
    /// Devices the pass staged.
    pub staged: BTreeSet<u64>,
    /// Devices the pass committed.
    pub committed: BTreeSet<u64>,
    /// Devices whose staged state the pass aborted.
    pub aborted: BTreeSet<u64>,
    /// Per-goal `(goal, action, status)` outcomes of the pass, in order.
    pub outcomes: Vec<(u64, String, String)>,
}

impl RepairPass {
    /// Did the pass change anything (any outcome beyond `Unchanged`)?
    pub fn touched(&self) -> bool {
        self.outcomes
            .iter()
            .any(|(_, action, _)| action != "Unchanged")
    }
}

/// Facts reconstructed from a journal dump.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Postmortem {
    /// Ticks the journal covers.
    pub ticks: u64,
    /// Goals the health phase ever reported unhealthy.
    pub degraded_goals: BTreeSet<u64>,
    /// Devices any diagnosis blamed.
    pub blamed_devices: BTreeSet<u64>,
    /// Links any diagnosis blamed (smaller device id first).
    pub blamed_links: BTreeSet<(u64, u64)>,
    /// Every repair pass, in order.
    pub repair_passes: Vec<RepairPass>,
    /// Union of devices staged across all passes.
    pub staged_devices: BTreeSet<u64>,
    /// Goals whose end-to-end verification probe succeeded at least once.
    pub verified_goals: BTreeSet<u64>,
}

impl Postmortem {
    /// Reconstruct from a journal dump (the JSON array produced by
    /// `Recorder::journal_json`).
    pub fn from_json(dump: &str) -> Result<Self, serde::Error> {
        let events: Vec<TraceEvent> = serde_json::from_str(dump)?;
        Ok(Self::from_events(&events))
    }

    /// Parse a journal dump back into its raw event list, for callers that
    /// want to walk the causal chain themselves.
    pub fn events_from_json(dump: &str) -> Result<Vec<TraceEvent>, serde::Error> {
        serde_json::from_str(dump)
    }

    /// Reconstruct from an in-memory event list.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut pm = Postmortem::default();
        let mut pass: Option<RepairPass> = None;
        for e in events {
            match &e.kind {
                TraceKind::TickStart { tick, .. } => pm.ticks = pm.ticks.max(*tick),
                TraceKind::HealthProbe { goal, healthy, .. } if !healthy => {
                    pm.degraded_goals.insert(*goal);
                }
                TraceKind::Diagnosed {
                    blamed_device,
                    blamed_link,
                    ..
                } => {
                    if let Some(d) = blamed_device {
                        pm.blamed_devices.insert(*d);
                    }
                    if let Some(l) = blamed_link {
                        pm.blamed_links.insert(*l);
                    }
                }
                TraceKind::RepairStart { epoch, .. } => {
                    if let Some(done) = pass.take() {
                        pm.repair_passes.push(done);
                    }
                    pass = Some(RepairPass {
                        epoch: *epoch,
                        ..Default::default()
                    });
                }
                TraceKind::StageDevice { device, ok, .. } if *ok => {
                    pm.staged_devices.insert(*device);
                    if let Some(p) = pass.as_mut() {
                        p.staged.insert(*device);
                    }
                }
                TraceKind::CommitDevice { device, ok, .. } if *ok => {
                    if let Some(p) = pass.as_mut() {
                        p.committed.insert(*device);
                    }
                }
                TraceKind::AbortDevice { device, .. } => {
                    if let Some(p) = pass.as_mut() {
                        p.aborted.insert(*device);
                    }
                }
                TraceKind::GoalOutcome {
                    goal,
                    action,
                    status,
                } => {
                    if let Some(p) = pass.as_mut() {
                        p.outcomes.push((*goal, action.clone(), status.clone()));
                    }
                }
                TraceKind::Verify { goal, ok } if *ok => {
                    pm.verified_goals.insert(*goal);
                }
                TraceKind::RepairEnd { .. } => {
                    if let Some(done) = pass.take() {
                        pm.repair_passes.push(done);
                    }
                }
                _ => {}
            }
        }
        if let Some(done) = pass.take() {
            pm.repair_passes.push(done);
        }
        pm
    }

    /// Repair passes that actually changed something.
    pub fn effective_passes(&self) -> usize {
        self.repair_passes.iter().filter(|p| p.touched()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;

    #[test]
    fn reconstructs_blame_passes_and_staged_devices_from_a_dump() {
        let mut j = Journal::default();
        j.enter(1, TraceKind::TickStart { tick: 1, epoch: 0 });
        j.record(
            1,
            TraceKind::HealthProbe {
                goal: 5,
                sent: 2,
                delivered: 0,
                healthy: false,
            },
        );
        j.record(
            1,
            TraceKind::Diagnosed {
                goal: 5,
                blamed_device: None,
                blamed_link: Some((10, 11)),
                exclusions: 1,
                summary: "link (10,11)".into(),
            },
        );
        j.enter(2, TraceKind::RepairStart { epoch: 1, goals: 1 });
        for d in [10, 12, 13] {
            j.record(
                2,
                TraceKind::StageDevice {
                    txn: 1,
                    device: d,
                    segments: 1,
                    ok: true,
                },
            );
        }
        for d in [13, 12, 10] {
            j.record(
                2,
                TraceKind::CommitDevice {
                    txn: 1,
                    device: d,
                    ok: true,
                },
            );
        }
        j.record(2, TraceKind::Verify { goal: 5, ok: true });
        j.record(
            2,
            TraceKind::GoalOutcome {
                goal: 5,
                action: "Applied".into(),
                status: "Active".into(),
            },
        );
        j.record(
            2,
            TraceKind::RepairEnd {
                epoch: 1,
                transactions: 1,
            },
        );
        j.exit();
        j.exit();

        let pm = Postmortem::from_json(&j.to_json()).unwrap();
        assert_eq!(pm.ticks, 1);
        assert_eq!(pm.degraded_goals, BTreeSet::from([5]));
        assert_eq!(pm.blamed_links, BTreeSet::from([(10, 11)]));
        assert!(pm.blamed_devices.is_empty());
        assert_eq!(pm.repair_passes.len(), 1);
        assert_eq!(pm.effective_passes(), 1);
        assert_eq!(pm.staged_devices, BTreeSet::from([10, 12, 13]));
        assert_eq!(pm.repair_passes[0].committed, BTreeSet::from([10, 12, 13]));
        assert_eq!(pm.verified_goals, BTreeSet::from([5]));
    }
}
