//! Post-mortem reconstruction: rebuild what a run did from its journal
//! dump alone — no simulation, no live `ManagedNetwork`.
//!
//! The [`Postmortem`] walks a dumped event list and recovers the facts an
//! operator asks after a failure: which component was blamed, how many
//! repair passes ran and what each staged/committed, which goals verified.
//! This is the acceptance check for the journal's purpose: a failed
//! scenario must be explainable from its dump.

use crate::journal::{TraceEvent, TraceKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Why a journal dump was rejected.
///
/// Parsing is **strict**: an unknown event kind, a malformed field, a
/// non-dense sequence numbering or a parent pointing at a not-yet-recorded
/// event all fail the whole dump.  Silent skips would mask exactly the
/// corruption the conformance checker exists to catch, so the reconstruction
/// refuses to guess.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpError {
    /// Zero-based position of the offending event in the dump, when the
    /// failure is attributable to one (`None`: the dump is not a JSON
    /// array of events at all).
    pub event: Option<usize>,
    /// What was wrong.
    pub detail: String,
}

impl fmt::Display for DumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.event {
            Some(i) => write!(f, "journal dump rejected at event {i}: {}", self.detail),
            None => write!(f, "journal dump rejected: {}", self.detail),
        }
    }
}

impl std::error::Error for DumpError {}

/// One reconstructed repair pass.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RepairPass {
    /// The pass's repair epoch.
    pub epoch: u64,
    /// Devices the pass staged.
    pub staged: BTreeSet<u64>,
    /// Devices the pass committed.
    pub committed: BTreeSet<u64>,
    /// Devices whose staged state the pass aborted.
    pub aborted: BTreeSet<u64>,
    /// Per-goal `(goal, action, status)` outcomes of the pass, in order.
    pub outcomes: Vec<(u64, String, String)>,
}

impl RepairPass {
    /// Did the pass change anything (any outcome beyond `Unchanged`)?
    pub fn touched(&self) -> bool {
        self.outcomes
            .iter()
            .any(|(_, action, _)| action != "Unchanged")
    }
}

/// Facts reconstructed from a journal dump.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Postmortem {
    /// Ticks the journal covers.
    pub ticks: u64,
    /// Goals the health phase ever reported unhealthy.
    pub degraded_goals: BTreeSet<u64>,
    /// Devices any diagnosis blamed.
    pub blamed_devices: BTreeSet<u64>,
    /// Links any diagnosis blamed (smaller device id first).
    pub blamed_links: BTreeSet<(u64, u64)>,
    /// Every repair pass, in order.
    pub repair_passes: Vec<RepairPass>,
    /// Union of devices staged across all passes.
    pub staged_devices: BTreeSet<u64>,
    /// Goals whose end-to-end verification probe succeeded at least once.
    pub verified_goals: BTreeSet<u64>,
}

impl Postmortem {
    /// Reconstruct from a journal dump (the JSON array produced by
    /// `Recorder::journal_json`).  Strict: any unknown or malformed event
    /// rejects the dump with the offending event's position (see
    /// [`DumpError`]).
    pub fn from_json(dump: &str) -> Result<Self, DumpError> {
        Ok(Self::from_events(&Self::events_from_json(dump)?))
    }

    /// Parse a journal dump back into its raw event list, for callers that
    /// want to walk the causal chain themselves.  Each event is decoded
    /// individually so corruption is reported by position, and the list's
    /// structure is validated: sequence numbers dense and 1-based, every
    /// parent pointer referencing an earlier event (or 0).
    pub fn events_from_json(dump: &str) -> Result<Vec<TraceEvent>, DumpError> {
        let values: Vec<serde_json::Value> = serde_json::from_str(dump).map_err(|e| DumpError {
            event: None,
            detail: e.to_string(),
        })?;
        let mut events: Vec<TraceEvent> = Vec::with_capacity(values.len());
        for (i, v) in values.iter().enumerate() {
            let ev = serde_json::from_value(v).map_err(|e| DumpError {
                event: Some(i),
                detail: e.to_string(),
            })?;
            events.push(ev);
        }
        for (i, e) in events.iter().enumerate() {
            let expected = i as u64 + 1;
            if e.seq != expected {
                return Err(DumpError {
                    event: Some(i),
                    detail: format!("sequence number {} (expected {expected})", e.seq),
                });
            }
            if e.parent >= e.seq {
                return Err(DumpError {
                    event: Some(i),
                    detail: format!("parent {} does not reference an earlier event", e.parent),
                });
            }
        }
        Ok(events)
    }

    /// Reconstruct from an in-memory event list.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut pm = Postmortem::default();
        let mut pass: Option<RepairPass> = None;
        for e in events {
            match &e.kind {
                TraceKind::TickStart { tick, .. } => pm.ticks = pm.ticks.max(*tick),
                TraceKind::HealthProbe { goal, healthy, .. } if !healthy => {
                    pm.degraded_goals.insert(*goal);
                }
                TraceKind::Diagnosed {
                    blamed_device,
                    blamed_link,
                    ..
                } => {
                    if let Some(d) = blamed_device {
                        pm.blamed_devices.insert(*d);
                    }
                    if let Some(l) = blamed_link {
                        pm.blamed_links.insert(*l);
                    }
                }
                TraceKind::RepairStart { epoch, .. } => {
                    if let Some(done) = pass.take() {
                        pm.repair_passes.push(done);
                    }
                    pass = Some(RepairPass {
                        epoch: *epoch,
                        ..Default::default()
                    });
                }
                TraceKind::StageDevice { device, ok, .. } if *ok => {
                    pm.staged_devices.insert(*device);
                    if let Some(p) = pass.as_mut() {
                        p.staged.insert(*device);
                    }
                }
                TraceKind::CommitDevice { device, ok, .. } if *ok => {
                    if let Some(p) = pass.as_mut() {
                        p.committed.insert(*device);
                    }
                }
                TraceKind::AbortDevice { device, .. } => {
                    if let Some(p) = pass.as_mut() {
                        p.aborted.insert(*device);
                    }
                }
                TraceKind::GoalOutcome {
                    goal,
                    action,
                    status,
                } => {
                    if let Some(p) = pass.as_mut() {
                        p.outcomes.push((*goal, action.clone(), status.clone()));
                    }
                }
                TraceKind::Verify { goal, ok } if *ok => {
                    pm.verified_goals.insert(*goal);
                }
                TraceKind::RepairEnd { .. } => {
                    if let Some(done) = pass.take() {
                        pm.repair_passes.push(done);
                    }
                }
                _ => {}
            }
        }
        if let Some(done) = pass.take() {
            pm.repair_passes.push(done);
        }
        pm
    }

    /// Repair passes that actually changed something.
    pub fn effective_passes(&self) -> usize {
        self.repair_passes.iter().filter(|p| p.touched()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;

    #[test]
    fn reconstructs_blame_passes_and_staged_devices_from_a_dump() {
        let mut j = Journal::default();
        j.enter(1, TraceKind::TickStart { tick: 1, epoch: 0 });
        j.record(
            1,
            TraceKind::HealthProbe {
                goal: 5,
                sent: 2,
                delivered: 0,
                healthy: false,
            },
        );
        j.record(
            1,
            TraceKind::Diagnosed {
                goal: 5,
                blamed_device: None,
                blamed_link: Some((10, 11)),
                exclusions: 1,
                summary: "link (10,11)".into(),
            },
        );
        j.enter(2, TraceKind::RepairStart { epoch: 1, goals: 1 });
        for d in [10, 12, 13] {
            j.record(
                2,
                TraceKind::StageDevice {
                    txn: 1,
                    device: d,
                    segments: 1,
                    ok: true,
                },
            );
        }
        for d in [13, 12, 10] {
            j.record(
                2,
                TraceKind::CommitDevice {
                    txn: 1,
                    device: d,
                    ok: true,
                },
            );
        }
        j.record(2, TraceKind::Verify { goal: 5, ok: true });
        j.record(
            2,
            TraceKind::GoalOutcome {
                goal: 5,
                action: "Applied".into(),
                status: "Active".into(),
            },
        );
        j.record(
            2,
            TraceKind::RepairEnd {
                epoch: 1,
                transactions: 1,
            },
        );
        j.exit();
        j.exit();

        let pm = Postmortem::from_json(&j.to_json()).unwrap();
        assert_eq!(pm.ticks, 1);
        assert_eq!(pm.degraded_goals, BTreeSet::from([5]));
        assert_eq!(pm.blamed_links, BTreeSet::from([(10, 11)]));
        assert!(pm.blamed_devices.is_empty());
        assert_eq!(pm.repair_passes.len(), 1);
        assert_eq!(pm.effective_passes(), 1);
        assert_eq!(pm.staged_devices, BTreeSet::from([10, 12, 13]));
        assert_eq!(pm.repair_passes[0].committed, BTreeSet::from([10, 12, 13]));
        assert_eq!(pm.verified_goals, BTreeSet::from([5]));
    }

    /// A small genuine dump to corrupt by hand.
    fn valid_dump() -> String {
        let mut j = Journal::default();
        j.enter(1, TraceKind::TickStart { tick: 1, epoch: 0 });
        j.record(2, TraceKind::Submit { goal: 3 });
        j.record(
            2,
            TraceKind::TickEnd {
                events: 1,
                nm_sent: 0,
                nm_received: 0,
                frames: 0,
            },
        );
        j.exit();
        j.to_json()
    }

    #[test]
    fn an_unknown_event_kind_rejects_the_dump_with_its_position() {
        let corrupted = valid_dump().replace("\"Submit\"", "\"SubmitFromTheFuture\"");
        let err = Postmortem::from_json(&corrupted).expect_err("unknown kinds must not parse");
        assert_eq!(err.event, Some(1), "the corrupt event is at position 1");
        let err2 = Postmortem::events_from_json(&corrupted).expect_err("same for the raw list");
        assert_eq!(err2, err);
    }

    #[test]
    fn a_malformed_field_rejects_the_dump_with_its_position() {
        let corrupted = valid_dump().replace("{\"goal\":3}", "{\"goal\":\"three\"}");
        assert_ne!(corrupted, valid_dump(), "the corruption must have landed");
        let err = Postmortem::from_json(&corrupted).expect_err("malformed fields must not parse");
        assert_eq!(err.event, Some(1));
    }

    #[test]
    fn non_json_input_is_rejected_without_an_event_position() {
        let err = Postmortem::from_json("not a journal").expect_err("garbage must not parse");
        assert_eq!(err.event, None);
    }

    #[test]
    fn a_gap_in_sequence_numbers_rejects_the_dump() {
        // Renumber the second event: the dump's events are no longer dense.
        let corrupted = valid_dump().replace("\"seq\":2", "\"seq\":7");
        let err = Postmortem::from_json(&corrupted).expect_err("gaps must not parse");
        assert_eq!(err.event, Some(1));
        assert!(err.detail.contains("expected 2"), "got: {err}");
    }

    #[test]
    fn a_forward_parent_pointer_rejects_the_dump() {
        // Event 2's parent claims event 9, which does not exist yet.
        let corrupted = valid_dump().replace("\"parent\":1,\"seq\":2", "\"parent\":9,\"seq\":2");
        assert_ne!(corrupted, valid_dump(), "the corruption must have landed");
        let err = Postmortem::from_json(&corrupted).expect_err("forward parents must not parse");
        assert_eq!(err.event, Some(1));
    }
}
