//! The metrics registry: named counters, gauges and histograms.
//!
//! Names are flat dotted strings (`msg.sent.Command`,
//! `repair.wall_us`...), kept in `BTreeMap`s so snapshots serialize in a
//! stable order.  Unlike the journal, metrics may legitimately contain
//! wall-clock measurements — only the journal carries the byte-identical
//! determinism guarantee.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Power-of-two-bucketed histogram of non-negative samples.
///
/// Bucket `i` counts samples in `[2^(i-1), 2^i)` (bucket 0 counts samples
/// `< 1`); values at or beyond `2^30` land in the last bucket.  Fixed
/// storage, O(1) observe, enough resolution for latency and size
/// distributions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Samples observed.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Log2 bucket counts (see type docs).
    pub buckets: [u64; 32],
}

impl Histogram {
    /// Record one sample (negative samples clamp to 0).
    pub fn observe(&mut self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let idx = if v < 1.0 {
            0
        } else {
            ((v.log2().floor() as usize) + 1).min(self.buckets.len() - 1)
        };
        self.buckets[idx] += 1;
    }

    /// Mean of the observed samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// Named counters, gauges and histograms.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Sample distributions.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Add `n` to the counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += n;
        } else {
            self.counters.insert(name.to_string(), n);
        }
    }

    /// Set the gauge `name` to `v`.
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Record a sample into the histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, v: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = Histogram::default();
            h.observe(v);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Drop every metric.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms() {
        let mut m = MetricsRegistry::default();
        m.inc("msg.sent.Command", 2);
        m.inc("msg.sent.Command", 3);
        m.gauge("fleet.goals", 256.0);
        for v in [1.0, 2.0, 4.0, 1000.0] {
            m.observe("repair.wall_us", v);
        }
        assert_eq!(m.counter("msg.sent.Command"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge_value("fleet.goals"), Some(256.0));
        let h = m.histogram("repair.wall_us").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 1000.0);
        assert_eq!(h.mean(), Some(1007.0 / 4.0));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        h.observe(0.0); // bucket 0
        h.observe(0.5); // bucket 0
        h.observe(1.0); // [1,2) -> bucket 1
        h.observe(3.0); // [2,4) -> bucket 2
        h.observe(1024.0); // [1024,2048) -> bucket 11
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[11], 1);
        assert_eq!(h.count, 5);
    }

    #[test]
    fn registry_roundtrips_through_json() {
        let mut m = MetricsRegistry::default();
        m.inc("a", 1);
        m.gauge("b", 2.5);
        m.observe("c", 7.0);
        let s = serde_json::to_string(&m).unwrap();
        let back: MetricsRegistry = serde_json::from_str(&s).unwrap();
        assert_eq!(back, m);
    }
}
