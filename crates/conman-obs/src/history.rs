//! Telemetry history: fixed-size ring buffers over per-goal/per-device
//! [`FlowCounters`] deltas, with slope/variance queries.
//!
//! The autonomic loop's `SubscribeFlows` push reports used to be consumed
//! as bare "something changed" events and discarded.  The
//! [`HistoryStore`] turns them into a queryable store: each
//! `(device, goal)` pair keeps a bounded window of counter *deltas* (the
//! store differences consecutive cumulative reports itself), and the
//! slope/variance queries give trend-triggered pre-emptive diagnosis a
//! substrate — a drop counter whose delta slope is rising is a component
//! worth probing before its goal degrades.

use netsim::stats::FlowCounters;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A bounded FIFO window: pushing beyond capacity evicts the oldest entry.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: Vec<T>,
    cap: usize,
    /// Index of the oldest element once the buffer has wrapped.
    start: usize,
}

impl<T: Clone> Ring<T> {
    /// An empty ring holding at most `cap` entries (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Ring {
            buf: Vec::with_capacity(cap),
            cap,
            start: 0,
        }
    }

    /// Append `v`, evicting the oldest entry when full.
    pub fn push(&mut self, v: T) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.start] = v;
            self.start = (self.start + 1) % self.cap;
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the window empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The bound this ring was created with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Iterate oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let n = self.buf.len();
        (0..n).map(move |i| &self.buf[(self.start + i) % n.max(1)])
    }

    /// The most recently pushed entry.
    pub fn last(&self) -> Option<&T> {
        let n = self.buf.len();
        (n > 0).then(|| &self.buf[(self.start + n - 1) % n])
    }
}

/// One history sample: the counter delta between two consecutive reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSample {
    /// Simulated time the report arrived, nanoseconds.
    pub at_ns: u64,
    /// Counter movement since the previous report from the same device for
    /// the same goal (the first report counts from zero).
    pub delta: FlowCounters,
    /// The cumulative counters as reported.
    pub cumulative: FlowCounters,
}

/// Which [`FlowCounters`] field a query inspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowField {
    /// Packets the device originated for the flow.
    Originated,
    /// Packets forwarded through the device for the flow.
    Forwarded,
    /// Packets delivered to a local sink for the flow.
    Delivered,
    /// Packets dropped during the flow's windows.
    Drops,
}

impl FlowField {
    /// Extract the field's value from a counter sample.
    pub fn of(self, c: &FlowCounters) -> u64 {
        match self {
            FlowField::Originated => c.originated,
            FlowField::Forwarded => c.forwarded,
            FlowField::Delivered => c.local_delivered,
            FlowField::Drops => c.drops,
        }
    }
}

/// Default per-series window size.
pub const DEFAULT_WINDOW: usize = 64;

/// Ring-buffered [`FlowCounters`]-delta history, keyed by
/// `(device, goal-tag)`.
#[derive(Debug, Clone)]
pub struct HistoryStore {
    window: usize,
    series: BTreeMap<(u64, u64), Series>,
}

#[derive(Debug, Clone)]
struct Series {
    last_cumulative: FlowCounters,
    ring: Ring<FlowSample>,
}

impl Default for HistoryStore {
    fn default() -> Self {
        HistoryStore::new(DEFAULT_WINDOW)
    }
}

impl HistoryStore {
    /// A store whose series each hold at most `window` samples.
    pub fn new(window: usize) -> Self {
        HistoryStore {
            window: window.max(1),
            series: BTreeMap::new(),
        }
    }

    /// Record a cumulative counter report from `device` for goal tag
    /// `goal`; the stored sample is the delta against the previous report
    /// (fields that moved backwards — e.g. after an agent reset — clamp to
    /// zero movement).
    pub fn record(&mut self, device: u64, goal: u64, at_ns: u64, cumulative: FlowCounters) {
        let window = self.window;
        let s = self.series.entry((device, goal)).or_insert_with(|| Series {
            last_cumulative: FlowCounters::default(),
            ring: Ring::new(window),
        });
        let prev = s.last_cumulative;
        let delta = FlowCounters {
            originated: cumulative.originated.saturating_sub(prev.originated),
            forwarded: cumulative.forwarded.saturating_sub(prev.forwarded),
            local_delivered: cumulative
                .local_delivered
                .saturating_sub(prev.local_delivered),
            drops: cumulative.drops.saturating_sub(prev.drops),
        };
        s.last_cumulative = cumulative;
        s.ring.push(FlowSample {
            at_ns,
            delta,
            cumulative,
        });
    }

    /// The sample window for one `(device, goal)` series.
    pub fn series(&self, device: u64, goal: u64) -> Option<&Ring<FlowSample>> {
        self.series.get(&(device, goal)).map(|s| &s.ring)
    }

    /// Every `(device, goal)` key with recorded history, in order.
    pub fn keys(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.series.keys().copied()
    }

    /// Number of series held.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Least-squares slope of `field`'s **deltas** over simulated seconds
    /// (units: packets per second per report interval trend).  `None` with
    /// fewer than two samples or a zero time span.
    pub fn slope(&self, device: u64, goal: u64, field: FlowField) -> Option<f64> {
        let ring = self.series(device, goal)?;
        let pts: Vec<(f64, f64)> = ring
            .iter()
            .map(|s| (s.at_ns as f64 / 1e9, field.of(&s.delta) as f64))
            .collect();
        slope_of(&pts)
    }

    /// Population variance of `field`'s deltas across the window (`None`
    /// when the series is empty).
    pub fn variance(&self, device: u64, goal: u64, field: FlowField) -> Option<f64> {
        let ring = self.series(device, goal)?;
        if ring.is_empty() {
            return None;
        }
        let vals: Vec<f64> = ring.iter().map(|s| field.of(&s.delta) as f64).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        Some(vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64)
    }

    /// Mean of `field`'s deltas across the window (`None` when empty).
    pub fn mean(&self, device: u64, goal: u64, field: FlowField) -> Option<f64> {
        let ring = self.series(device, goal)?;
        if ring.is_empty() {
            return None;
        }
        let vals: Vec<f64> = ring.iter().map(|s| field.of(&s.delta) as f64).collect();
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }

    /// Drop all history.
    pub fn clear(&mut self) {
        self.series.clear();
    }
}

/// Least-squares slope of `(x, y)` points; `None` if fewer than two points
/// or all `x` coincide.
fn slope_of(pts: &[(f64, f64)]) -> Option<f64> {
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx = pts.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>();
    if sxx == 0.0 {
        return None;
    }
    let sxy = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>();
    Some(sxy / sxx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn counters(drops: u64, forwarded: u64) -> FlowCounters {
        FlowCounters {
            originated: 0,
            forwarded,
            local_delivered: 0,
            drops,
        }
    }

    #[test]
    fn ring_wraps_and_keeps_the_newest_entries() {
        let mut r: Ring<u32> = Ring::new(4);
        for v in 0..10u32 {
            r.push(v);
            assert!(r.len() <= 4);
        }
        let got: Vec<u32> = r.iter().copied().collect();
        assert_eq!(got, vec![6, 7, 8, 9]);
        assert_eq!(r.last(), Some(&9));
        assert_eq!(r.capacity(), 4);
    }

    #[test]
    fn store_differences_cumulative_reports() {
        let mut h = HistoryStore::new(8);
        h.record(1, 7, 1_000, counters(2, 10));
        h.record(1, 7, 2_000, counters(5, 30));
        h.record(1, 7, 3_000, counters(5, 45));
        let ring = h.series(1, 7).unwrap();
        let deltas: Vec<u64> = ring.iter().map(|s| s.delta.drops).collect();
        assert_eq!(deltas, vec![2, 3, 0]);
        let fwd: Vec<u64> = ring.iter().map(|s| s.delta.forwarded).collect();
        assert_eq!(fwd, vec![10, 20, 15]);
        // A counter that moves backwards (agent reset) clamps to zero.
        h.record(1, 7, 4_000, counters(1, 0));
        assert_eq!(h.series(1, 7).unwrap().last().unwrap().delta.drops, 0);
    }

    #[test]
    fn slope_sees_a_rising_drop_trend_and_variance_sees_stability() {
        let mut h = HistoryStore::new(16);
        // Drop deltas rise by 2 per second; forwarded deltas are constant.
        let mut cum_drops = 0;
        for i in 0..5u64 {
            cum_drops += 2 * i;
            h.record(3, 1, i * 1_000_000_000, counters(cum_drops, 10 * (i + 1)));
        }
        let slope = h.slope(3, 1, FlowField::Drops).unwrap();
        assert!((slope - 2.0).abs() < 1e-9, "got slope {slope}");
        let var = h.variance(3, 1, FlowField::Forwarded).unwrap();
        assert!(
            var.abs() < 1e-9,
            "constant deltas have zero variance: {var}"
        );
        assert_eq!(h.mean(3, 1, FlowField::Forwarded), Some(10.0));
        // Too little data for a trend.
        let mut h2 = HistoryStore::new(4);
        h2.record(1, 1, 0, counters(1, 1));
        assert_eq!(h2.slope(1, 1, FlowField::Drops), None);
        assert_eq!(h2.slope(9, 9, FlowField::Drops), None);
    }

    #[test]
    fn windowed_queries_only_see_the_retained_samples() {
        let mut h = HistoryStore::new(3);
        // Early huge drop deltas are evicted by later quiet ones.
        h.record(1, 1, 0, counters(1_000, 0));
        for i in 1..=3u64 {
            h.record(1, 1, i * 1_000_000_000, counters(1_000, 0));
        }
        assert_eq!(h.mean(1, 1, FlowField::Drops), Some(0.0));
        assert_eq!(h.series(1, 1).unwrap().len(), 3);
    }

    proptest! {
        /// Capacity invariants: the ring never exceeds its bound and always
        /// holds exactly the newest `min(cap, pushed)` items, in order.
        #[test]
        fn ring_capacity_invariants(cap in 1usize..32, items in proptest::collection::vec(any::<u16>(), 0..100)) {
            let mut r: Ring<u16> = Ring::new(cap);
            for (i, v) in items.iter().enumerate() {
                r.push(*v);
                prop_assert!(r.len() <= cap);
                prop_assert_eq!(r.len(), (i + 1).min(cap));
            }
            let got: Vec<u16> = r.iter().copied().collect();
            let expect: Vec<u16> = items[items.len().saturating_sub(cap)..].to_vec();
            prop_assert_eq!(got, expect);
            prop_assert_eq!(r.last().copied(), items.last().copied());
        }
    }
}
