//! The [`Recorder`]: one cheap, cloneable handle bundling the trace
//! journal, the metrics registry and the telemetry history store.
//!
//! Instrumented code holds a `Recorder` and calls it unconditionally; a
//! disabled recorder ([`Recorder::disabled`], also the `Default`) carries
//! no storage at all, so every call is a single `Option` branch and the
//! hot path stays clean.  Clones share the same underlying stores, which
//! is how the NM runtime, the channels and the diagnoser all write into
//! one flight recorder.

use crate::history::{FlowField, HistoryStore};
use crate::journal::{Journal, TraceEvent, TraceKind};
use crate::metrics::MetricsRegistry;
use netsim::stats::FlowCounters;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// Direction of a tapped management message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageDirection {
    /// The device handed the message to the channel.
    Sent,
    /// The device drained the message from the channel.
    Received,
}

impl MessageDirection {
    fn as_str(self) -> &'static str {
        match self {
            MessageDirection::Sent => "sent",
            MessageDirection::Received => "received",
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    journal: Journal,
    metrics: MetricsRegistry,
    history: HistoryStore,
}

/// Shared flight-recorder handle (see module docs).  Not `Send`: the
/// simulator and the NM runtime are single-threaded by design.
#[derive(Debug, Clone, Default)]
pub struct Recorder(Option<Rc<RefCell<Inner>>>);

impl Recorder {
    /// An enabled recorder with empty stores.
    pub fn new() -> Self {
        Recorder(Some(Rc::new(RefCell::new(Inner::default()))))
    }

    /// The no-op recorder: every call is a single branch, nothing is
    /// stored.  This is also the `Default`, so un-instrumented setups pay
    /// nothing.
    pub fn disabled() -> Self {
        Recorder(None)
    }

    /// Does this handle record anything?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    // ---- Journal ------------------------------------------------------

    /// Record a leaf trace event under the currently open span.
    pub fn event(&self, at_ns: u64, kind: TraceKind) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().journal.record(at_ns, kind);
        }
    }

    /// Record a trace event and open a span under it (pair with
    /// [`Recorder::exit`]).
    pub fn enter(&self, at_ns: u64, kind: TraceKind) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().journal.enter(at_ns, kind);
        }
    }

    /// Close the innermost open span.
    pub fn exit(&self) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().journal.exit();
        }
    }

    /// Number of journal events recorded so far.
    pub fn journal_len(&self) -> usize {
        self.0.as_ref().map_or(0, |i| i.borrow().journal.len())
    }

    /// A copy of the journal's events, in order.
    pub fn journal_events(&self) -> Vec<TraceEvent> {
        self.0
            .as_ref()
            .map_or_else(Vec::new, |i| i.borrow().journal.events().to_vec())
    }

    /// The journal dump: a JSON array of events (`"[]"` when disabled).
    /// Deterministic — identical runs dump identical bytes.
    pub fn journal_json(&self) -> String {
        self.0
            .as_ref()
            .map_or_else(|| "[]".to_string(), |i| i.borrow().journal.to_json())
    }

    // ---- Metrics ------------------------------------------------------

    /// Add `n` to a counter.
    pub fn inc(&self, name: &str, n: u64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().metrics.inc(name, n);
        }
    }

    /// Set a gauge.
    pub fn gauge(&self, name: &str, v: f64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().metrics.gauge(name, v);
        }
    }

    /// Record a histogram sample.
    pub fn observe(&self, name: &str, v: f64) {
        if let Some(inner) = &self.0 {
            inner.borrow_mut().metrics.observe(name, v);
        }
    }

    /// Current value of a counter (0 when disabled or absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |i| i.borrow().metrics.counter(name))
    }

    /// The management-channel tap: account one message by direction and
    /// wire category.
    pub fn on_message(&self, dir: MessageDirection, category: &str, bytes: usize) {
        if let Some(inner) = &self.0 {
            let mut inner = inner.borrow_mut();
            let d = dir.as_str();
            inner.metrics.inc(&format!("msg.{d}.{category}"), 1);
            inner.metrics.inc(&format!("msg.{d}.bytes"), bytes as u64);
        }
    }

    // ---- History ------------------------------------------------------

    /// Record a cumulative per-goal flow-counter report into the history
    /// store (deltas are computed inside the store).
    pub fn record_flow(&self, device: u64, goal: u64, at_ns: u64, cumulative: FlowCounters) {
        if let Some(inner) = &self.0 {
            inner
                .borrow_mut()
                .history
                .record(device, goal, at_ns, cumulative);
        }
    }

    /// Run a read-only query against the history store (`None` when
    /// disabled).  The closure must not call back into this recorder.
    pub fn with_history<R>(&self, f: impl FnOnce(&HistoryStore) -> R) -> Option<R> {
        self.0.as_ref().map(|i| f(&i.borrow().history))
    }

    // ---- Export -------------------------------------------------------

    /// A serialisable snapshot of the metrics and per-series history
    /// summaries (empty when disabled).
    pub fn snapshot(&self) -> ObsSnapshot {
        let Some(inner) = &self.0 else {
            return ObsSnapshot::default();
        };
        let inner = inner.borrow();
        let history = inner
            .history
            .keys()
            .map(|(device, goal)| HistorySummary {
                device,
                goal,
                samples: inner.history.series(device, goal).map_or(0, |r| r.len()) as u64,
                drops_mean: inner.history.mean(device, goal, FlowField::Drops),
                drops_slope: inner.history.slope(device, goal, FlowField::Drops),
                drops_variance: inner.history.variance(device, goal, FlowField::Drops),
                forwarded_mean: inner.history.mean(device, goal, FlowField::Forwarded),
            })
            .collect();
        ObsSnapshot {
            metrics: inner.metrics.clone(),
            history,
            journal_events: inner.journal.len() as u64,
        }
    }

    /// Drop everything recorded so far (stores stay shared and enabled).
    pub fn clear(&self) {
        if let Some(inner) = &self.0 {
            let mut inner = inner.borrow_mut();
            inner.journal.clear();
            inner.metrics.clear();
            inner.history.clear();
        }
    }
}

/// Serialisable export of a recorder's metrics and history — what
/// `experiments` emits instead of hand-building JSON.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// The full metrics registry.
    pub metrics: MetricsRegistry,
    /// Per-`(device, goal)` telemetry history summaries.
    pub history: Vec<HistorySummary>,
    /// Journal size at snapshot time.
    pub journal_events: u64,
}

/// Trend summary of one `(device, goal)` history series.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistorySummary {
    /// Device id (raw).
    pub device: u64,
    /// Goal id / flow tag (raw).
    pub goal: u64,
    /// Samples in the window.
    pub samples: u64,
    /// Mean per-report drop delta.
    pub drops_mean: Option<f64>,
    /// Least-squares slope of the drop deltas (per simulated second).
    pub drops_slope: Option<f64>,
    /// Population variance of the drop deltas.
    pub drops_variance: Option<f64>,
    /// Mean per-report forwarded delta.
    pub forwarded_mean: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_stores_nothing_and_never_panics() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.enter(1, TraceKind::TickStart { tick: 1, epoch: 0 });
        r.event(1, TraceKind::Note { text: "x".into() });
        r.exit();
        r.inc("c", 5);
        r.observe("h", 1.0);
        r.record_flow(1, 1, 1, FlowCounters::default());
        assert_eq!(r.journal_len(), 0);
        assert_eq!(r.journal_json(), "[]");
        assert_eq!(r.counter("c"), 0);
        assert_eq!(r.with_history(|h| h.len()), None);
        assert_eq!(r.snapshot(), ObsSnapshot::default());
    }

    #[test]
    fn clones_share_one_flight_recorder() {
        let r = Recorder::new();
        let tap = r.clone();
        tap.on_message(MessageDirection::Sent, "Command", 42);
        r.event(
            7,
            TraceKind::Note {
                text: "tick".into(),
            },
        );
        assert_eq!(r.counter("msg.sent.Command"), 1);
        assert_eq!(r.counter("msg.sent.bytes"), 42);
        assert_eq!(tap.journal_len(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.journal_events, 1);
        assert_eq!(snap.metrics.counter("msg.sent.Command"), 1);
    }

    #[test]
    fn snapshot_serializes_and_summarises_history() {
        let r = Recorder::new();
        for i in 0..3u64 {
            r.record_flow(
                4,
                2,
                i * 1_000_000_000,
                FlowCounters {
                    originated: 0,
                    forwarded: 10 * (i + 1),
                    local_delivered: 0,
                    drops: i,
                },
            );
        }
        let snap = r.snapshot();
        assert_eq!(snap.history.len(), 1);
        let s = &snap.history[0];
        assert_eq!((s.device, s.goal, s.samples), (4, 2, 3));
        assert!(s.drops_slope.is_some());
        let json = serde_json::to_string(&snap).unwrap();
        let back: ObsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
