//! # conman-obs — the NM's flight recorder
//!
//! CONMan's pitch is that the NM can *explain* the network; this crate
//! makes the NM able to explain **itself**.  Three pillars, bundled behind
//! one cheap handle ([`Recorder`]):
//!
//! * **Trace journal** ([`journal`]) — causally-linked span events (tick →
//!   health probe → diagnosis frontier walk → repair pass → per-device
//!   stage/commit → verify), timestamped in simulated time only, so the
//!   same seeded scenario yields a **byte-identical** journal and a failed
//!   run can be post-mortemed from its dump alone ([`postmortem`]).
//! * **Metrics registry** ([`metrics`]) — counters, gauges and log2
//!   histograms (NM messages by wire category via the channel tap, repair
//!   latency in ticks and wall time, path lengths, exclusion-set sizes,
//!   frame budgets), exported as a serialisable [`ObsSnapshot`].
//! * **Telemetry history** ([`history`]) — per-`(device, goal)` ring
//!   buffers over `FlowCounters` deltas with slope/variance queries,
//!   turning `SubscribeFlows` push reports into a queryable store.
//!
//! The crate sits *below* the management layers (it depends only on
//! `netsim`), so the channels, the runtime and the diagnoser can all hold
//! the same recorder.  [`Recorder::disabled`] is the default and reduces
//! every instrumentation call to one branch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod history;
pub mod journal;
pub mod metrics;
pub mod postmortem;
pub mod recorder;

pub use history::{FlowField, FlowSample, HistoryStore, Ring};
pub use journal::{Journal, TraceEvent, TraceKind};
pub use metrics::{Histogram, MetricsRegistry};
pub use postmortem::{DumpError, Postmortem, RepairPass};
pub use recorder::{HistorySummary, MessageDirection, ObsSnapshot, Recorder};
