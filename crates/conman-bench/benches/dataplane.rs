//! Benchmark: the simulated data plane forwarding customer traffic through
//! a configured GRE VPN (packets per second through the ingress router's
//! encapsulation path).

use conman_bench::{discovered_chain, path_labelled};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn bench_dataplane(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataplane");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    let mut t = discovered_chain(3);
    let goal = t.vpn_goal();
    let paths = t.mn.nm.find_paths(&goal);
    let gre = path_labelled(&paths, "GRE-IP");
    t.mn.execute_path(&gre, &goal);
    // Warm the ARP caches once.
    let _ = t.send_site1_to_site2(b"warmup");

    const BATCH: u64 = 50;
    group.throughput(Throughput::Elements(BATCH));
    group.bench_function("gre_vpn_end_to_end_batch", |b| {
        b.iter(|| {
            for i in 0..BATCH {
                t.mn.net
                    .send_udp(
                        t.host1,
                        "10.0.2.5".parse().unwrap(),
                        40000,
                        7000,
                        &i.to_be_bytes(),
                    )
                    .unwrap();
            }
            t.mn.net.run_to_quiescence(1_000_000);
            t.mn.net.device_mut(t.host2).unwrap().take_delivered().len()
        })
    });

    group.bench_function("gre_encapsulation_codec", |b| {
        use netsim::gre::GreHeader;
        use netsim::ipv4::{Ipv4Header, Ipv4Proto};
        let inner = Ipv4Header::new(
            "10.0.1.5".parse().unwrap(),
            "10.0.2.5".parse().unwrap(),
            Ipv4Proto::Udp,
        )
        .encode_packet(&[0u8; 512]);
        b.iter(|| {
            let gre = GreHeader::ipv4(Some(2001), Some(7), true).encode_packet(&inner);
            let outer = Ipv4Header::new(
                "204.9.168.1".parse().unwrap(),
                "204.9.169.1".parse().unwrap(),
                Ipv4Proto::Gre,
            )
            .encode_packet(&gre);
            let (h, rest) = Ipv4Header::decode_packet(&outer).unwrap();
            let (g, _) = GreHeader::decode_packet(&rest).unwrap();
            (h.ttl, g.key)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dataplane);
criterion_main!(benches);
