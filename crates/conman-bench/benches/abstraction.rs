//! Benchmark: showPotential discovery and abstraction serialization — the
//! cost of the CONMan "narrow waist" compared with shipping thousands of MIB
//! objects.

use conman_bench::discovered_chain;
use conman_modules::managed_chain;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_abstraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("abstraction");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("announce_and_discover_figure4", |b| {
        b.iter(|| {
            let mut t = managed_chain(3);
            t.discover();
            t.mn.nm.device_count()
        })
    });

    let t = discovered_chain(3);
    let abstractions: Vec<_> =
        t.mn.nm
            .abstractions
            .values()
            .flat_map(|v| v.iter().cloned())
            .collect();
    group.bench_function("serialize_all_abstractions", |b| {
        b.iter(|| serde_json::to_vec(&abstractions).unwrap().len())
    });
    group.bench_function("render_table3_rows", |b| {
        b.iter(|| {
            abstractions
                .iter()
                .map(|a| a.as_table().len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_abstraction);
criterion_main!(benches);
