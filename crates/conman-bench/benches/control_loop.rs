//! Benchmark: the autonomic control loop — full detect + localise + repair
//! cycles on the fan-out chain, and the cost of one quiescent tick (which
//! must stay management-silent however many goals are live).

use conman_bench::{
    assert_loop_healthy, assert_one_pass_reroute, loop_run, mesh_loop_run, LoopScenario,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_control_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("control_loop");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for goals in [3usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("detect_repair_chain4_fleet", goals),
            &goals,
            |b, &goals| {
                b.iter(|| {
                    let report = loop_run(4, goals, LoopScenario::CoreStateLoss);
                    assert_loop_healthy(&report, 3);
                    report.repair_wall_us
                })
            },
        );
    }
    group.bench_with_input(
        BenchmarkId::new("detect_repair_chain4_per_goal", 8usize),
        &8usize,
        |b, &goals| {
            b.iter(|| {
                let report = loop_run(4, goals, LoopScenario::PerGoalTableFlush);
                assert_loop_healthy(&report, 3);
                report.repair_wall_us
            })
        },
    );
    // The link-suspect-aware reroute: a cut core link on the 2×2 mesh is
    // diagnosed to the link and the fleet rerouted onto the redundant row
    // in one batched pass (no repair-budget burn).
    group.bench_with_input(
        BenchmarkId::new("detect_reroute_mesh2_link_cut", 8usize),
        &8usize,
        |b, &goals| {
            b.iter(|| {
                let report = mesh_loop_run(2, goals, LoopScenario::MeshLinkCut);
                assert_one_pass_reroute(&report);
                report.repair_wall_us
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_control_loop);
criterion_main!(benches);
