//! Benchmark: the diagnosis closed loop — time to detect, localise and
//! repair an injected fault (wall-clock), across chain sizes.

use conman_bench::{closed_loop_run, DiagnosisScenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_diagnosis(c: &mut Criterion) {
    let mut group = c.benchmark_group("diagnosis");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for n in [4usize, 10] {
        group.bench_with_input(
            BenchmarkId::new("closed_loop_routing_loss", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let r = closed_loop_run(n, DiagnosisScenario::MidRouterRoutingLoss);
                    assert!(r.heal.healed());
                    r.repair_wall_us
                })
            },
        );
    }
    group.bench_function("closed_loop_gre_key_corruption_3", |b| {
        b.iter(|| {
            let r = closed_loop_run(3, DiagnosisScenario::EgressGreKeyCorruption);
            assert!(r.heal.healed());
            r.repair_wall_us
        })
    });
    group.bench_function("closed_loop_link_cut_localisation_3", |b| {
        b.iter(|| {
            let r = closed_loop_run(3, DiagnosisScenario::CoreLinkCut);
            assert!(!r.report.healthy);
            r.detect_wall_us
        })
    });
    group.finish();
}

criterion_group!(benches, bench_diagnosis);
criterion_main!(benches);
