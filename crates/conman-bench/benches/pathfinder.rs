//! Benchmark: the NM's path finder on the Figure 4 testbed and on longer
//! chains (the cost of enumerating all protocol-sane paths, §III-C.1).

use conman_bench::discovered_chain;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_pathfinder(c: &mut Criterion) {
    let mut group = c.benchmark_group("pathfinder");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for n in [3usize, 5, 8] {
        let t = discovered_chain(n);
        let goal = t.vpn_goal();
        group.bench_with_input(BenchmarkId::new("find_paths", n), &n, |b, _| {
            b.iter(|| {
                let paths = t.mn.nm.find_paths(&goal);
                assert!(!paths.is_empty());
                paths.len()
            })
        });
    }
    let t = discovered_chain(3);
    let goal = t.vpn_goal();
    group.bench_function("build_graph_figure4", |b| {
        b.iter(|| t.mn.nm.build_graph().module_count())
    });
    group.bench_function("choose_path_figure4", |b| {
        let paths = t.mn.nm.find_paths(&goal);
        b.iter(|| t.mn.nm.choose_path(&paths).cloned())
    });
    group.finish();
}

criterion_group!(benches, bench_pathfinder);
criterion_main!(benches);
