//! Benchmark: full configuration runs (discovery + script execution + module
//! negotiation) for the three VPN technologies — the wall-clock counterpart
//! of Table VI's message counts.

use conman_bench::{configure_and_count, configure_vlan_and_count};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_configuration(c: &mut Criterion) {
    let mut group = c.benchmark_group("configuration");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [3usize, 6] {
        group.bench_with_input(BenchmarkId::new("gre_vpn", n), &n, |b, &n| {
            b.iter(|| configure_and_count(n, "GRE-IP"))
        });
        group.bench_with_input(BenchmarkId::new("mpls_vpn", n), &n, |b, &n| {
            b.iter(|| configure_and_count(n, "MPLS"))
        });
        group.bench_with_input(BenchmarkId::new("vlan_tunnel", n), &n, |b, &n| {
            b.iter(|| configure_vlan_and_count(n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_configuration);
criterion_main!(benches);
