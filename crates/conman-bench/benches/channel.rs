//! Benchmark: the two management-channel variants — direct out-of-band
//! delivery vs the self-bootstrapping in-band flooding channel (§III-A).

use criterion::{criterion_group, criterion_main, Criterion};
use mgmt_channel::{
    InBandChannel, ManagementChannel, MessageCategory, MgmtMessage, OutOfBandChannel,
};
use netsim::device::{Device, DeviceRole, PortId};
use netsim::link::LinkProperties;
use netsim::network::Network;
use std::time::Duration;

fn line_network(n: usize) -> (Network, Vec<netsim::device::DeviceId>) {
    let mut net = Network::new();
    net.trace_enabled = false;
    let ids: Vec<_> = (0..n)
        .map(|i| net.add_device(Device::new(format!("d{i}"), DeviceRole::Router, 2)))
        .collect();
    for i in 0..n - 1 {
        net.connect(
            (ids[i], PortId(0)),
            (ids[i + 1], PortId(1)),
            LinkProperties::lan(),
        )
        .unwrap();
    }
    (net, ids)
}

fn bench_channels(c: &mut Criterion) {
    let mut group = c.benchmark_group("mgmt_channel");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("out_of_band_roundtrip", |b| {
        let (mut net, ids) = line_network(8);
        let mut ch = OutOfBandChannel::new();
        b.iter(|| {
            let msg = MgmtMessage::new(ids[0], ids[7], MessageCategory::Command, vec![0u8; 256]);
            ch.send(&mut net, msg);
            ch.recv(&mut net, ids[7]).len()
        })
    });

    group.bench_function("in_band_flooding_8_hops", |b| {
        b.iter(|| {
            // The in-band channel keeps per-flood dedup state, so build it
            // fresh per iteration to measure a full flood.
            let (mut net, ids) = line_network(8);
            let mut ch = InBandChannel::new();
            let msg = MgmtMessage::new(ids[0], ids[7], MessageCategory::Command, vec![0u8; 256]);
            ch.send(&mut net, msg);
            ch.recv(&mut net, ids[7]).len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_channels);
criterion_main!(benches);
