//! Benchmark: CONMan script generation and the Table V classification of
//! both CONMan and legacy scripts.

use conman_bench::{discovered_chain, path_labelled};
use criterion::{criterion_group, criterion_main, Criterion};
use legacy_config::{classify_conman_script, gre_script_today, GreVpnParams};
use std::time::Duration;

fn bench_scripts(c: &mut Criterion) {
    let mut group = c.benchmark_group("scripts");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    let t = discovered_chain(3);
    let goal = t.vpn_goal();
    let paths = t.mn.nm.find_paths(&goal);
    let gre = path_labelled(&paths, "GRE-IP");
    let mpls = path_labelled(&paths, "MPLS");
    group.bench_function("generate_gre_scripts", |b| {
        b.iter(|| t.mn.nm.generate_scripts(&gre, &goal).primitive_count())
    });
    group.bench_function("generate_mpls_scripts", |b| {
        b.iter(|| t.mn.nm.generate_scripts(&mpls, &goal).primitive_count())
    });
    let rendered = t.mn.nm.generate_scripts(&gre, &goal).scripts[0]
        .rendered
        .clone();
    group.bench_function("classify_conman_script", |b| {
        b.iter(|| classify_conman_script(&rendered).counts())
    });
    group.bench_function("legacy_gre_script_today", |b| {
        b.iter(|| gre_script_today(&GreVpnParams::figure7_router_a()).counts())
    });
    group.finish();
}

criterion_group!(benches, bench_scripts);
criterion_main!(benches);
