//! Benchmark: multi-goal reconciliation — submit `goals` concurrent VPN
//! goals on the 10-router chain and reconcile them in one pass.  Tracks the
//! goal-count scaling trajectory (1 / 8 / 64 / 256 / 512 goals batched,
//! with the per-goal-transaction baseline at the shared 1 / 8 / 64 points
//! so the batching win stays a measured artefact).

use conman_bench::{goals::assert_converged, multi_goal_run_mode, ReconcileMode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_goals(c: &mut Criterion) {
    let mut group = c.benchmark_group("goals");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for goals in [1usize, 8, 64, 256, 512] {
        group.bench_with_input(
            BenchmarkId::new("reconcile_chain10_batched", goals),
            &goals,
            |b, &goals| {
                b.iter(|| {
                    let report = multi_goal_run_mode(10, goals, ReconcileMode::Batched);
                    assert_converged(&report);
                    report.reconcile_wall_us
                })
            },
        );
    }
    for goals in [1usize, 8, 64] {
        group.bench_with_input(
            BenchmarkId::new("reconcile_chain10_per_goal", goals),
            &goals,
            |b, &goals| {
                b.iter(|| {
                    let report = multi_goal_run_mode(10, goals, ReconcileMode::PerGoal);
                    assert_converged(&report);
                    report.reconcile_wall_us
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_goals);
criterion_main!(benches);
