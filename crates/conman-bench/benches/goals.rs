//! Benchmark: multi-goal reconciliation — submit `goals` concurrent VPN
//! goals on the 10-router chain and reconcile them in one pass.  Tracks the
//! goal-count scaling trajectory (1 / 8 / 64 goals).

use conman_bench::{goals::assert_converged, multi_goal_run};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_goals(c: &mut Criterion) {
    let mut group = c.benchmark_group("goals");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for goals in [1usize, 8, 64] {
        group.bench_with_input(
            BenchmarkId::new("reconcile_chain10", goals),
            &goals,
            |b, &goals| {
                b.iter(|| {
                    let report = multi_goal_run(10, goals);
                    assert_converged(&report);
                    report.reconcile_wall_us
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_goals);
criterion_main!(benches);
