//! Reproduction harness: regenerates every table and figure of the paper's
//! evaluation from the simulated testbeds.
//!
//! ```text
//! cargo run -p conman-bench --bin experiments            # everything
//! cargo run -p conman-bench --bin experiments table5     # one artefact
//! ```

use conman_bench::{
    closed_loop_run, configure_and_count, configure_vlan_and_count, discovered_chain,
    discovered_vlan_chain, loop_run, loop_run_inband, mesh_loop_run, multi_goal_run_cfg,
    path_labelled, DiagnosisScenario, LoopBenchReport, LoopScenario, MultiGoalConfig,
    MultiGoalReport, PlannerEngine, ReconcileMode,
};
use conman_core::ids::ModuleKind;
use conman_core::WireCodec;
use legacy_config::{
    classify_conman_script, gre_script_today, mpls_script_today, vlan_script_today, GreVpnParams,
};
use serde::Serialize;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    if all || which == "table1" {
        table1();
    }
    if all || which == "table2" || which == "table3" {
        table2_and_3();
    }
    if all || which == "table4" || which == "figure4" || which == "figure5" {
        table4_figure4_figure5();
    }
    if all || which == "figure6" || which == "figure4_paths" {
        figure6_paths();
    }
    if all || which == "figure2_3" {
        figure2_3();
    }
    if all || which == "figure7" || which == "figure8" || which == "figure9" || which == "table5" {
        figures7_8_9_table5();
    }
    if all || which == "table6" {
        table6();
    }
    if all || which == "diagnosis" {
        diagnosis();
    }
    if all || which == "goals" {
        goals();
    }
    if all || which == "loop" {
        autonomic_loop();
    }
    if all || which == "obs" {
        obs();
    }
}

fn heading(s: &str) {
    println!("\n==================================================================");
    println!("{s}");
    println!("==================================================================");
}

fn table1() {
    heading("Table I — CONMan primitives");
    for (name, caller, callee) in [
        ("showPotential", "NM", "MA of device"),
        ("showActual", "NM", "MA of device"),
        ("create / delete", "NM", "MA of device"),
        (
            "conveyMessage",
            "Module (source)",
            "Module (destination), relayed via NM",
        ),
        (
            "listFieldsAndValues",
            "Module (inspecting)",
            "Module (target), relayed via NM",
        ),
    ] {
        println!("{name:22} {caller:22} {callee}");
    }
}

fn table2_and_3() {
    heading("Table II / Table III — module abstraction; GRE module as advertised by showPotential");
    let t = discovered_chain(3);
    let a_id = t.core[0];
    let gre =
        t.mn.nm
            .find_module(a_id, &ModuleKind::Gre)
            .expect("GRE module on router A");
    let abs = t.mn.nm.abstraction_of(&gre).expect("abstraction recorded");
    for (k, v) in abs.as_table() {
        println!("{k:20} {v}");
    }
}

fn table4_figure4_figure5() {
    heading("Figure 4 — testbed and module map / Table IV — device A capabilities / Figure 5 — potential-connectivity sub-graph");
    let t = discovered_chain(3);
    println!("Managed devices (ISP): {}", t.mn.nm.device_count());
    for (dev, name) in &t.mn.nm.device_names {
        let modules = &t.mn.nm.abstractions[dev];
        let kinds: Vec<String> = modules.iter().map(|m| m.name.kind.name()).collect();
        println!("  {name:10} modules: {}", kinds.join(", "));
    }
    println!("\nTable IV — connectivity and switching of device A's modules:");
    let a_id = t.core[0];
    for m in &t.mn.nm.abstractions[&a_id] {
        println!(
            "  {:28} Up: {:18} Down: {:26} Phy: {:8} Switching: {}",
            m.name.to_string(),
            m.up_connectable
                .iter()
                .map(|k| k.name())
                .collect::<Vec<_>>()
                .join(","),
            m.down_connectable
                .iter()
                .map(|k| k.name())
                .collect::<Vec<_>>()
                .join(","),
            if m.physical_pipes.is_empty() {
                "None".into()
            } else {
                format!("port{}", m.physical_pipes[0].port.0)
            },
            m.switch
                .kinds
                .iter()
                .map(|k| k.notation())
                .collect::<Vec<_>>()
                .join(",")
        );
    }
    println!("\nFigure 5 — potential-connectivity sub-graph of device A:");
    let graph = t.mn.nm.build_graph();
    for line in graph.render_device_subgraph(a_id) {
        println!("  {line}");
    }
}

fn figure6_paths() {
    heading("§III-C.1 / Figure 6 — path enumeration for the VPN goal (expected 3, the NM finds 9)");
    let t = discovered_chain(3);
    let goal = t.vpn_goal();
    let paths = t.mn.nm.find_paths(&goal);
    println!("paths found: {}", paths.len());
    for (i, p) in paths.iter().enumerate() {
        println!(
            "  ({:2}) {:22} pipes={:2}  modules: {}",
            i + 1,
            p.technology_label(),
            p.pipe_count(),
            p.steps
                .iter()
                .map(|s| format!(
                    "{}:{}",
                    s.module.kind,
                    t.mn.nm.device_alias(s.module.device)
                ))
                .collect::<Vec<_>>()
                .join(" -> ")
        );
    }
    let chosen = t.mn.nm.choose_path(&paths).unwrap();
    println!(
        "NM's choice (fewest pipes, fast forwarding preferred): {}",
        chosen.technology_label()
    );
}

fn figure2_3() {
    heading("Figures 2 & 3 — GRE tunnel establishment and the conveyMessage sequence");
    // The paper's Figure 2 places the tunnel endpoints on end hosts whose
    // application originates the traffic; our path finder models traffic
    // entering through a customer-facing interface, so we demonstrate the
    // same §III-B establishment on the degenerate two-edge-router chain
    // (tunnel endpoints directly adjacent, exactly Figure 2's A--D--B shape
    // with the ISP hop collapsed).  The module abstractions of the Figure 2
    // testbed itself are discovered below for completeness.
    let mut f2 = conman_modules::managed_figure2();
    f2.discover();
    println!(
        "Figure 2 testbed discovered: {} managed devices (A, B, layer-2 switch C, router D)",
        f2.mn.nm.device_count()
    );

    let mut t = discovered_chain(2);
    let goal = t.vpn_goal();
    let paths = t.mn.nm.find_paths(&goal);
    let gre = path_labelled(&paths, "GRE-IP");
    let scripts = t.mn.nm.generate_scripts(&gre, &goal);
    println!("\nCONMan script generated by the NM (cf. the six commands of §III-B):");
    print!("{}", scripts.render());
    t.mn.reset_counters();
    t.mn.execute_path(&gre, &goal);
    let c = t.mn.nm_counters();
    println!("\nFigure 3 message sequence as seen by the NM (configuration phase):");
    for (k, v) in &c.sent_by_category {
        println!("  sent     {:?}: {}", k, v);
    }
    for (k, v) in &c.received_by_category {
        println!("  received {:?}: {}", k, v);
    }
    let (fwd, _) = t.send_site1_to_site2(b"fig2 check");
    println!("customer traffic delivered over the established tunnel: {fwd}");
}

fn figures7_8_9_table5() {
    heading("Figures 7, 8, 9 — configuration today vs CONMan; Table V — generic vs protocol-specific counts");
    let mut rows = Vec::new();

    // GRE.
    let t = discovered_chain(3);
    let goal = t.vpn_goal();
    let paths = t.mn.nm.find_paths(&goal);
    for (label, today) in [
        (
            "GRE-IP",
            gre_script_today(&GreVpnParams::figure7_router_a()),
        ),
        ("MPLS", mpls_script_today()),
    ] {
        let path = path_labelled(&paths, label);
        let scripts = t.mn.nm.generate_scripts(&path, &goal);
        let router_a = &scripts.scripts[0];
        println!("\n--- {} : configuration today (router A) ---", label);
        println!("{}", today.text());
        println!(
            "--- {} : CONMan configuration (router A, generated by the NM) ---",
            label
        );
        for l in &router_a.rendered {
            println!("{l}");
        }
        let conman = classify_conman_script(&router_a.rendered);
        rows.push((label.to_string(), today.counts(), conman.counts()));
    }

    // VLAN.
    let v = discovered_vlan_chain(3);
    let goal = v.vlan_goal();
    let paths = v.mn.nm.find_paths(&goal);
    let path = paths.first().expect("VLAN path").clone();
    let scripts = v.mn.nm.generate_scripts(&path, &goal);
    let today = vlan_script_today();
    println!("\n--- VLAN : configuration today (CatOS, switch A) ---");
    println!("{}", today.text());
    println!("--- VLAN : CONMan configuration (switch A, generated by the NM) ---");
    for l in &scripts.scripts[0].rendered {
        println!("{l}");
    }
    rows.push((
        "VLAN".to_string(),
        today.counts(),
        classify_conman_script(&scripts.scripts[0].rendered).counts(),
    ));

    println!("\nTable V — commands and state variables, Today (T) vs CONMan (C):");
    println!("{:22} {:>6} {:>6} {:>6} {:>6}", "", "T", "C", "", "");
    println!(
        "{:22} {:>6} {:>6}",
        "scenario", "gen/spec cmds", "gen/spec vars"
    );
    for (label, t_counts, c_counts) in rows {
        println!(
            "{label:10} today : {:>2} generic cmds, {:>2} specific cmds, {:>2} generic vars, {:>2} specific vars",
            t_counts.generic_commands, t_counts.specific_commands, t_counts.generic_variables, t_counts.specific_variables
        );
        println!(
            "{label:10} conman: {:>2} generic cmds, {:>2} specific cmds, {:>2} generic vars, {:>2} specific vars",
            c_counts.generic_commands, c_counts.specific_commands, c_counts.generic_variables, c_counts.specific_variables
        );
    }
    println!("(paper, Table V: GRE T=1/6/9/11 C=2/0/21/2; MPLS T=1/6/6/8 C=2/0/18/2; VLAN T=3/4/3/5 C=2/0/14/1)");
}

fn diagnosis() {
    heading("Diagnosis closed loop — time-to-detect / time-to-repair (conman-diagnose, beyond the paper)");
    println!("Periodic telemetry every 100ms of simulated time; one watchdog probe per round;");
    println!("counter-delta localisation along the configured path; repair = teardown + re-plan");
    println!("excluding suspects + execute + end-to-end verification.\n");
    // Per-fault scenarios on the Figure 4 chain.
    for scenario in [
        DiagnosisScenario::EgressGreKeyCorruption,
        DiagnosisScenario::CoreLinkCut,
    ] {
        println!("{}", closed_loop_run(3, scenario).render());
    }
    // The scaling sweep the acceptance criteria ask for: 3, 10, 50 routers.
    for n in [4usize, 10, 50] {
        println!(
            "{}",
            closed_loop_run(n, DiagnosisScenario::MidRouterRoutingLoss).render()
        );
    }
}

fn goals() {
    heading(
        "Multi-goal reconciliation — goal-count scaling on the 10-router chain (beyond the paper)",
    );
    println!("Each goal is a VPN for a distinct pair of site classes between the same edge");
    println!("interfaces.  The batched pass plans every goal in a disjoint pipe-id block and");
    println!("stages/commits each device once per pass; the per-goal baseline runs one");
    println!("two-phase transaction per goal (the pre-batching executor).  Batched rows run");
    println!("twice: the sequential planner over JSON payloads (the pre-raw-speed engine)");
    println!("and the parallel planner over the zero-copy binary codec.\n");
    println!(
        "{:>9} {:>11} {:>7} {:>6} {:>8} {:>6} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "mode",
        "engine",
        "codec",
        "goals",
        "active",
        "txns",
        "reconcile",
        "enc bytes",
        "NM sent",
        "NM recv",
        "msg/goal",
        "µs/goal"
    );
    let mut rows: Vec<MultiGoalReport> = Vec::new();
    let print_row = |r: &MultiGoalReport| {
        println!(
            "{:>9} {:>11} {:>7} {:>6} {:>8} {:>6} {:>9} µs {:>12} {:>12} {:>12} {:>10.1} {:>10.1}",
            r.mode.label(),
            r.engine.label(),
            r.codec.label(),
            r.goals,
            r.active,
            r.transactions,
            r.reconcile_wall_us,
            r.encode_bytes,
            r.nm_sent,
            r.nm_received,
            r.messages_per_goal(),
            r.wall_us_per_goal()
        );
    };
    let batched = |goals: usize, engine: PlannerEngine, codec: WireCodec| {
        let r = multi_goal_run_cfg(MultiGoalConfig {
            n: 10,
            goals,
            mode: ReconcileMode::Batched,
            engine,
            codec,
        });
        assert_eq!(
            r.active, r.goals,
            "every goal must converge in the batched pass"
        );
        r
    };
    for goals in [1usize, 8, 64, 256, 512] {
        let r = batched(goals, PlannerEngine::Sequential, WireCodec::Json);
        print_row(&r);
        rows.push(r);
        let r = batched(goals, PlannerEngine::Parallel, WireCodec::Binary);
        print_row(&r);
        rows.push(r);
    }
    // The tail of the scaling axis only runs under the raw-speed engine:
    // at 4k/16k goals the sequential/JSON baseline's per-goal graph rebuild
    // would dominate the whole harness run for a ratio already asserted at
    // 512 goals, so the baselines are deliberately skipped here.
    println!("(4096/16384-goal rows: sequential/JSON baseline skipped by design)");
    for goals in [4096usize, 16384] {
        let r = batched(goals, PlannerEngine::Parallel, WireCodec::Binary);
        print_row(&r);
        rows.push(r);
    }
    for goals in [1usize, 8, 64] {
        let r = multi_goal_run_cfg(MultiGoalConfig {
            n: 10,
            goals,
            mode: ReconcileMode::PerGoal,
            engine: PlannerEngine::Parallel,
            codec: WireCodec::Json,
        });
        // The baseline must converge too, or the message ratio below would
        // be computed against a partially failed (cheaper) baseline.
        assert_eq!(
            r.active, r.goals,
            "every goal must converge in the per-goal baseline"
        );
        print_row(&r);
        rows.push(r);
    }
    let find = |mode: ReconcileMode, engine: PlannerEngine, codec: WireCodec, goals: usize| {
        rows.iter()
            .find(|r| r.mode == mode && r.engine == engine && r.codec == codec && r.goals == goals)
            .unwrap_or_else(|| panic!("missing {:?} {:?} {goals}-goal row", mode, engine))
    };
    // The headline ratio the acceptance criteria track: at 64 goals the
    // batched pass must send at most 25% of the baseline's NM messages.
    // Message counts are codec-independent, so the raw-speed row serves.
    let batched64 = find(
        ReconcileMode::Batched,
        PlannerEngine::Parallel,
        WireCodec::Binary,
        64,
    );
    let per_goal64 = find(
        ReconcileMode::PerGoal,
        PlannerEngine::Parallel,
        WireCodec::Json,
        64,
    );
    let ratio = batched64.nm_sent as f64 / per_goal64.nm_sent as f64;
    println!(
        "\nNM sends at 64 goals: batched {} vs per-goal baseline {} ({:.1}% of baseline)",
        batched64.nm_sent,
        per_goal64.nm_sent,
        100.0 * ratio
    );
    assert!(
        ratio <= 0.25,
        "batched reconcile must send <= 25% of the per-goal baseline's messages"
    );
    // The raw-speed gate: at 512 goals the parallel planner over the
    // zero-copy binary codec must finish the pass in at most half the
    // sequential/JSON engine's wall time.
    let fast512 = find(
        ReconcileMode::Batched,
        PlannerEngine::Parallel,
        WireCodec::Binary,
        512,
    );
    let slow512 = find(
        ReconcileMode::Batched,
        PlannerEngine::Sequential,
        WireCodec::Json,
        512,
    );
    let wall_ratio = fast512.reconcile_wall_us as f64 / slow512.reconcile_wall_us.max(1) as f64;
    println!(
        "Reconcile wall at 512 goals: parallel+binary {} µs vs sequential+JSON {} µs ({:.1}% of baseline)",
        fast512.reconcile_wall_us,
        slow512.reconcile_wall_us,
        100.0 * wall_ratio
    );
    assert!(
        wall_ratio <= 0.50,
        "parallel+zero-copy reconcile must finish in <= 50% of the sequential/JSON wall time at 512 goals"
    );

    // Machine-readable artefact so CI tracks the perf trajectory across PRs.
    let series: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "mode": r.mode.label(),
                "engine": r.engine.label(),
                "codec": r.codec.label(),
                "goals": r.goals,
                "active": r.active,
                "transactions": r.transactions,
                "wall_us": r.reconcile_wall_us as u64,
                "encode_bytes": r.encode_bytes,
                "nm_sent": r.nm_sent,
                "nm_received": r.nm_received,
                "shared_modules": r.shared_modules,
                "messages_per_goal": r.messages_per_goal(),
                "wall_us_per_goal": r.wall_us_per_goal(),
            })
        })
        .collect();
    let artefact = serde_json::json!({
        "bench": "goals",
        "chain_routers": 10,
        "wall_ratio_512": wall_ratio,
        "series": series,
    });
    let path = "BENCH_goals.json";
    match std::fs::write(
        path,
        serde_json::to_string(&artefact).expect("artefact serializes"),
    ) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
}

fn autonomic_loop() {
    heading("Autonomic control loop — ticks-to-detect / ticks-to-repair on the 10-router chain and the 2x3 multipath mesh (beyond the paper)");
    println!("Every goal is backed by a real customer host pair; the event-driven loop");
    println!("health-probes each goal per 100ms tick inside its flow-attribution window,");
    println!("localises faults from per-goal FlowCounters deltas under the other goals'");
    println!("live traffic, and repairs everything needing work in one batched pass.");
    println!("On the mesh a blamed core *link* is rerouted around in ONE repair attempt");
    println!("(no budget burn); a converged tick sends ZERO management messages.\n");
    let header = || {
        println!(
            "{:>22} {:>8} {:>6} {:>7} {:>8} {:>8} {:>9} {:>9} {:>8} {:>7} {:>7} {:>10} {:>10}",
            "scenario",
            "channel",
            "goals",
            "setup",
            "quiet-NM",
            "degraded",
            "detect-tk",
            "repair-tk",
            "blamed",
            "passes",
            "failed",
            "repair-NM",
            "wall"
        );
    };
    header();
    let print_row = |r: &LoopBenchReport| {
        println!(
            "{:>22} {:>8} {:>6} {:>7} {:>8} {:>8} {:>9} {:>9} {:>8} {:>7} {:>7} {:>10} {:>7} µs",
            r.scenario.name(),
            r.channel,
            r.goals,
            r.setup_ticks,
            r.quiescent_nm_sent,
            r.degraded_goals,
            r.ticks_to_detect,
            r.ticks_to_repair,
            r.blamed_correct,
            r.repair_passes,
            r.failed_attempts,
            r.repair_nm_sent,
            r.repair_wall_us,
        );
    };
    let mut rows: Vec<LoopBenchReport> = Vec::new();
    for scenario in [LoopScenario::CoreStateLoss, LoopScenario::PerGoalTableFlush] {
        for goals in [8usize, 64, 256] {
            let r = loop_run(10, goals, scenario);
            print_row(&r);
            // The smoke gates CI enforces: converged, silent when
            // quiescent, the right device blamed, repair within budget.
            conman_bench::assert_loop_healthy(&r, 3);
            if scenario == LoopScenario::PerGoalTableFlush {
                assert_eq!(
                    r.degraded_goals, 1,
                    "a per-goal fault must degrade exactly one goal (localisation under background traffic)"
                );
            } else {
                assert_eq!(
                    r.degraded_goals, r.goals,
                    "the core fault hits the whole fleet"
                );
            }
            rows.push(r);
        }
    }
    // Mesh rows: a blamed core link has a genuine alternative, so the smoke
    // gate is the one-pass reroute — exactly one batched pass, zero failed
    // attempts, the *link* (not just a device) blamed.
    for scenario in [LoopScenario::MeshLinkCut, LoopScenario::MeshLinkLoss] {
        for goals in [8usize, 64, 256] {
            let r = mesh_loop_run(3, goals, scenario);
            print_row(&r);
            conman_bench::assert_one_pass_reroute(&r);
            assert_eq!(
                r.degraded_goals, r.goals,
                "every goal crossed the dead link"
            );
            rows.push(r);
        }
    }
    // The in-band message-budget row: the loop over the flooding channel
    // must stay silent when quiescent, and the faulty ticks' flooded
    // telemetry cost is recorded for trend tracking.
    let r = loop_run_inband(10, 8, LoopScenario::CoreStateLoss);
    print_row(&r);
    conman_bench::assert_loop_healthy(&r, 3);
    rows.push(r);

    // Recorded re-runs of one chain and one mesh scenario: the full-run
    // trace journals (setup convergence included) are linted against the
    // conformance checker in-process and persisted so CI's `analyze` step
    // can replay them offline.
    let (chain_rec, chain_journal) =
        conman_bench::recorded_loop_run(10, 8, LoopScenario::CoreStateLoss);
    conman_bench::assert_loop_healthy(&chain_rec, 3);
    conman_bench::assert_journal_conforms(&chain_journal, "recorded chain loop journal");
    let (mesh_rec, mesh_journal) =
        conman_bench::recorded_mesh_loop_run(3, 8, LoopScenario::MeshLinkCut);
    conman_bench::assert_one_pass_reroute(&mesh_rec);
    conman_bench::assert_journal_conforms(&mesh_journal, "recorded mesh loop journal");
    for (path, journal) in [
        ("JOURNAL_loop_chain.json", &chain_journal),
        ("JOURNAL_loop_mesh.json", &mesh_journal),
    ] {
        match std::fs::write(path, journal) {
            Ok(()) => println!("wrote {path} (conforms)"),
            Err(e) => println!("could not write {path}: {e}"),
        }
    }

    // Machine-readable artefact so CI tracks the loop trajectory across
    // PRs.  `LoopBenchReport` derives `Serialize`, so the artefact shares
    // the same encoding path as the flight-recorder snapshot instead of a
    // hand-assembled JSON object per row.
    let series: Vec<serde_json::Value> = rows.iter().map(|r| r.serialize()).collect();
    let artefact = serde_json::json!({
        "bench": "loop",
        "chain_routers": 10,
        "mesh_stages": 3,
        "tick_ms": 100,
        "series": series,
    });
    let path = "BENCH_loop.json";
    match std::fs::write(
        path,
        serde_json::to_string(&artefact).expect("artefact serializes"),
    ) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}

fn obs() {
    heading("Flight recorder — journal determinism, post-mortem reconstruction and recorder overhead (beyond the paper)");
    println!("The recorder journals every loop span (tick → health probe → diagnosis →");
    println!("repair → stage/commit → verify) with simulated-time stamps only, so the same");
    println!("seeded scenario always yields a byte-identical journal.  The overhead rows");
    println!("drive the same converged fleet through quiescent ticks with the recorder");
    println!("disabled vs enabled; the statistic is the minimum tick wall time.\n");

    // ---- Recorded mesh link-cut: the journal must carry the whole story.
    let rec = conman_bench::recorded_mesh_link_cut(3, 8);
    assert!(rec.converged, "the recorded mesh run must converge");
    let pm = conman_obs::Postmortem::from_json(&rec.journal).expect("journal parses");
    assert!(
        pm.blamed_links.contains(&rec.cut_link),
        "the journal must name the cut link {:?}: {:?}",
        rec.cut_link,
        pm.blamed_links
    );
    println!(
        "recorded mesh-link-cut (2x3, 8 goals): {} journal events, blamed link {:?}, \
         {} repair pass(es), {} staged device(s) reconstructed from the dump",
        rec.snapshot.journal_events,
        rec.cut_link,
        rec.repair_passes,
        pm.staged_devices.len(),
    );
    // The journal must also pass the protocol conformance checker, and is
    // persisted for CI's offline `analyze` step.
    conman_bench::assert_journal_conforms(&rec.journal, "recorded mesh link-cut journal");
    match std::fs::write("JOURNAL_obs.json", &rec.journal) {
        Ok(()) => println!("wrote JOURNAL_obs.json (conforms)"),
        Err(e) => println!("could not write JOURNAL_obs.json: {e}"),
    }

    // ---- Overhead rows; the 256-goal row is the CI smoke gate. ---------
    println!(
        "\n{:>6} {:>6} {:>14} {:>14} {:>10} {:>10}",
        "n", "goals", "disabled-tick", "enabled-tick", "overhead", "events"
    );
    let mut rows = Vec::new();
    for goals in [64usize, 256] {
        let r = conman_bench::loop_overhead(10, goals);
        println!(
            "{:>6} {:>6} {:>11} µs {:>11} µs {:>9.1}% {:>10}",
            r.n,
            r.goals,
            r.disabled_tick_ns / 1_000,
            r.enabled_tick_ns / 1_000,
            r.overhead_pct,
            r.journal_events
        );
        rows.push(r);
    }
    let gate = rows
        .iter()
        .find(|r| r.goals == 256)
        .expect("256-goal overhead row");
    assert!(
        gate.overhead_pct <= 105.0,
        "recorder overhead on the 256-goal loop row must stay within 5% \
         (enabled {} ns vs disabled {} ns = {:.1}%)",
        gate.enabled_tick_ns,
        gate.disabled_tick_ns,
        gate.overhead_pct
    );

    // Machine-readable artefact: the overhead rows plus the recorded run's
    // metrics snapshot, all through the derived serialisation path.
    let artefact = serde_json::json!({
        "bench": "obs",
        "chain_routers": 10,
        "mesh_stages": 3,
        "overhead_ticks_measured": 8,
        "overhead": rows.iter().map(|r| r.serialize()).collect::<Vec<_>>(),
        "recorded_mesh_link_cut": {
            "converged": rec.converged,
            "cut_link": rec.cut_link,
            "repair_passes": rec.repair_passes,
            "journal_events": rec.snapshot.journal_events,
            "postmortem_staged_devices": pm.staged_devices.len() as u64,
            "snapshot": rec.snapshot.serialize(),
        },
    });
    let path = "BENCH_obs.json";
    match std::fs::write(
        path,
        serde_json::to_string(&artefact).expect("artefact serializes"),
    ) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}

fn table6() {
    heading("Table VI — NM messages sent / received over the management channel vs n routers along the path");
    println!(
        "{:>4} {:>14} {:>14} {:>14} {:>18} {:>18}",
        "n",
        "GRE sent/recv",
        "paper 3n+2/2n+2",
        "MPLS sent/recv",
        "VLAN sent/recv",
        "paper 3n-2/2n-1"
    );
    // Beyond n ≈ 8 the number of protocol-sane paths grows exponentially
    // (every core segment can independently ride on MPLS), which is exactly
    // the "we should use more aggressive pruning rules" observation of
    // §III-C.1; the message-count expressions themselves stay linear.
    for n in [2usize, 3, 4, 6, 8] {
        let (gs, gr) = configure_and_count(n, "GRE-IP");
        let (ms, mr) = configure_and_count(n, "MPLS");
        let (vs, vr) = configure_vlan_and_count(n);
        println!(
            "{n:>4} {:>14} {:>14} {:>14} {:>18} {:>18}",
            format!("{gs}/{gr}"),
            format!("{}/{}", 3 * n + 2, 2 * n + 2),
            format!("{ms}/{mr}"),
            format!("{vs}/{vr}"),
            format!("{}/{}", 3 * n - 2, 2 * n - 1),
        );
    }
}
