//! Offline journal conformance linter: the CI `analyze` step.
//!
//! ```text
//! cargo run -p conman-bench --bin analyze JOURNAL_obs.json JOURNAL_loop.json
//! ```
//!
//! Each argument is a journal dump (the JSON array written by
//! `Recorder::journal_json`, persisted by the `experiments obs` / `loop`
//! smokes).  Every dump is parsed **strictly** (unknown or malformed events
//! reject the whole file, see `conman_obs::DumpError`) and then replayed
//! through the protocol state machine of `conman_analyze::check_journal`:
//! spans balanced, stages resolved exactly once within their epoch, no
//! verify before its pass's commits, timestamps monotone, epochs strictly
//! increasing.  Any violation — or any unreadable/unparseable dump — makes
//! the process exit non-zero, failing the CI step.

use conman_analyze::check_journal;
use conman_obs::Postmortem;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: analyze <journal-dump.json>...");
        std::process::exit(2);
    }
    let mut clean = true;
    for path in &paths {
        let dump = match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) => {
                println!("{path}: unreadable: {e}");
                clean = false;
                continue;
            }
        };
        let events = match Postmortem::events_from_json(&dump) {
            Ok(ev) => ev,
            Err(e) => {
                println!("{path}: {e}");
                clean = false;
                continue;
            }
        };
        let violations = check_journal(&events);
        if violations.is_empty() {
            println!("{path}: conforms ({} events)", events.len());
        } else {
            println!(
                "{path}: {} violation(s) over {} events",
                violations.len(),
                events.len()
            );
            for v in &violations {
                println!("  [{:?}] {v}", v.severity());
            }
            clean = false;
        }
    }
    if !clean {
        std::process::exit(1);
    }
}
