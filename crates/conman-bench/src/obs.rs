//! Flight-recorder experiments: what the recorder costs and what its
//! journal can reconstruct.
//!
//! Two artefacts back the `obs` row of the reproduction harness:
//!
//! * **Overhead** — the same converged goal fleet is driven through
//!   quiescent control-loop ticks twice, once with [`Recorder::disabled`]
//!   (the default: a single `Option` branch per hook) and once with an
//!   enabled recorder journalling every span.  The statistic is the
//!   *minimum* tick wall time over a handful of ticks — minima are far
//!   more stable than means under scheduler noise, which is what lets CI
//!   hold the enabled/disabled ratio to a tight budget.
//! * **Recorded mesh link-cut** — the link-suspect-aware reroute scenario
//!   (`mesh_loop_run`'s cut) re-run with an enabled recorder, returning
//!   both the live ground truth (which link was cut, where the fleet
//!   landed) and the trace journal, so tests and the `flightrecorder`
//!   example can prove the whole story is reconstructible from the dump
//!   alone.

use crate::control_loop::mesh_limits;
use crate::diagnosis::chain_limits;
use conman_core::nm::GoalStatus;
use conman_core::runtime::{ControlLoop, GoalEndpoints, LoopConfig, LoopReport, ReconcileAction};
use conman_diagnose::AutonomicClient;
use conman_modules::{managed_fanout_chain, managed_mesh_fanout, ManagedMesh};
use conman_obs::{ObsSnapshot, Recorder};
use mgmt_channel::OutOfBandChannel;
use serde::Serialize;
use std::time::Instant;

/// Quiescent ticks measured per mode; the row reports the minimum.
const OVERHEAD_TICKS: usize = 8;

/// Parse a journal dump strictly and run the protocol conformance checker
/// over it, panicking with the full violation list on failure.  The smoke
/// harness and the integration tests lint every journal they produce
/// through this single gate, so a recorder emission bug (unbalanced span,
/// unresolved stage, verify before commit...) fails the run that produced
/// the journal, not just the offline `analyze` pass.
pub fn assert_journal_conforms(journal: &str, what: &str) {
    let events =
        conman_obs::Postmortem::events_from_json(journal).unwrap_or_else(|e| panic!("{what}: {e}"));
    let violations = conman_analyze::check_journal(&events);
    assert!(
        violations.is_empty(),
        "{what}: journal fails conformance ({} violation(s)):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| format!("  - {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// One recorder-overhead row: the minimum quiescent tick wall time with
/// the recorder disabled vs enabled, on the same chain/goal-count shape.
#[derive(Debug, Clone, Serialize)]
pub struct ObsOverheadReport {
    /// Chain size (core routers).
    pub n: usize,
    /// Live goals the loop health-probes per tick.
    pub goals: usize,
    /// Minimum quiescent tick wall time with `Recorder::disabled()`,
    /// nanoseconds.
    pub disabled_tick_ns: u64,
    /// Minimum quiescent tick wall time with an enabled recorder,
    /// nanoseconds.
    pub enabled_tick_ns: u64,
    /// `enabled / disabled`, in percent (100.0 = parity).
    pub overhead_pct: f64,
    /// Journal events the enabled run accumulated (setup + measured
    /// ticks) — evidence the recorder was genuinely on.
    pub journal_events: u64,
}

/// Converge `goals` goals on an `n`-router fan-out chain, then measure the
/// minimum wall time of [`OVERHEAD_TICKS`] quiescent control-loop ticks.
/// Returns `(min_tick_ns, journal_events)`.
fn quiescent_tick_ns(n: usize, goals: usize, recorder: Recorder) -> (u64, u64) {
    let mut t = managed_fanout_chain(n, goals);
    t.discover();
    t.mn.goals.limits = chain_limits(n);
    t.mn.set_recorder(recorder);
    let mut cl = ControlLoop::new(&t.mn, LoopConfig::default())
        .with_client(Box::new(AutonomicClient::new(2)));
    for k in 0..goals {
        let (src, dst, dst_ip) = t.fanout_probe(k);
        let id = t.mn.submit(t.fanout_goal(k));
        cl.track(id, GoalEndpoints { src, dst, dst_ip });
    }
    let setup = cl.run_until_converged(&mut t.mn, 16);
    assert!(
        setup.converged,
        "fleet must converge before measuring ticks"
    );
    let mut best = u64::MAX;
    for _ in 0..OVERHEAD_TICKS {
        let wall = Instant::now();
        let tick = cl.tick(&mut t.mn);
        best = best.min(wall.elapsed().as_nanos() as u64);
        assert_eq!(tick.nm_sent, 0, "a converged loop tick must stay silent");
    }
    (best, t.mn.recorder.journal_len() as u64)
}

/// Measure recorder overhead on quiescent loop ticks: the same topology and
/// fleet, once with the recorder disabled and once enabled.
pub fn loop_overhead(n: usize, goals: usize) -> ObsOverheadReport {
    let (disabled_tick_ns, _) = quiescent_tick_ns(n, goals, Recorder::disabled());
    let (enabled_tick_ns, journal_events) = quiescent_tick_ns(n, goals, Recorder::new());
    assert!(journal_events > 0, "the enabled run must journal events");
    ObsOverheadReport {
        n,
        goals,
        disabled_tick_ns,
        enabled_tick_ns,
        overhead_pct: 100.0 * enabled_tick_ns as f64 / disabled_tick_ns.max(1) as f64,
        journal_events,
    }
}

/// A recorded mesh link-cut run: the trace journal plus the live ground
/// truth it must be able to reconstruct.
#[derive(Debug, Clone)]
pub struct RecordedMeshRun {
    /// The post-fault loop run (detection → repair → convergence).
    pub run: LoopReport,
    /// The trace journal as JSON, cleared at fault-injection time so it
    /// contains exactly the fault story (detect, diagnose, repair, verify).
    pub journal: String,
    /// The metrics/history snapshot at the end of the run.
    pub snapshot: ObsSnapshot,
    /// The cut core link, smaller raw device id first.
    pub cut_link: (u64, u64),
    /// Devices (raw ids) on the fleet's repaired paths — every one of them
    /// was staged by the repair transaction.
    pub new_path_devices: Vec<u64>,
    /// Repair passes that actually touched a goal (the one-pass-reroute
    /// ground truth: exactly 1).
    pub repair_passes: u64,
    /// Did the run end converged with every goal's traffic verified?
    pub converged: bool,
}

/// Re-run the `mesh-link-cut` scenario from the loop bench with an enabled
/// recorder: converge `goals` goals on the 2×k mesh, clear the journal, cut
/// a core link of the applied path, and let the loop detect, localise and
/// reroute — everything it does landing in the trace journal.
///
/// The scenario is fully seeded (the simulator is deterministic and the
/// journal is timestamped with simulated time only), so two invocations
/// with the same arguments produce **byte-identical** journals.
pub fn recorded_mesh_link_cut(k: usize, goals: usize) -> RecordedMeshRun {
    let mut t: ManagedMesh<OutOfBandChannel> = managed_mesh_fanout(k, goals);
    t.discover();
    t.mn.goals.limits = mesh_limits(k);
    t.mn.set_recorder(Recorder::new());

    let mut cl = ControlLoop::new(&t.mn, LoopConfig::default())
        .with_client(Box::new(AutonomicClient::new(2)));
    let mut ids = Vec::with_capacity(goals);
    for g in 0..goals {
        let (src, dst, dst_ip) = t.fanout_probe(g);
        let id = t.mn.submit(t.fanout_goal(g));
        cl.track(id, GoalEndpoints { src, dst, dst_ip });
        ids.push(id);
    }
    let setup = cl.run_until_converged(&mut t.mn, 16);
    assert!(setup.converged, "fleet must converge during setup");

    // The journal restarts at the fault: the post-mortem story is the
    // fault story, not the (much longer) setup transcript.
    t.mn.recorder.clear();

    let hop = t
        .applied_core_hop(ids[0])
        .expect("the applied path crosses the core");
    let link = t.link(hop.0, hop.1).expect("the hop is a physical link");
    netsim::fault::apply_fault(&mut t.mn.net, netsim::fault::FaultKind::LinkCut(link));

    let run = cl.run_until_converged(&mut t.mn, 12);
    let repair_passes = run
        .ticks
        .iter()
        .filter(|tk| {
            tk.repair.as_ref().is_some_and(|r| {
                r.outcomes
                    .iter()
                    .any(|o| o.action != ReconcileAction::Unchanged)
            })
        })
        .count() as u64;
    let all_active = t.mn.goals.iter().all(|r| r.status == GoalStatus::Active);
    let traffic_ok = (0..goals).all(|g| t.probe_pair(g));
    let cut_link = {
        let (a, b) = (hop.0.as_u64(), hop.1.as_u64());
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    };
    let mut new_path_devices: Vec<u64> = ids
        .iter()
        .filter_map(|id| t.mn.goals.get(*id).and_then(|r| r.applied()))
        .flat_map(|a| a.path.devices())
        .map(|d| d.as_u64())
        .collect();
    new_path_devices.sort_unstable();
    new_path_devices.dedup();

    RecordedMeshRun {
        converged: run.converged && all_active && traffic_ok,
        journal: t.mn.recorder.journal_json(),
        snapshot: t.mn.recorder.snapshot(),
        cut_link,
        new_path_devices,
        repair_passes,
        run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conman_obs::Postmortem;

    #[test]
    fn recorded_mesh_run_converges_and_journals_the_cut() {
        let rec = recorded_mesh_link_cut(2, 2);
        assert!(rec.converged);
        assert_eq!(rec.repair_passes, 1, "one-pass reroute");
        let pm = Postmortem::from_json(&rec.journal).expect("journal parses");
        assert!(pm.blamed_links.contains(&rec.cut_link));
        assert_journal_conforms(&rec.journal, "recorded mesh link-cut journal");
    }

    #[test]
    fn overhead_row_measures_both_modes() {
        let r = loop_overhead(4, 8);
        assert!(r.disabled_tick_ns > 0 && r.enabled_tick_ns > 0);
        assert!(r.journal_events > 0);
    }
}
