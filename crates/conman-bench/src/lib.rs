//! Shared helpers for the CONMan benchmarks and the table/figure
//! reproduction harness (`src/bin/experiments.rs`), including the
//! closed-loop diagnosis experiments (time-to-detect / time-to-repair).

#![forbid(unsafe_code)]

pub mod control_loop;
pub mod diagnosis;
pub mod goals;
pub mod obs;

pub use control_loop::{
    assert_loop_healthy, assert_one_pass_reroute, loop_run, loop_run_inband, mesh_loop_run,
    recorded_loop_run, recorded_mesh_loop_run, LoopBenchReport, LoopScenario,
};
pub use diagnosis::{closed_loop_run, ClosedLoopReport, DiagnosisScenario};
pub use goals::{
    multi_goal_run, multi_goal_run_cfg, multi_goal_run_mode, synthetic_goal, MultiGoalConfig,
    MultiGoalReport, PlannerEngine, ReconcileMode,
};
pub use obs::{
    assert_journal_conforms, loop_overhead, recorded_mesh_link_cut, ObsOverheadReport,
    RecordedMeshRun,
};

use conman_core::nm::ModulePath;
use conman_core::runtime::ManagedNetwork;
use conman_modules::{managed_chain, managed_vlan_chain, ManagedChain, ManagedVlanChain};
use mgmt_channel::{ManagementChannel, MessageCategory, OutOfBandChannel};

/// A discovered Figure-4-style chain, ready for path finding.
pub fn discovered_chain(n: usize) -> ManagedChain<OutOfBandChannel> {
    let mut t = managed_chain(n);
    t.discover();
    t
}

/// A discovered VLAN chain.
pub fn discovered_vlan_chain(n: usize) -> ManagedVlanChain<OutOfBandChannel> {
    let mut t = managed_vlan_chain(n);
    t.discover();
    t
}

/// Pick the path with the given technology label.
pub fn path_labelled(paths: &[ModulePath], label: &str) -> ModulePath {
    paths
        .iter()
        .find(|p| p.technology_label() == label)
        .unwrap_or_else(|| {
            panic!(
                "no {label} path among {:?}",
                paths
                    .iter()
                    .map(|p| p.technology_label())
                    .collect::<Vec<_>>()
            )
        })
        .clone()
}

/// NM messages (sent, received) counted the way Table VI counts them:
/// commands + relayed module messages on the sent side, relayed module
/// messages + notifications on the received side.
pub fn table6_counts<C: ManagementChannel>(mn: &ManagedNetwork<C>) -> (u64, u64) {
    let c = mn.nm_counters();
    let sent = [
        MessageCategory::Command,
        MessageCategory::ConveyMessage,
        MessageCategory::FieldQuery,
    ]
    .iter()
    .map(|k| c.sent_by_category.get(k).copied().unwrap_or(0))
    .sum();
    let received = [
        MessageCategory::ConveyMessage,
        MessageCategory::FieldQuery,
        MessageCategory::Notification,
    ]
    .iter()
    .map(|k| c.received_by_category.get(k).copied().unwrap_or(0))
    .sum();
    (sent, received)
}

/// Configure a chain over the path with the given label and return the NM's
/// configuration-phase (sent, received) counts.
pub fn configure_and_count(n: usize, label: &str) -> (u64, u64) {
    let mut t = discovered_chain(n);
    let goal = t.vpn_goal();
    let paths = t.mn.nm.find_paths(&goal);
    let path = path_labelled(&paths, label);
    t.mn.reset_counters();
    t.mn.execute_path(&path, &goal);
    table6_counts(&t.mn)
}

/// Configure a VLAN chain and return the NM's (sent, received) counts.
pub fn configure_vlan_and_count(n: usize) -> (u64, u64) {
    let mut t = discovered_vlan_chain(n);
    let goal = t.vlan_goal();
    let paths = t.mn.nm.find_paths(&goal);
    let path = paths.first().expect("VLAN path").clone();
    t.mn.reset_counters();
    t.mn.execute_path(&path, &goal);
    table6_counts(&t.mn)
}
