//! Multi-goal scaling experiments: how reconciliation behaves as the number
//! of concurrent goals grows on a fixed chain.
//!
//! Each synthetic goal is a VPN between the same customer-facing interfaces
//! for a distinct pair of site classes (`C<k>-S1` = `10.<k>.1.0/24`,
//! `C<k>-S2` = `10.<k>.2.0/24`), so every goal plans its own path, executes
//! in a disjoint pipe-id block, and shares the ISP core module instances
//! with every other goal — the goal-count axis the ROADMAP's scaling
//! trajectory tracks.
//!
//! Two reconcile executors are measured: the **batched** pass (one staged +
//! one committed round-trip per device per pass, relays coalesced) and the
//! pre-batching **per-goal** baseline (one full two-phase transaction per
//! goal).  Messages-per-goal and wall-time-per-goal are the headline
//! numbers; `BENCH_goals.json` tracks them across PRs.

use crate::diagnosis::chain_limits;
use conman_core::nm::{ConnectivityGoal, GoalId};
use conman_core::WireCodec;
use conman_modules::{managed_chain, ManagedChain};
use conman_obs::Recorder;
use mgmt_channel::{ManagementChannel, OutOfBandChannel};
use std::time::Instant;

/// Which reconcile executor a run measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconcileMode {
    /// One batched transaction per pass (`reconcile`).
    Batched,
    /// One two-phase transaction per goal (`reconcile_per_goal`) — the
    /// pre-batching baseline.
    PerGoal,
}

impl ReconcileMode {
    /// Short label for artefact output.
    pub fn label(self) -> &'static str {
        match self {
            ReconcileMode::Batched => "batched",
            ReconcileMode::PerGoal => "per-goal",
        }
    }
}

/// Which planning engine drives a batched pass (ignored by the per-goal
/// baseline, whose planning loop predates both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerEngine {
    /// `reconcile` — parallel path selection over one hoisted potential
    /// graph with per-worker scratch reuse.
    Parallel,
    /// `reconcile_sequential` — per-goal graph rebuild and fresh search
    /// state; the pre-raw-speed cost profile kept as the baseline.
    Sequential,
}

impl PlannerEngine {
    /// Short label for artefact output.
    pub fn label(self) -> &'static str {
        match self {
            PlannerEngine::Parallel => "parallel",
            PlannerEngine::Sequential => "sequential",
        }
    }
}

/// Full configuration of one multi-goal run: the topology and goal-count
/// axes plus the executor, planning-engine and wire-codec axes the
/// raw-speed work measures against each other.
#[derive(Debug, Clone, Copy)]
pub struct MultiGoalConfig {
    /// Chain size (core routers).
    pub n: usize,
    /// Goals to submit.
    pub goals: usize,
    /// Batched pass or per-goal baseline.
    pub mode: ReconcileMode,
    /// Planning engine for the batched pass.
    pub engine: PlannerEngine,
    /// Wire codec for the management payloads.
    pub codec: WireCodec,
}

/// What one multi-goal run measured.
#[derive(Debug, Clone)]
pub struct MultiGoalReport {
    /// Chain size (core routers).
    pub n: usize,
    /// Goals submitted.
    pub goals: usize,
    /// Which executor ran the pass.
    pub mode: ReconcileMode,
    /// Which planning engine the batched pass used.
    pub engine: PlannerEngine,
    /// Which wire codec the management payloads used.
    pub codec: WireCodec,
    /// Bytes of batch-transaction wire encoding produced during the pass
    /// (the `txn.encode_bytes` counter) — how the zero-copy codec's size
    /// win is tracked.
    pub encode_bytes: u64,
    /// Goals `Active` after the reconcile pass.
    pub active: usize,
    /// Transactions the pass executed (one per goal for the per-goal
    /// baseline; one batch for the batched pass on a fresh network).
    pub transactions: usize,
    /// Wall-clock for the single reconcile call, microseconds.
    pub reconcile_wall_us: u128,
    /// NM management messages sent during reconciliation (from the pass's
    /// [`ReconcileReport`](conman_core::runtime::ReconcileReport) counters).
    pub nm_sent: u64,
    /// NM management messages received during reconciliation.
    pub nm_received: u64,
    /// Module instances shared by at least two goals afterwards.
    pub shared_modules: usize,
}

impl MultiGoalReport {
    /// NM messages sent per goal — the scaling currency of the management
    /// plane.
    pub fn messages_per_goal(&self) -> f64 {
        self.nm_sent as f64 / self.goals.max(1) as f64
    }

    /// Reconcile wall-clock per goal, microseconds.
    pub fn wall_us_per_goal(&self) -> f64 {
        self.reconcile_wall_us as f64 / self.goals.max(1) as f64
    }
}

/// The `k`-th synthetic goal on a chain testbed.
pub fn synthetic_goal<C: ManagementChannel>(t: &ManagedChain<C>, k: usize) -> ConnectivityGoal {
    let mut goal = t.vpn_goal();
    let k = k + 1; // keep 10.0.x.0 (the real customer) out of the space
    goal.src_class = format!("C{k}-S1");
    goal.dst_class = format!("C{k}-S2");
    goal.resolved.remove("C1-S1");
    goal.resolved.remove("C1-S2");
    goal.resolved
        .insert(format!("C{k}-S1"), format!("10.{k}.1.0/24"));
    goal.resolved
        .insert(format!("C{k}-S2"), format!("10.{k}.2.0/24"));
    goal
}

/// Submit `goals` concurrent goals on an `n`-router chain and reconcile
/// them in one batched pass, measuring the pass.
pub fn multi_goal_run(n: usize, goals: usize) -> MultiGoalReport {
    multi_goal_run_mode(n, goals, ReconcileMode::Batched)
}

/// Submit `goals` concurrent goals on an `n`-router chain and reconcile
/// them in one pass with the chosen executor, measuring the pass (parallel
/// engine, JSON codec — the historical signature, kept for the criterion
/// harness).
pub fn multi_goal_run_mode(n: usize, goals: usize, mode: ReconcileMode) -> MultiGoalReport {
    multi_goal_run_cfg(MultiGoalConfig {
        n,
        goals,
        mode,
        engine: PlannerEngine::Parallel,
        codec: WireCodec::Json,
    })
}

/// Submit and reconcile goals under a full [`MultiGoalConfig`], measuring
/// the pass.
pub fn multi_goal_run_cfg(cfg: MultiGoalConfig) -> MultiGoalReport {
    assert!((1..=16384).contains(&cfg.goals), "goal count out of range");
    let MultiGoalConfig {
        n,
        goals,
        mode,
        engine,
        codec,
    } = cfg;
    let mut t: ManagedChain<OutOfBandChannel> = managed_chain(n);
    t.discover();
    t.mn.goals.limits = chain_limits(n);
    t.mn.codec = codec;
    // An enabled recorder supplies the `txn.encode_bytes` reading; attached
    // after discovery so only the measured pass counts.
    let recorder = Recorder::new();
    t.mn.set_recorder(recorder.clone());
    let ids: Vec<GoalId> = (0..goals)
        .map(|k| t.mn.submit(synthetic_goal(&t, k)))
        .collect();
    t.mn.reset_counters();
    let start = Instant::now();
    let report = match (mode, engine) {
        (ReconcileMode::Batched, PlannerEngine::Parallel) => t.mn.reconcile(),
        (ReconcileMode::Batched, PlannerEngine::Sequential) => t.mn.reconcile_sequential(),
        (ReconcileMode::PerGoal, _) => t.mn.reconcile_per_goal(),
    };
    let reconcile_wall_us = start.elapsed().as_micros();
    let shared_modules =
        t.mn.goals
            .module_users()
            .values()
            .filter(|g| g.len() >= 2)
            .count();
    debug_assert_eq!(ids.len(), goals);
    MultiGoalReport {
        n,
        goals,
        mode,
        engine,
        codec,
        encode_bytes: recorder.counter("txn.encode_bytes"),
        active: report.active(),
        transactions: report.transactions,
        reconcile_wall_us,
        nm_sent: report.nm_sent,
        nm_received: report.nm_received,
        shared_modules,
    }
}

/// Sanity-check a run: every goal must converge.
pub fn assert_converged(report: &MultiGoalReport) {
    assert_eq!(
        report.active, report.goals,
        "every goal must be active after reconcile: {report:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_goals_converge_on_a_short_chain() {
        let report = multi_goal_run(3, 8);
        assert_converged(&report);
        // The whole fresh pass is one batched transaction.
        assert_eq!(report.transactions, 1);
        assert!(report.shared_modules > 0, "goals share the core modules");
    }

    #[test]
    fn per_goal_baseline_still_converges_with_one_txn_per_goal() {
        let report = multi_goal_run_mode(3, 8, ReconcileMode::PerGoal);
        assert_converged(&report);
        assert_eq!(report.transactions, 8);
    }

    #[test]
    fn batched_pass_sends_fewer_messages_than_per_goal_baseline() {
        let batched = multi_goal_run(3, 8);
        let per_goal = multi_goal_run_mode(3, 8, ReconcileMode::PerGoal);
        assert_converged(&batched);
        assert_converged(&per_goal);
        assert!(
            batched.nm_sent < per_goal.nm_sent,
            "batching must cut NM sends: batched {} vs per-goal {}",
            batched.nm_sent,
            per_goal.nm_sent
        );
    }

    #[test]
    fn reconcile_is_idempotent_across_synthetic_goals() {
        let mut t = managed_chain(3);
        t.discover();
        for k in 0..4 {
            let goal = synthetic_goal(&t, k);
            t.mn.submit(goal);
        }
        let report = t.mn.reconcile();
        assert_eq!(report.active(), 4);
        let second = t.mn.reconcile();
        assert_eq!(second.transactions, 0);
        assert_eq!(second.nm_sent, 0, "a converged pass sends nothing");
    }
}
