//! Multi-goal scaling experiments: how reconciliation behaves as the number
//! of concurrent goals grows on a fixed chain.
//!
//! Each synthetic goal is a VPN between the same customer-facing interfaces
//! for a distinct pair of site classes (`C<k>-S1` = `10.<k>.1.0/24`,
//! `C<k>-S2` = `10.<k>.2.0/24`), so every goal plans its own path, executes
//! its own two-phase transaction in a disjoint pipe-id block, and shares
//! the ISP core module instances with every other goal — the goal-count
//! axis the ROADMAP's scaling trajectory tracks.

use crate::diagnosis::chain_limits;
use conman_core::nm::{ConnectivityGoal, GoalId};
use conman_modules::{managed_chain, ManagedChain};
use mgmt_channel::{ManagementChannel, OutOfBandChannel};
use std::time::Instant;

/// What one multi-goal run measured.
#[derive(Debug, Clone)]
pub struct MultiGoalReport {
    /// Chain size (core routers).
    pub n: usize,
    /// Goals submitted.
    pub goals: usize,
    /// Goals `Active` after the reconcile pass.
    pub active: usize,
    /// Transactions the pass executed (one per goal on a fresh network).
    pub transactions: usize,
    /// Wall-clock for the single `reconcile()` call, microseconds.
    pub reconcile_wall_us: u128,
    /// NM management messages sent during reconciliation.
    pub nm_sent: u64,
    /// NM management messages received during reconciliation.
    pub nm_received: u64,
    /// Module instances shared by at least two goals afterwards.
    pub shared_modules: usize,
}

/// The `k`-th synthetic goal on a chain testbed.
pub fn synthetic_goal<C: ManagementChannel>(t: &ManagedChain<C>, k: usize) -> ConnectivityGoal {
    let mut goal = t.vpn_goal();
    let k = k + 1; // keep 10.0.x.0 (the real customer) out of the space
    goal.src_class = format!("C{k}-S1");
    goal.dst_class = format!("C{k}-S2");
    goal.resolved.remove("C1-S1");
    goal.resolved.remove("C1-S2");
    goal.resolved
        .insert(format!("C{k}-S1"), format!("10.{k}.1.0/24"));
    goal.resolved
        .insert(format!("C{k}-S2"), format!("10.{k}.2.0/24"));
    goal
}

/// Submit `goals` concurrent goals on an `n`-router chain and reconcile
/// them in one pass, measuring the pass.
pub fn multi_goal_run(n: usize, goals: usize) -> MultiGoalReport {
    assert!((1..=200).contains(&goals), "goal count out of range");
    let mut t: ManagedChain<OutOfBandChannel> = managed_chain(n);
    t.discover();
    t.mn.goals.limits = chain_limits(n);
    let ids: Vec<GoalId> = (0..goals)
        .map(|k| t.mn.submit(synthetic_goal(&t, k)))
        .collect();
    t.mn.reset_counters();
    let start = Instant::now();
    let report = t.mn.reconcile();
    let reconcile_wall_us = start.elapsed().as_micros();
    let counters = t.mn.nm_counters();
    let shared_modules =
        t.mn.goals
            .module_users()
            .values()
            .filter(|g| g.len() >= 2)
            .count();
    debug_assert_eq!(ids.len(), goals);
    MultiGoalReport {
        n,
        goals,
        active: report.active(),
        transactions: report.transactions,
        reconcile_wall_us,
        nm_sent: counters.sent_by_category.values().sum(),
        nm_received: counters.received_by_category.values().sum(),
        shared_modules,
    }
}

/// Sanity-check a run: every goal must converge.
pub fn assert_converged(report: &MultiGoalReport) {
    assert_eq!(
        report.active, report.goals,
        "every goal must be active after reconcile: {report:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_goals_converge_on_a_short_chain() {
        let report = multi_goal_run(3, 8);
        assert_converged(&report);
        assert_eq!(report.transactions, 8);
        assert!(report.shared_modules > 0, "goals share the core modules");
    }

    #[test]
    fn reconcile_is_idempotent_across_synthetic_goals() {
        let mut t = managed_chain(3);
        t.discover();
        for k in 0..4 {
            let goal = synthetic_goal(&t, k);
            t.mn.submit(goal);
        }
        let report = t.mn.reconcile();
        assert_eq!(report.active(), 4);
        assert_eq!(t.mn.reconcile().transactions, 0);
    }
}
