//! The closed-loop diagnosis experiment: configure a VPN on an `n`-router
//! chain, inject a fault on the deterministic clock, detect it from the
//! periodic telemetry loop, localise it with the `Diagnoser`, repair it with
//! the `Healer`, and report time-to-detect / time-to-repair in both
//! simulated time and wall-clock.

use conman_core::nm::PathFinderLimits;
use conman_diagnose::{Diagnoser, FaultReport, HealOutcome, Healer, TelemetryCollector};
use conman_modules::managed_chain;
use netsim::clock::SimDuration;
use netsim::fault::{FaultInjector, FaultKind, FaultPlan, Misconfiguration};
use std::time::Instant;

/// Which fault the closed loop injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagnosisScenario {
    /// Flush policy routing on the second core router: the configured
    /// path's transit state vanishes; the NM reroutes the broken segment
    /// over an MPLS LSP (which crosses the router in the label plane).
    /// Needs `n >= 4` — on shorter chains the tunnel endpoints are directly
    /// connected to every transit router and the main table still routes
    /// them.
    MidRouterRoutingLoss,
    /// Corrupt the GRE receive key at the egress router (needs a GRE
    /// primary path, so it only runs on chains small enough to enumerate
    /// one).
    EgressGreKeyCorruption,
    /// Cut the first core link — precisely localisable, not repairable on
    /// a chain.
    CoreLinkCut,
}

impl DiagnosisScenario {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DiagnosisScenario::MidRouterRoutingLoss => "mid-router-routing-loss",
            DiagnosisScenario::EgressGreKeyCorruption => "egress-gre-key-corruption",
            DiagnosisScenario::CoreLinkCut => "core-link-cut",
        }
    }
}

/// What one closed-loop run measured.
#[derive(Debug, Clone)]
pub struct ClosedLoopReport {
    /// Chain size (core routers).
    pub n: usize,
    /// Scenario injected.
    pub scenario: DiagnosisScenario,
    /// Technology of the primary (pre-fault) path.
    pub primary_label: String,
    /// Simulated time from fault injection to failed probe.
    pub detect_sim: SimDuration,
    /// Simulated time from detection to verified repair (0 if unrepaired).
    pub repair_sim: SimDuration,
    /// Wall-clock for the detection loop.
    pub detect_wall_us: u128,
    /// Wall-clock for diagnose + heal.
    pub repair_wall_us: u128,
    /// The diagnosis verdict.
    pub report: FaultReport,
    /// The healing outcome.
    pub heal: HealOutcome,
    /// Telemetry rounds taken before detection.
    pub telemetry_rounds: usize,
}

impl ClosedLoopReport {
    /// One-line rendering for the experiments binary.
    pub fn render(&self) -> String {
        let suspect = self
            .report
            .prime_suspect()
            .map(|s| format!("{:?} ({}%)", s.target, s.confidence_pct))
            .unwrap_or_else(|| "none".to_string());
        format!(
            "n={:<3} {:<26} primary={:<16} detect={} ({} rounds, {}us wall)  repair={} ({}us wall)  healed={} via {:<18} suspect={}",
            self.n,
            self.scenario.name(),
            self.primary_label,
            self.detect_sim,
            self.telemetry_rounds,
            self.detect_wall_us,
            self.repair_sim,
            self.repair_wall_us,
            self.heal.healed(),
            self.heal.replacement_label.as_deref().unwrap_or("-"),
            suspect,
        )
    }
}

/// Traversal limits that stay fast on long chains: enough steps for a
/// 3-per-router path, few enough complete paths to stop the exponential
/// MPLS-segment fan-out.
pub fn chain_limits(n: usize) -> PathFinderLimits {
    PathFinderLimits {
        max_steps: 3 * n + 16,
        max_paths: 32,
    }
}

/// Run the closed loop once and measure it.
pub fn closed_loop_run(n: usize, scenario: DiagnosisScenario) -> ClosedLoopReport {
    let mut t = managed_chain(n);
    t.discover();
    let goal = t.vpn_goal();
    let limits = chain_limits(n);

    // Primary path: for the GRE scenario force GRE-IP (only enumerable on
    // short chains); otherwise take the NM's choice among the bounded
    // enumeration (the direct IP-IP tunnel on chains).
    let paths = t.mn.nm.find_paths_with(&goal, limits);
    let path = match scenario {
        DiagnosisScenario::EgressGreKeyCorruption => paths
            .iter()
            .find(|p| p.technology_label() == "GRE-IP")
            .expect("GRE-IP path enumerable at this n")
            .clone(),
        DiagnosisScenario::MidRouterRoutingLoss => {
            assert!(n >= 4, "routing-loss scenario needs n >= 4");
            paths
                .iter()
                .find(|p| p.technology_label() == "IP-IP")
                .expect("the plain IP-IP tunnel is always enumerated first")
                .clone()
        }
        DiagnosisScenario::CoreLinkCut => {
            t.mn.nm.choose_path(&paths).expect("a path exists").clone()
        }
    };
    let primary_label = path.technology_label();
    t.mn.execute_path(&path, &goal);
    assert!(t.probe(), "primary path must carry traffic");

    // Fault plan on the deterministic clock, due shortly after "now".
    let fault_at = t.mn.net.now() + SimDuration::from_millis(50);
    let kind = match scenario {
        DiagnosisScenario::MidRouterRoutingLoss => {
            FaultKind::Misconfigure(Misconfiguration::FlushPolicyRouting { device: t.core[1] })
        }
        DiagnosisScenario::EgressGreKeyCorruption => {
            FaultKind::Misconfigure(Misconfiguration::CorruptGreKey {
                device: *t.core.last().expect("non-empty chain"),
                delta: 11,
            })
        }
        DiagnosisScenario::CoreLinkCut => {
            FaultKind::LinkCut(t.core_link(0).expect("first core link"))
        }
    };
    let mut injector = FaultInjector::new(FaultPlan::new().at(fault_at, kind));

    // Detection loop: periodic telemetry sampling plus one watchdog probe
    // per round.
    let period = SimDuration::from_millis(100);
    let mut collector = TelemetryCollector::new(path.devices(), period);
    collector.sample(&mut t.mn); // baseline round
    let mut probe = t.probe_fn();
    let wall_detect = Instant::now();
    let mut rounds = 0usize;
    let detect_sim;
    loop {
        t.mn.net.run_for(period);
        injector.apply_due(&mut t.mn.net);
        collector.tick(&mut t.mn);
        rounds += 1;
        if !probe(&mut t.mn) {
            detect_sim = t.mn.net.now().duration_since(fault_at);
            break;
        }
        assert!(rounds < 1000, "fault was never detected");
    }
    let detect_wall_us = wall_detect.elapsed().as_micros();
    let detected_at = t.mn.net.now();

    // Localise and repair.
    let wall_repair = Instant::now();
    let diagnoser = Diagnoser::default();
    let report = diagnoser.diagnose(&mut t.mn, &path, &mut probe);
    let healer = Healer::with_limits(limits);
    let heal = healer.heal(&mut t.mn, &goal, &path, &report, &mut probe);
    let repair_wall_us = wall_repair.elapsed().as_micros();
    let repair_sim = if heal.healed() {
        t.mn.net.now().duration_since(detected_at)
    } else {
        SimDuration::ZERO
    };

    ClosedLoopReport {
        n,
        scenario,
        primary_label,
        detect_sim,
        repair_sim,
        detect_wall_us,
        repair_wall_us,
        report,
        heal,
        telemetry_rounds: collector.rounds.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The flagship scaling scenario detects, localises and repairs on a
    /// short chain.
    #[test]
    fn closed_loop_heals_routing_loss_on_a_short_chain() {
        let r = closed_loop_run(4, DiagnosisScenario::MidRouterRoutingLoss);
        assert!(!r.report.healthy);
        assert!(r.heal.healed(), "{:#?}", r.heal);
        assert!(r.detect_sim > SimDuration::ZERO);
        assert!(r.repair_sim > SimDuration::ZERO);
        assert!(r.telemetry_rounds >= 2);
    }

    /// The link-cut scenario localises precisely and reports honest
    /// non-repairability.
    #[test]
    fn closed_loop_localises_the_unrepairable_cut() {
        let r = closed_loop_run(3, DiagnosisScenario::CoreLinkCut);
        assert!(!r.report.healthy);
        assert!(!r.heal.healed());
        assert!(r.report.prime_suspect().is_some());
    }
}
