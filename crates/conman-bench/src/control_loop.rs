//! The autonomic-loop experiments: ticks-to-detect, ticks-to-repair and
//! management silence on the 10-router chain under live goal fleets.
//!
//! Every goal is backed by a real customer host pair (the fan-out chain),
//! so per-goal health, flow-attributed localisation and repair
//! verification all run on genuine end-to-end traffic.  Two fault shapes
//! are measured:
//!
//! * **Core state loss** — the mid-chain router loses its dynamic state
//!   (label maps *and* policy tables, as after a control-plane reload):
//!   every goal through it degrades at once, whatever technology it rides,
//!   and one batched repair pass must re-plan the whole fleet.
//! * **Per-goal table flush** — exactly one goal's derived route tables
//!   are flushed at the ingress edge (the only per-goal state not redundant
//!   with its siblings').  The other goals keep pushing traffic through the
//!   same devices during diagnosis, so only the per-goal `FlowCounters`
//!   deltas can blame the right device — the scenario that separates
//!   flow-attributed localisation from device-total diagnosis.  The repair
//!   is a *reinstall through* the blamed edge module (no path avoids the
//!   ingress), which restores the flushed tables.

use crate::diagnosis::chain_limits;
use conman_core::nm::{script, GoalId, GoalStatus};
use conman_core::runtime::{ControlLoop, GoalEndpoints, LoopConfig, ManagedNetwork};
use conman_diagnose::AutonomicClient;
use conman_modules::{managed_fanout_chain, ManagedChain};
use mgmt_channel::OutOfBandChannel;
use netsim::fault::{apply_fault, FaultKind, Misconfiguration};
use netsim::route::RouteTableId;
use std::time::Instant;

/// Which fault the loop run injects once the fleet is converged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopScenario {
    /// The mid-chain router loses its dynamic state (MPLS label maps and
    /// policy tables, as after a control-plane reload): every goal
    /// degrades, one batched pass repairs the fleet.
    CoreStateLoss,
    /// Flush one goal's derived route tables at the ingress edge: one
    /// goal degrades, the rest keep carrying traffic — localisation must
    /// stay correct under their background load, and the repair reinstalls
    /// through the blamed edge module.
    PerGoalTableFlush,
}

impl LoopScenario {
    /// Stable name for artefact output.
    pub fn name(self) -> &'static str {
        match self {
            LoopScenario::CoreStateLoss => "core-state-loss",
            LoopScenario::PerGoalTableFlush => "per-goal-table-flush",
        }
    }
}

/// What one autonomic-loop run measured.
#[derive(Debug, Clone)]
pub struct LoopBenchReport {
    /// Chain size (core routers).
    pub n: usize,
    /// Live goals.
    pub goals: usize,
    /// Scenario injected.
    pub scenario: LoopScenario,
    /// Ticks the setup convergence took (includes the submit tick).
    pub setup_ticks: u64,
    /// The maximum NM messages any quiescent tick sent (must be 0: a
    /// converged loop is silent).
    pub quiescent_nm_sent: u64,
    /// Ticks from fault injection to the first health round that degraded
    /// a goal.
    pub ticks_to_detect: u64,
    /// Ticks from fault injection to the first repair pass that left every
    /// goal `Active`.
    pub ticks_to_repair: u64,
    /// Goals the detection tick degraded.
    pub degraded_goals: usize,
    /// Did every diagnosis blame the faulted device?
    pub blamed_correct: bool,
    /// NM messages sent across the detection-to-repair ticks.
    pub repair_nm_sent: u64,
    /// Did the run end converged, with every goal's traffic verified
    /// end to end?
    pub converged: bool,
    /// Wall-clock for the whole detect + repair run, microseconds.
    pub repair_wall_us: u128,
}

/// The derived route-table range of a goal's applied pipe block (via the
/// IP module's authoritative numbering).
fn goal_table_range(
    mn: &ManagedNetwork<OutOfBandChannel>,
    id: GoalId,
) -> (RouteTableId, RouteTableId) {
    let applied = mn
        .goals
        .get(id)
        .and_then(|r| r.applied())
        .expect("goal has an applied plan");
    conman_modules::derived_table_range(applied.pipe_base, script::slot_count(&applied.path))
}

/// Run the autonomic loop once: converge `goals` goals on an `n`-router
/// fan-out chain, verify management silence, inject the scenario's fault,
/// and measure detection and repair in ticks.
pub fn loop_run(n: usize, goals: usize, scenario: LoopScenario) -> LoopBenchReport {
    let mut t: ManagedChain<OutOfBandChannel> = managed_fanout_chain(n, goals);
    t.discover();
    t.mn.goals.limits = chain_limits(n);

    let mut cl = ControlLoop::new(&t.mn, LoopConfig::default())
        .with_client(Box::new(AutonomicClient::new(2)));
    let mut ids = Vec::with_capacity(goals);
    for k in 0..goals {
        let (src, dst, dst_ip) = t.fanout_probe(k);
        let id = t.mn.submit(t.fanout_goal(k));
        cl.track(id, GoalEndpoints { src, dst, dst_ip });
        ids.push(id);
    }

    // ---- Setup: converge the fleet with zero operator calls. ----------
    let setup = cl.run_until_converged(&mut t.mn, 16);
    assert!(setup.converged, "fleet must converge during setup");
    let setup_ticks = setup.ticks.len() as u64;

    // ---- Quiescence: a converged loop is silent. ----------------------
    let mut quiescent_nm_sent = 0;
    for _ in 0..3 {
        let tick = cl.tick(&mut t.mn);
        quiescent_nm_sent = quiescent_nm_sent.max(tick.nm_sent);
    }

    // ---- Fault. -------------------------------------------------------
    // The fleet fault hits a transit router (repair routes around it); the
    // per-goal fault flushes one goal's derived tables at the *ingress*
    // edge, the only place per-goal state is not redundant with its
    // siblings' (all tunnels share the transit endpoints) — repaired by
    // reinstalling through the blamed edge module.
    let faulted = match scenario {
        LoopScenario::CoreStateLoss => t.core[1],
        LoopScenario::PerGoalTableFlush => t.core[0],
    };
    match scenario {
        LoopScenario::CoreStateLoss => {
            apply_fault(
                &mut t.mn.net,
                FaultKind::Misconfigure(Misconfiguration::ClearMplsState { device: faulted }),
            );
            apply_fault(
                &mut t.mn.net,
                FaultKind::Misconfigure(Misconfiguration::FlushPolicyRouting { device: faulted }),
            );
        }
        LoopScenario::PerGoalTableFlush => {
            let (first, last) = goal_table_range(&t.mn, ids[0]);
            apply_fault(
                &mut t.mn.net,
                FaultKind::Misconfigure(Misconfiguration::FlushRouteTables {
                    device: faulted,
                    first,
                    last,
                }),
            );
        }
    }
    let fault_tick = cl.ticks();

    // ---- Detect + repair, autonomically. ------------------------------
    let wall = Instant::now();
    let run = cl.run_until_converged(&mut t.mn, 12);
    let repair_wall_us = wall.elapsed().as_micros();
    let detect = run.first_detection().unwrap_or(0);
    let repaired = run.first_repair().unwrap_or(0);
    let detect_report = run.ticks.iter().find(|tk| tk.tick == detect);
    let degraded_goals = detect_report.map(|tk| tk.degraded.len()).unwrap_or(0);
    let blamed_correct = detect_report.is_some_and(|tk| {
        !tk.diagnosed.is_empty() && tk.diagnosed.iter().all(|(_, d)| d.blamed == Some(faulted))
    });
    let repair_nm_sent = run.ticks.iter().map(|tk| tk.nm_sent).sum();
    let all_active = t.mn.goals.iter().all(|r| r.status == GoalStatus::Active);
    let traffic_ok = (0..goals).all(|k| t.probe_pair(k));

    LoopBenchReport {
        n,
        goals,
        scenario,
        setup_ticks,
        quiescent_nm_sent,
        ticks_to_detect: detect.saturating_sub(fault_tick),
        ticks_to_repair: repaired.saturating_sub(fault_tick),
        degraded_goals,
        blamed_correct,
        repair_nm_sent,
        converged: run.converged && all_active && traffic_ok,
        repair_wall_us,
    }
}

/// Sanity-check a run the way CI's smoke pass does: converged, silent when
/// quiescent, fault blamed on the right device, repair within budget.
pub fn assert_loop_healthy(report: &LoopBenchReport, max_repair_ticks: u64) {
    assert!(report.converged, "loop run must converge: {report:?}");
    assert_eq!(
        report.quiescent_nm_sent, 0,
        "a converged loop must send zero NM messages per tick: {report:?}"
    );
    assert!(
        report.blamed_correct,
        "diagnosis must blame the faulted device: {report:?}"
    );
    assert!(
        report.ticks_to_detect >= 1 && report.ticks_to_detect <= max_repair_ticks,
        "detection outside tick budget: {report:?}"
    );
    assert!(
        report.ticks_to_repair >= report.ticks_to_detect
            && report.ticks_to_repair <= max_repair_ticks,
        "repair outside tick budget: {report:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_fault_detects_and_repairs_within_budget_on_a_short_chain() {
        let report = loop_run(4, 3, LoopScenario::CoreStateLoss);
        assert_loop_healthy(&report, 3);
        assert_eq!(report.degraded_goals, 3, "every goal crossed the dead core");
    }

    #[test]
    fn per_goal_fault_is_localised_under_background_traffic() {
        let report = loop_run(4, 4, LoopScenario::PerGoalTableFlush);
        assert_loop_healthy(&report, 3);
        assert_eq!(
            report.degraded_goals, 1,
            "only the faulted goal may degrade: {report:?}"
        );
    }
}
