//! The autonomic-loop experiments: ticks-to-detect, ticks-to-repair and
//! management silence under live goal fleets — on the 10-router chain and
//! on the multipath mesh.
//!
//! Every goal is backed by a real customer host pair (the fan-out
//! topologies), so per-goal health, flow-attributed localisation and repair
//! verification all run on genuine end-to-end traffic.  Four fault shapes
//! are measured:
//!
//! * **Core state loss** (chain) — the mid-chain router loses its dynamic
//!   state (label maps *and* policy tables, as after a control-plane
//!   reload): every goal through it degrades at once and one batched repair
//!   pass must re-plan the whole fleet.
//! * **Per-goal table flush** (chain) — exactly one goal's derived route
//!   tables are flushed at the ingress edge.  The other goals keep pushing
//!   traffic through the same devices during diagnosis, so only the
//!   per-goal `FlowCounters` deltas can blame the right device.
//! * **Mesh link cut / link loss** (mesh) — a core link of the applied
//!   path is cut (or spikes to 100% loss while staying administratively
//!   up).  Diagnosis must blame the *link*, and because the 2×k mesh keeps
//!   a redundant row, the batched pass must reroute the whole fleet in
//!   **one** repair attempt — no repair-budget burn, no goal ever `Failed`.
//!   This is the link-suspect-aware-planning scenario a chain cannot
//!   express.
//!
//! The chain rows also run over the **in-band** management channel, whose
//! flooded telemetry during faulty ticks gets its own message-budget row in
//! `BENCH_loop.json`.

use crate::diagnosis::chain_limits;
use conman_core::nm::{script, GoalId, GoalStatus, PathFinderLimits};
use conman_core::runtime::{
    ControlLoop, GoalEndpoints, LoopConfig, LoopReport, ManagedNetwork, ReconcileAction,
};
use conman_diagnose::AutonomicClient;
use conman_modules::{
    managed_fanout_chain, managed_fanout_chain_with, managed_mesh_fanout, ManagedChain, ManagedMesh,
};
use conman_obs::Recorder;
use mgmt_channel::{InBandChannel, ManagementChannel, OutOfBandChannel};
use netsim::device::DeviceId;
use netsim::fault::{apply_fault, FaultKind, Misconfiguration};
use netsim::route::RouteTableId;
use serde::Serialize;
use std::time::Instant;

/// Which fault the loop run injects once the fleet is converged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopScenario {
    /// Chain: the mid-chain router loses its dynamic state (MPLS label maps
    /// and policy tables, as after a control-plane reload): every goal
    /// degrades, one batched pass repairs the fleet.
    CoreStateLoss,
    /// Chain: flush one goal's derived route tables at the ingress edge:
    /// one goal degrades, the rest keep carrying traffic — localisation
    /// must stay correct under their background load, and the repair
    /// reinstalls through the blamed edge module.
    PerGoalTableFlush,
    /// Mesh: administratively cut a core link of the applied path.  The
    /// diagnosis must blame the link and the batched pass must reroute the
    /// whole fleet onto the redundant row in one repair attempt.
    MeshLinkCut,
    /// Mesh: 100% loss spike on a core link of the applied path (the link
    /// stays administratively up, so only counters reveal it).  Same
    /// one-pass-reroute obligation as the cut.
    MeshLinkLoss,
}

impl LoopScenario {
    /// Stable name for artefact output.
    pub fn name(self) -> &'static str {
        match self {
            LoopScenario::CoreStateLoss => "core-state-loss",
            LoopScenario::PerGoalTableFlush => "per-goal-table-flush",
            LoopScenario::MeshLinkCut => "mesh-link-cut",
            LoopScenario::MeshLinkLoss => "mesh-link-loss",
        }
    }

    /// Does this scenario run on the multipath mesh?
    pub fn on_mesh(self) -> bool {
        matches!(self, LoopScenario::MeshLinkCut | LoopScenario::MeshLinkLoss)
    }
}

impl Serialize for LoopScenario {
    fn serialize(&self) -> serde::Value {
        serde::Value::String(self.name().to_string())
    }
}

/// What one autonomic-loop run measured.
#[derive(Debug, Clone, Serialize)]
pub struct LoopBenchReport {
    /// Topology family the run used (`chain` or `mesh`).
    pub topology: &'static str,
    /// Management channel the run used (`oob` or `in-band`).
    pub channel: &'static str,
    /// Chain size (core routers) or mesh stages.
    pub n: usize,
    /// Live goals.
    pub goals: usize,
    /// Scenario injected.
    pub scenario: LoopScenario,
    /// Ticks the setup convergence took (includes the submit tick).
    pub setup_ticks: u64,
    /// The maximum NM messages any quiescent tick sent (must be 0: a
    /// converged loop is silent).
    pub quiescent_nm_sent: u64,
    /// Ticks from fault injection to the first health round that degraded
    /// a goal.
    pub ticks_to_detect: u64,
    /// Ticks from fault injection to the first repair pass that left every
    /// goal `Active`.
    pub ticks_to_repair: u64,
    /// Goals the detection tick degraded.
    pub degraded_goals: usize,
    /// Did every diagnosis blame the faulted component — the device for the
    /// chain scenarios, the *link* (not just a device) for the mesh ones?
    pub blamed_correct: bool,
    /// Repair passes that actually touched a goal across the
    /// detect-to-repair run.  A one-pass reroute shows `1`.
    pub repair_passes: u64,
    /// Failed repair attempts (`ProbeFailed` / `ExecuteFailed` /
    /// `PlanFailed` outcomes) across the run — the repair-budget burn.  A
    /// link-suspect-aware reroute shows `0`; the pre-link-exclusion planner
    /// burned one per goal per pass re-planning over the cut link.
    pub failed_attempts: u64,
    /// NM messages sent across the detection-to-repair ticks.
    pub repair_nm_sent: u64,
    /// Link-level frames delivered across the detection-to-repair ticks —
    /// the wire cost.  Out-of-band runs only carry data-plane (probe)
    /// frames here; the in-band rows additionally pay for every flooded
    /// copy of every management message, which is exactly the budget the
    /// in-band row exists to track.
    pub repair_frames: u64,
    /// Did the run end converged, with every goal's traffic verified
    /// end to end?
    pub converged: bool,
    /// Wall-clock for the whole detect + repair run, microseconds.
    pub repair_wall_us: u64,
}

/// Path-finder limits for the 2×k mesh (longer module paths than a chain of
/// the same nominal size, and genuinely alternative routes worth keeping in
/// the enumeration budget).
pub fn mesh_limits(k: usize) -> PathFinderLimits {
    PathFinderLimits {
        max_steps: 3 * (k + 2) + 16,
        max_paths: 64,
    }
}

/// The derived route-table range of a goal's applied pipe block (via the
/// IP module's authoritative numbering).
fn goal_table_range<C: ManagementChannel>(
    mn: &ManagedNetwork<C>,
    id: GoalId,
) -> (RouteTableId, RouteTableId) {
    let applied = mn
        .goals
        .get(id)
        .and_then(|r| r.applied())
        .expect("goal has an applied plan");
    conman_modules::derived_table_range(applied.pipe_base, script::slot_count(&applied.path))
}

/// Detect/repair metrics shared by the chain and mesh runs, derived from
/// the post-fault tick reports.
struct RunMetrics {
    detect: u64,
    repaired: u64,
    degraded_goals: usize,
    repair_passes: u64,
    failed_attempts: u64,
    repair_nm_sent: u64,
}

fn run_metrics(run: &LoopReport) -> RunMetrics {
    let detect = run.first_detection().unwrap_or(0);
    let repaired = run.first_repair().unwrap_or(0);
    let degraded_goals = run
        .ticks
        .iter()
        .find(|tk| tk.tick == detect)
        .map(|tk| tk.degraded.len())
        .unwrap_or(0);
    let repair_passes = run
        .ticks
        .iter()
        .filter(|tk| {
            tk.repair.as_ref().is_some_and(|r| {
                r.outcomes
                    .iter()
                    .any(|o| o.action != ReconcileAction::Unchanged)
            })
        })
        .count() as u64;
    let failed_attempts = run
        .ticks
        .iter()
        .filter_map(|tk| tk.repair.as_ref())
        .flat_map(|r| r.outcomes.iter())
        .filter(|o| {
            matches!(
                o.action,
                ReconcileAction::ProbeFailed
                    | ReconcileAction::ExecuteFailed
                    | ReconcileAction::PlanFailed
            )
        })
        .count() as u64;
    RunMetrics {
        detect,
        repaired,
        degraded_goals,
        repair_passes,
        failed_attempts,
        repair_nm_sent: run.ticks.iter().map(|tk| tk.nm_sent).sum(),
    }
}

/// Run the autonomic loop once on the fan-out chain over the out-of-band
/// channel: converge `goals` goals on an `n`-router chain, verify management
/// silence, inject the scenario's fault, and measure detection and repair
/// in ticks.
pub fn loop_run(n: usize, goals: usize, scenario: LoopScenario) -> LoopBenchReport {
    let mut t = managed_fanout_chain(n, goals);
    chain_loop_run(&mut t, n, goals, scenario, "oob")
}

/// [`loop_run`] with an enabled flight recorder: the same chain scenario,
/// but every span of the run (setup convergence included) lands in the
/// trace journal.  Returns the report plus the journal dump, so the
/// harness can lint the journal with the conformance checker and persist
/// it as a CI artefact.
pub fn recorded_loop_run(
    n: usize,
    goals: usize,
    scenario: LoopScenario,
) -> (LoopBenchReport, String) {
    let mut t = managed_fanout_chain(n, goals);
    t.mn.set_recorder(Recorder::new());
    let report = chain_loop_run(&mut t, n, goals, scenario, "oob");
    let journal = t.mn.recorder.journal_json();
    (report, journal)
}

/// [`loop_run`] over the **in-band** flooding channel — the message-budget
/// row: quiescent ticks must still be silent, and `repair_nm_sent` records
/// what the flooded telemetry and repair transactions cost during the
/// faulty ticks.
pub fn loop_run_inband(n: usize, goals: usize, scenario: LoopScenario) -> LoopBenchReport {
    let mut t = managed_fanout_chain_with(n, goals, InBandChannel::new());
    chain_loop_run(&mut t, n, goals, scenario, "in-band")
}

fn chain_loop_run<C: ManagementChannel>(
    t: &mut ManagedChain<C>,
    n: usize,
    goals: usize,
    scenario: LoopScenario,
    channel: &'static str,
) -> LoopBenchReport {
    assert!(
        !scenario.on_mesh(),
        "{} runs on the mesh (use mesh_loop_run)",
        scenario.name()
    );
    t.discover();
    t.mn.goals.limits = chain_limits(n);

    let mut cl = ControlLoop::new(&t.mn, LoopConfig::default())
        .with_client(Box::new(AutonomicClient::new(2)));
    let mut ids = Vec::with_capacity(goals);
    for k in 0..goals {
        let (src, dst, dst_ip) = t.fanout_probe(k);
        let id = t.mn.submit(t.fanout_goal(k));
        cl.track(id, GoalEndpoints { src, dst, dst_ip });
        ids.push(id);
    }

    // ---- Setup: converge the fleet with zero operator calls. ----------
    let setup = cl.run_until_converged(&mut t.mn, 16);
    assert!(setup.converged, "fleet must converge during setup");
    let setup_ticks = setup.ticks.len() as u64;

    // ---- Quiescence: a converged loop is silent. ----------------------
    let mut quiescent_nm_sent = 0;
    for _ in 0..3 {
        let tick = cl.tick(&mut t.mn);
        quiescent_nm_sent = quiescent_nm_sent.max(tick.nm_sent);
    }

    // ---- Fault. -------------------------------------------------------
    // The fleet fault hits a transit router (repair routes around it); the
    // per-goal fault flushes one goal's derived tables at the *ingress*
    // edge, the only place per-goal state is not redundant with its
    // siblings' (all tunnels share the transit endpoints) — repaired by
    // reinstalling through the blamed edge module.
    let faulted = match scenario {
        LoopScenario::CoreStateLoss => t.core[1],
        LoopScenario::PerGoalTableFlush => t.core[0],
        _ => unreachable!("mesh scenarios rejected above"),
    };
    match scenario {
        LoopScenario::CoreStateLoss => {
            apply_fault(
                &mut t.mn.net,
                FaultKind::Misconfigure(Misconfiguration::ClearMplsState { device: faulted }),
            );
            apply_fault(
                &mut t.mn.net,
                FaultKind::Misconfigure(Misconfiguration::FlushPolicyRouting { device: faulted }),
            );
        }
        LoopScenario::PerGoalTableFlush => {
            let (first, last) = goal_table_range(&t.mn, ids[0]);
            apply_fault(
                &mut t.mn.net,
                FaultKind::Misconfigure(Misconfiguration::FlushRouteTables {
                    device: faulted,
                    first,
                    last,
                }),
            );
        }
        _ => unreachable!(),
    }
    let fault_tick = cl.ticks();

    // ---- Detect + repair, autonomically. ------------------------------
    let wall = Instant::now();
    let run = cl.run_until_converged(&mut t.mn, 12);
    let repair_wall_us = wall.elapsed().as_micros() as u64;
    // The wire cost now comes from the tick reports themselves (each tick
    // carries its frame budget) instead of a hand-diffed network counter.
    let repair_frames = run.frames();
    let m = run_metrics(&run);
    let detect_report = run.ticks.iter().find(|tk| tk.tick == m.detect);
    let blamed_correct = detect_report.is_some_and(|tk| {
        !tk.diagnosed.is_empty() && tk.diagnosed.iter().all(|(_, d)| d.blamed == Some(faulted))
    });
    let all_active = t.mn.goals.iter().all(|r| r.status == GoalStatus::Active);
    let traffic_ok = (0..goals).all(|k| t.probe_pair(k));

    LoopBenchReport {
        topology: "chain",
        channel,
        n,
        goals,
        scenario,
        setup_ticks,
        quiescent_nm_sent,
        ticks_to_detect: m.detect.saturating_sub(fault_tick),
        ticks_to_repair: m.repaired.saturating_sub(fault_tick),
        degraded_goals: m.degraded_goals,
        blamed_correct,
        repair_passes: m.repair_passes,
        failed_attempts: m.failed_attempts,
        repair_nm_sent: m.repair_nm_sent,
        repair_frames,
        converged: run.converged && all_active && traffic_ok,
        repair_wall_us,
    }
}

/// Run the autonomic loop once on the 2×k multipath mesh: converge `goals`
/// goals, cut (or blackhole) a core link of the applied path, and measure
/// the link-suspect-aware reroute — the diagnosis must blame the *link* and
/// the batched pass must move the whole fleet onto the redundant row in one
/// repair attempt.
pub fn mesh_loop_run(k: usize, goals: usize, scenario: LoopScenario) -> LoopBenchReport {
    let mut t: ManagedMesh<OutOfBandChannel> = managed_mesh_fanout(k, goals);
    mesh_loop_run_with(&mut t, k, goals, scenario)
}

/// [`mesh_loop_run`] with an enabled flight recorder, returning the report
/// plus the full-run journal dump for conformance linting.
pub fn recorded_mesh_loop_run(
    k: usize,
    goals: usize,
    scenario: LoopScenario,
) -> (LoopBenchReport, String) {
    let mut t: ManagedMesh<OutOfBandChannel> = managed_mesh_fanout(k, goals);
    t.mn.set_recorder(Recorder::new());
    let report = mesh_loop_run_with(&mut t, k, goals, scenario);
    let journal = t.mn.recorder.journal_json();
    (report, journal)
}

fn mesh_loop_run_with(
    t: &mut ManagedMesh<OutOfBandChannel>,
    k: usize,
    goals: usize,
    scenario: LoopScenario,
) -> LoopBenchReport {
    assert!(
        scenario.on_mesh(),
        "{} runs on the chain (use loop_run)",
        scenario.name()
    );
    t.discover();
    t.mn.goals.limits = mesh_limits(k);

    let mut cl = ControlLoop::new(&t.mn, LoopConfig::default())
        .with_client(Box::new(AutonomicClient::new(2)));
    let mut ids = Vec::with_capacity(goals);
    for g in 0..goals {
        let (src, dst, dst_ip) = t.fanout_probe(g);
        let id = t.mn.submit(t.fanout_goal(g));
        cl.track(id, GoalEndpoints { src, dst, dst_ip });
        ids.push(id);
    }

    let setup = cl.run_until_converged(&mut t.mn, 16);
    assert!(setup.converged, "fleet must converge during setup");
    let setup_ticks = setup.ticks.len() as u64;

    let mut quiescent_nm_sent = 0;
    for _ in 0..3 {
        let tick = cl.tick(&mut t.mn);
        quiescent_nm_sent = quiescent_nm_sent.max(tick.nm_sent);
    }

    // ---- Fault: kill the first core-to-core link of the applied path. --
    let hop = t
        .applied_core_hop(ids[0])
        .expect("the applied path crosses the core");
    let link = t.link(hop.0, hop.1).expect("the hop is a physical link");
    match scenario {
        LoopScenario::MeshLinkCut => apply_fault(&mut t.mn.net, FaultKind::LinkCut(link)),
        LoopScenario::MeshLinkLoss => apply_fault(
            &mut t.mn.net,
            FaultKind::LossSpike {
                link,
                loss_ppm: 1_000_000,
            },
        ),
        _ => unreachable!(),
    }
    let fault_tick = cl.ticks();

    let wall = Instant::now();
    let run = cl.run_until_converged(&mut t.mn, 12);
    let repair_wall_us = wall.elapsed().as_micros() as u64;
    let repair_frames = run.frames();
    let m = run_metrics(&run);
    let detect_report = run.ticks.iter().find(|tk| tk.tick == m.detect);
    // The mesh bar is higher than the chain's: the *link* must be blamed,
    // not merely some device near it.
    let want_link = if hop.0 <= hop.1 {
        (hop.0, hop.1)
    } else {
        (hop.1, hop.0)
    };
    let blamed_correct = detect_report.is_some_and(|tk| {
        !tk.diagnosed.is_empty()
            && tk
                .diagnosed
                .iter()
                .all(|(_, d)| d.blamed_link == Some(want_link))
    });
    let all_active = t.mn.goals.iter().all(|r| r.status == GoalStatus::Active);
    // Every repaired path must genuinely avoid the dead link.
    let avoids_link = |devices: &[DeviceId]| {
        !devices
            .windows(2)
            .any(|w| (w[0], w[1]) == hop || (w[1], w[0]) == hop)
    };
    let rerouted = ids.iter().all(|id| {
        t.mn.goals
            .get(*id)
            .and_then(|r| r.applied())
            .is_some_and(|a| avoids_link(&a.path.devices()))
    });
    let traffic_ok = (0..goals).all(|g| t.probe_pair(g));

    LoopBenchReport {
        topology: "mesh",
        channel: "oob",
        n: k,
        goals,
        scenario,
        setup_ticks,
        quiescent_nm_sent,
        ticks_to_detect: m.detect.saturating_sub(fault_tick),
        ticks_to_repair: m.repaired.saturating_sub(fault_tick),
        degraded_goals: m.degraded_goals,
        blamed_correct,
        repair_passes: m.repair_passes,
        failed_attempts: m.failed_attempts,
        repair_nm_sent: m.repair_nm_sent,
        repair_frames,
        converged: run.converged && all_active && rerouted && traffic_ok,
        repair_wall_us,
    }
}

/// Sanity-check a run the way CI's smoke pass does: converged, silent when
/// quiescent, fault blamed on the right component, repair within budget.
pub fn assert_loop_healthy(report: &LoopBenchReport, max_repair_ticks: u64) {
    assert!(report.converged, "loop run must converge: {report:?}");
    assert_eq!(
        report.quiescent_nm_sent, 0,
        "a converged loop must send zero NM messages per tick: {report:?}"
    );
    assert!(
        report.blamed_correct,
        "diagnosis must blame the faulted component: {report:?}"
    );
    assert!(
        report.ticks_to_detect >= 1 && report.ticks_to_detect <= max_repair_ticks,
        "detection outside tick budget: {report:?}"
    );
    assert!(
        report.ticks_to_repair >= report.ticks_to_detect
            && report.ticks_to_repair <= max_repair_ticks,
        "repair outside tick budget: {report:?}"
    );
}

/// The mesh smoke gate: on top of [`assert_loop_healthy`], the repair must
/// be a **one-pass reroute** — exactly one batched pass touched the fleet
/// and zero attempts failed, so the repair budget was never burned and no
/// goal ever parked `Failed`.  (The pre-link-exclusion planner failed this:
/// it re-planned over the cut link, burned `max_repair_attempts` and parked
/// the goals.)
pub fn assert_one_pass_reroute(report: &LoopBenchReport) {
    assert_loop_healthy(report, 3);
    assert_eq!(
        report.repair_passes, 1,
        "the reroute must land in one batched pass: {report:?}"
    );
    assert_eq!(
        report.failed_attempts, 0,
        "a link-suspect-aware reroute burns no repair budget: {report:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_fault_detects_and_repairs_within_budget_on_a_short_chain() {
        let report = loop_run(4, 3, LoopScenario::CoreStateLoss);
        assert_loop_healthy(&report, 3);
        assert_eq!(report.degraded_goals, 3, "every goal crossed the dead core");
    }

    #[test]
    fn per_goal_fault_is_localised_under_background_traffic() {
        let report = loop_run(4, 4, LoopScenario::PerGoalTableFlush);
        assert_loop_healthy(&report, 3);
        assert_eq!(
            report.degraded_goals, 1,
            "only the faulted goal may degrade: {report:?}"
        );
    }

    #[test]
    fn mesh_link_cut_is_a_one_pass_reroute() {
        let report = mesh_loop_run(2, 3, LoopScenario::MeshLinkCut);
        assert_one_pass_reroute(&report);
        assert_eq!(report.degraded_goals, 3, "every goal crossed the cut link");
    }

    #[test]
    fn mesh_link_loss_is_a_one_pass_reroute() {
        let report = mesh_loop_run(2, 3, LoopScenario::MeshLinkLoss);
        assert_one_pass_reroute(&report);
    }

    #[test]
    fn in_band_loop_stays_silent_when_quiescent_and_pays_its_flood_in_frames() {
        let oob = loop_run(4, 3, LoopScenario::CoreStateLoss);
        let inband = loop_run_inband(4, 3, LoopScenario::CoreStateLoss);
        assert_loop_healthy(&inband, 3);
        assert!(
            inband.repair_nm_sent > 0,
            "the faulty ticks carry the repair message budget: {inband:?}"
        );
        assert!(
            inband.repair_frames > oob.repair_frames,
            "flooding the same NM messages over real links must cost extra \
             frames: in-band {} vs oob {}",
            inband.repair_frames,
            oob.repair_frames
        );
    }
}
