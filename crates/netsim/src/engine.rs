//! The forwarding engine: how a device processes a received frame.
//!
//! This is the simulated stand-in for the Linux 2.6.14 data plane the paper's
//! protocol modules wrapped.  It implements:
//!
//! * Ethernet reception/transmission with ARP resolution,
//! * IPv4 local delivery, forwarding (with policy routing), TTL and filters,
//! * GRE and IP-IP tunnel encapsulation/decapsulation (keys, sequence
//!   numbers, checksums),
//! * MPLS label push/swap/pop via ILM/NHLFE/XC tables,
//! * 802.1Q VLAN bridging with access, trunk and dot1q-tunnel (Q-in-Q) ports,
//! * ICMP echo so CONMan module self-tests can ping across a configured path.

use crate::arp::{ArpCache, ArpOp, ArpPacket, PendingPacket};
use crate::config::{SwitchPortMode, TunnelMode};
use crate::device::{Delivered, Device, DeviceRole, EngineOutput, MgmtFrame, PortId};
use crate::ether::{EtherType, EthernetFrame};
use crate::gre::{GreHeader, GRE_PROTO_IPV4};
use crate::icmp::{IcmpKind, IcmpMessage};
use crate::ipv4::{Ipv4Header, Ipv4Proto};
use crate::mac::MacAddr;
use crate::mpls::{self, LabelOp, LabelStackEntry};
use crate::route::{IncomingIf, RouteTarget};
use crate::stats::DropReason;
use crate::udp::UdpHeader;
use crate::vlan;
use std::net::Ipv4Addr;

/// Maximum tunnel-in-tunnel nesting the engine will encapsulate before
/// declaring a configuration loop.
const MAX_ENCAP_DEPTH: u8 = 8;

impl Device {
    /// Process a frame received on `port` and return the frames to transmit
    /// in response.
    pub fn handle_frame(&mut self, port: PortId, bytes: &[u8]) -> EngineOutput {
        let mut out = EngineOutput::default();
        let frame = match EthernetFrame::decode(bytes) {
            Ok(f) => f,
            Err(_) => {
                self.stats.port(port.0).rx(bytes.len());
                self.stats.record_drop(DropReason::Malformed);
                self.stats.port(port.0).drop_packet();
                return out;
            }
        };

        // Management-channel frames bypass the data plane entirely on every
        // device role: they are queued for the management agent.  They are
        // also invisible to the data-plane counters — otherwise the in-band
        // channel's own flooding would mask the very counter deltas the
        // diagnosis layer compares.
        if frame.ethertype == EtherType::Management {
            self.mgmt_rx.push_back(MgmtFrame {
                port: Some(port),
                src_mac: frame.src,
                payload: frame.payload,
            });
            return out;
        }
        self.stats.port(port.0).rx(bytes.len());

        match self.role {
            DeviceRole::Switch => self.bridge_input(port, &frame, &mut out),
            DeviceRole::Router | DeviceRole::Host => self.l3_input(port, &frame, &mut out),
        }
        out
    }

    /// Originate an IPv4 packet from this device (application traffic,
    /// self-tests).  The source address is chosen from the egress interface
    /// unless `src` is given.
    pub fn originate_ip(
        &mut self,
        src: Option<Ipv4Addr>,
        dst: Ipv4Addr,
        proto: Ipv4Proto,
        payload: Vec<u8>,
    ) -> EngineOutput {
        let mut out = EngineOutput::default();
        self.stats.originated += 1;
        let src = src.unwrap_or_else(|| self.default_source_for(dst));
        let header = Ipv4Header::new(src, dst, proto);
        self.ip_output(IncomingIf::Local, header, payload, 0, &mut out);
        out
    }

    /// Originate a UDP datagram.
    pub fn originate_udp(
        &mut self,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
    ) -> EngineOutput {
        let datagram = UdpHeader::new(src_port, dst_port).encode_datagram(payload);
        self.originate_ip(None, dst, Ipv4Proto::Udp, datagram)
    }

    /// Originate an ICMP echo request (the self-test primitive).
    pub fn originate_ping(
        &mut self,
        dst: Ipv4Addr,
        identifier: u16,
        sequence: u16,
    ) -> EngineOutput {
        let msg = IcmpMessage::echo_request(identifier, sequence, b"conman-self-test".to_vec());
        self.originate_ip(None, dst, Ipv4Proto::Icmp, msg.encode())
    }

    /// Transmit a raw frame out of a specific port (used by the in-band
    /// management channel, which floods frames without consulting the data
    /// plane).
    pub fn originate_frame(&mut self, port: PortId, frame: &EthernetFrame) -> EngineOutput {
        let mut out = EngineOutput::default();
        self.transmit(port, frame.encode(), &mut out);
        out
    }

    fn default_source_for(&self, dst: Ipv4Addr) -> Ipv4Addr {
        if let Some((_, cidr)) = self.config.port_for_subnet(dst) {
            return cidr.addr;
        }
        self.config
            .local_addresses()
            .first()
            .copied()
            .unwrap_or(Ipv4Addr::UNSPECIFIED)
    }

    // ------------------------------------------------------------------
    // Layer 3 (hosts and routers)
    // ------------------------------------------------------------------

    fn l3_input(&mut self, port: PortId, frame: &EthernetFrame, out: &mut EngineOutput) {
        let our_mac = self.port_mac(port);
        if frame.dst != our_mac && !frame.dst.is_broadcast() {
            self.stats.record_drop(DropReason::NotForUs);
            return;
        }
        match frame.ethertype {
            EtherType::Arp => self.arp_input(port, &frame.payload, out),
            EtherType::Ipv4 => self.ip_input(IncomingIf::Port(port.0), &frame.payload, out),
            EtherType::Mpls => self.mpls_input(port, &frame.payload, out),
            EtherType::Vlan => {
                // Routers in this simulator do not terminate VLAN trunks.
                self.stats.record_drop(DropReason::Malformed);
            }
            EtherType::Management => unreachable!("handled in handle_frame"),
            EtherType::Other(_) => self.stats.record_drop(DropReason::Malformed),
        }
    }

    fn arp_input(&mut self, port: PortId, payload: &[u8], out: &mut EngineOutput) {
        let Ok(packet) = ArpPacket::decode(payload) else {
            self.stats.record_drop(DropReason::Malformed);
            return;
        };
        // Learn the sender mapping opportunistically, releasing any parked
        // packets.
        let released = self.arp.insert(packet.sender_ip, packet.sender_mac);
        for pending in released {
            self.transmit_resolved(pending, packet.sender_mac, out);
        }
        if packet.op == ArpOp::Request && self.config.is_local_address(packet.target_ip) {
            let our_mac = self.port_mac(port);
            let reply = packet.reply_to(our_mac);
            let frame =
                EthernetFrame::new(packet.sender_mac, our_mac, EtherType::Arp, reply.encode());
            self.transmit(port, frame.encode(), out);
        }
    }

    fn transmit_resolved(&mut self, pending: PendingPacket, mac: MacAddr, out: &mut EngineOutput) {
        let port = PortId(pending.port);
        let our_mac = self.port_mac(port);
        let frame = EthernetFrame::new(
            mac,
            our_mac,
            EtherType::from_u16(pending.ethertype),
            pending.bytes,
        );
        self.transmit(port, frame.encode(), out);
    }

    fn ip_input(&mut self, iif: IncomingIf, packet: &[u8], out: &mut EngineOutput) {
        let (header, payload) = match Ipv4Header::decode_packet(packet) {
            Ok(v) => v,
            Err(_) => {
                self.stats.record_drop(DropReason::Malformed);
                return;
            }
        };
        // Filters are evaluated on every IP packet the device handles.
        let dst_port = transport_dst_port(&header, &payload);
        if !self
            .config
            .filters_allow(header.src, header.dst, header.protocol, dst_port)
        {
            self.stats.record_drop(DropReason::Filtered);
            return;
        }
        if self.config.is_local_address(header.dst) {
            self.local_input(iif, header, payload, out);
        } else {
            self.ip_forward(iif, header, payload, out);
        }
    }

    fn ip_forward(
        &mut self,
        iif: IncomingIf,
        mut header: Ipv4Header,
        payload: Vec<u8>,
        out: &mut EngineOutput,
    ) {
        if !self.config.ip_forwarding {
            self.stats.record_drop(DropReason::ForwardingDisabled);
            return;
        }
        if header.ttl <= 1 {
            self.stats.record_drop(DropReason::TtlExpired);
            return;
        }
        header.ttl -= 1;
        // Count the forward only if the packet actually left the device (or
        // entered a tunnel that emitted it): a transit packet that dies on
        // route lookup is a drop, not a forward — per-goal flow accounting
        // relies on the two being mutually exclusive.
        if self.ip_output(iif, header, payload, 0, out) {
            self.stats.forwarded += 1;
        }
    }

    fn local_input(
        &mut self,
        iif: IncomingIf,
        header: Ipv4Header,
        payload: Vec<u8>,
        out: &mut EngineOutput,
    ) {
        match header.protocol {
            Ipv4Proto::Gre => self.gre_decap(header, &payload, out),
            Ipv4Proto::IpIp => self.ipip_decap(header, &payload, out),
            Ipv4Proto::Icmp => self.icmp_input(header, &payload, out),
            Ipv4Proto::Udp => {
                match UdpHeader::decode_datagram(&payload) {
                    Ok((udp, data)) => {
                        self.stats.local_delivered += 1;
                        self.delivered.push(Delivered {
                            src: header.src,
                            dst: header.dst,
                            proto: Ipv4Proto::Udp,
                            dst_port: Some(udp.dst_port),
                            payload: data,
                        });
                    }
                    Err(_) => self.stats.record_drop(DropReason::Malformed),
                }
                let _ = iif;
            }
            other => {
                self.stats.local_delivered += 1;
                self.delivered.push(Delivered {
                    src: header.src,
                    dst: header.dst,
                    proto: other,
                    dst_port: None,
                    payload,
                });
            }
        }
    }

    fn icmp_input(&mut self, header: Ipv4Header, payload: &[u8], out: &mut EngineOutput) {
        match IcmpMessage::decode(payload) {
            Ok(msg) => match msg.kind {
                IcmpKind::EchoRequest => {
                    let reply = msg.reply();
                    let reply_header = Ipv4Header::new(header.dst, header.src, Ipv4Proto::Icmp);
                    self.ip_output(IncomingIf::Local, reply_header, reply.encode(), 0, out);
                }
                IcmpKind::EchoReply | IcmpKind::Unreachable(_) => {
                    self.stats.local_delivered += 1;
                    self.delivered.push(Delivered {
                        src: header.src,
                        dst: header.dst,
                        proto: Ipv4Proto::Icmp,
                        dst_port: None,
                        payload: msg.encode(),
                    });
                }
            },
            Err(_) => self.stats.record_drop(DropReason::Malformed),
        }
    }

    fn gre_decap(&mut self, outer: Ipv4Header, payload: &[u8], out: &mut EngineOutput) {
        let (gre, inner) = match GreHeader::decode_packet(payload) {
            Ok(v) => v,
            Err(_) => {
                self.stats.record_drop(DropReason::Malformed);
                return;
            }
        };
        let Some(tunnel) = self
            .config
            .tunnel_for_incoming(outer.src, outer.dst, gre.key, TunnelMode::Gre)
            .cloned()
        else {
            self.stats.record_drop(DropReason::TunnelMismatch);
            return;
        };
        if tunnel.icsum && !gre.checksum_present {
            self.stats.record_drop(DropReason::TunnelMismatch);
            self.stats.tunnel(tunnel.id).drop_packet();
            return;
        }
        if tunnel.iseq {
            let Some(seq) = gre.sequence else {
                self.stats.record_drop(DropReason::TunnelMismatch);
                self.stats.tunnel(tunnel.id).drop_packet();
                return;
            };
            let last = self.gre_rx_seq.entry(tunnel.id).or_insert(0);
            if seq <= *last && *last != 0 {
                // Out-of-order packet on an in-order tunnel: dropped, which is
                // exactly the delay/jitter vs ordering trade-off Table III
                // advertises.
                self.stats.record_drop(DropReason::TunnelMismatch);
                self.stats.tunnel(tunnel.id).drop_packet();
                return;
            }
            *last = seq;
        }
        self.stats.tunnel(tunnel.id).rx(inner.len());
        if gre.protocol != GRE_PROTO_IPV4 {
            self.stats.record_drop(DropReason::Malformed);
            return;
        }
        self.ip_input(IncomingIf::Tunnel(tunnel.id), &inner, out);
    }

    fn ipip_decap(&mut self, outer: Ipv4Header, payload: &[u8], out: &mut EngineOutput) {
        let Some(tunnel) = self
            .config
            .tunnel_for_incoming(outer.src, outer.dst, None, TunnelMode::IpIp)
            .cloned()
        else {
            self.stats.record_drop(DropReason::TunnelMismatch);
            return;
        };
        self.stats.tunnel(tunnel.id).rx(payload.len());
        self.ip_input(IncomingIf::Tunnel(tunnel.id), payload, out);
    }

    /// Route and transmit an IPv4 packet (already TTL-adjusted).
    /// Route and emit one packet.  Returns whether it left the device (or
    /// was parked awaiting ARP resolution) — `false` always comes with a
    /// recorded drop.
    fn ip_output(
        &mut self,
        iif: IncomingIf,
        header: Ipv4Header,
        payload: Vec<u8>,
        depth: u8,
        out: &mut EngineOutput,
    ) -> bool {
        if depth > MAX_ENCAP_DEPTH {
            self.stats.record_drop(DropReason::NoRoute);
            return false;
        }
        let Some(route) = self.config.rib.lookup(header.dst, header.src, iif).copied() else {
            self.stats.record_drop(DropReason::NoRoute);
            return false;
        };
        match route.target {
            RouteTarget::Port { port, via } => {
                let nexthop = via.unwrap_or(header.dst);
                let packet = header.encode_packet(&payload);
                self.transmit_via_arp(PortId(port), nexthop, EtherType::Ipv4, packet, out)
            }
            RouteTarget::Tunnel { tunnel } => {
                self.tunnel_encap(tunnel, header, payload, depth, out)
            }
            RouteTarget::Mpls { nhlfe } => {
                let Some(entry) = self.config.mpls.nhlfe_by_key(nhlfe).cloned() else {
                    self.stats.record_drop(DropReason::NoLabel);
                    return false;
                };
                let LabelOp::Push(label) = entry.op else {
                    self.stats.record_drop(DropReason::NoLabel);
                    return false;
                };
                let packet = header.encode_packet(&payload);
                let mpls_payload =
                    mpls::encode_stack(&[LabelStackEntry::new(label, true)], &packet);
                self.transmit_via_arp(
                    PortId(entry.out_port),
                    entry.nexthop,
                    EtherType::Mpls,
                    mpls_payload,
                    out,
                )
            }
        }
    }

    fn tunnel_encap(
        &mut self,
        tunnel_id: u32,
        inner_header: Ipv4Header,
        inner_payload: Vec<u8>,
        depth: u8,
        out: &mut EngineOutput,
    ) -> bool {
        let Some(tunnel) = self.config.tunnels.get(&tunnel_id).cloned() else {
            self.stats.record_drop(DropReason::NoRoute);
            return false;
        };
        let inner_packet = inner_header.encode_packet(&inner_payload);
        let (outer_payload, proto) = match tunnel.mode {
            TunnelMode::Gre => {
                let sequence = if tunnel.oseq {
                    let seq = self.gre_tx_seq.entry(tunnel_id).or_insert(0);
                    *seq += 1;
                    Some(*seq)
                } else {
                    None
                };
                let gre = GreHeader {
                    protocol: GRE_PROTO_IPV4,
                    key: tunnel.okey,
                    sequence,
                    checksum_present: tunnel.ocsum,
                };
                (gre.encode_packet(&inner_packet), Ipv4Proto::Gre)
            }
            TunnelMode::IpIp => (inner_packet, Ipv4Proto::IpIp),
        };
        self.stats.tunnel(tunnel_id).tx(outer_payload.len());
        let mut outer_header = Ipv4Header::new(tunnel.local, tunnel.remote, proto);
        outer_header.ttl = tunnel.ttl;
        // The outer packet is routed like locally-originated traffic.
        self.ip_output(
            IncomingIf::Local,
            outer_header,
            outer_payload,
            depth + 1,
            out,
        )
    }

    fn mpls_input(&mut self, port: PortId, payload: &[u8], out: &mut EngineOutput) {
        let (stack, inner) = match mpls::decode_stack(payload) {
            Ok(v) => v,
            Err(_) => {
                self.stats.record_drop(DropReason::Malformed);
                return;
            }
        };
        let top = stack[0];
        if top.ttl <= 1 {
            self.stats.record_drop(DropReason::TtlExpired);
            return;
        }
        let Some(entry) = self.config.mpls.lookup(port.0, top.label).cloned() else {
            self.stats.record_drop(DropReason::NoLabel);
            return;
        };
        let mut new_stack: Vec<LabelStackEntry> = stack[1..].to_vec();
        match entry.op {
            LabelOp::Pop => {}
            LabelOp::Swap(label) => {
                let mut swapped = top;
                swapped.label = label;
                swapped.ttl = top.ttl - 1;
                new_stack.insert(0, swapped);
            }
            LabelOp::Push(label) => {
                let mut kept = top;
                kept.ttl = top.ttl - 1;
                new_stack.insert(0, kept);
                new_stack.insert(0, LabelStackEntry::new(label, false));
            }
        }
        if new_stack.is_empty() {
            // Bottom of stack popped: the payload is an IPv4 packet.
            if entry.nexthop == Ipv4Addr::UNSPECIFIED {
                // Deliver to the local IP stack which re-routes it (the
                // CONMan MPLS module uses this form: the IP module above
                // decides where the packet goes next).  That re-routing does
                // its own forwarded/dropped accounting, so return without
                // counting here — the tallies must stay mutually exclusive
                // for per-goal flow attribution.
                self.ip_input(IncomingIf::Port(port.0), &inner, out);
                return;
            } else if !self.transmit_via_arp(
                PortId(entry.out_port),
                entry.nexthop,
                EtherType::Ipv4,
                inner,
                out,
            ) {
                return;
            }
        } else {
            // Fix bottom-of-stack flags after editing.
            let last = new_stack.len() - 1;
            for (i, e) in new_stack.iter_mut().enumerate() {
                e.bottom = i == last;
            }
            let payload = mpls::encode_stack(&new_stack, &inner);
            if !self.transmit_via_arp(
                PortId(entry.out_port),
                entry.nexthop,
                EtherType::Mpls,
                payload,
                out,
            ) {
                return;
            }
        }
        self.stats.forwarded += 1;
    }

    // ------------------------------------------------------------------
    // Layer 2 bridging (switches)
    // ------------------------------------------------------------------

    fn bridge_input(&mut self, port: PortId, frame: &EthernetFrame, out: &mut EngineOutput) {
        let Some(bridge) = self.config.bridge.clone() else {
            self.stats.record_drop(DropReason::ForwardingDisabled);
            return;
        };
        let Some(mode) = bridge.ports.get(&port.0) else {
            self.stats.record_drop(DropReason::PortDown);
            return;
        };
        // Classify the frame into a VLAN and recover the "customer" frame
        // that will be re-emitted on egress.
        let (vlan_id, customer): (u16, EthernetFrame) = match mode {
            SwitchPortMode::Access(v) | SwitchPortMode::Dot1qTunnel(v) => {
                (v.value(), frame.clone())
            }
            SwitchPortMode::Trunk(allowed) => {
                if frame.ethertype != EtherType::Vlan {
                    self.stats.record_drop(DropReason::Malformed);
                    return;
                }
                let Ok((tag, inner_payload)) = vlan::pop_tag(&frame.payload) else {
                    self.stats.record_drop(DropReason::Malformed);
                    return;
                };
                if !allowed.contains(&tag.vid) {
                    self.stats.record_drop(DropReason::Filtered);
                    return;
                }
                (
                    tag.vid.value(),
                    EthernetFrame::new(frame.dst, frame.src, tag.inner_ethertype, inner_payload),
                )
            }
        };
        // Check the MTU declared for the VLAN (Q-in-Q needs 1504).
        if let Some(vc) = bridge.vlans.get(&vlan_id) {
            if customer.wire_len() + vlan::VLAN_TAG_LEN
                > vc.mtu as usize + crate::ether::ETHERNET_HEADER_LEN
            {
                self.stats.record_drop(DropReason::MtuExceeded);
                return;
            }
        }
        // Learn the source MAC.
        self.mac_table.insert((vlan_id, customer.src), port.0);
        // Decide egress ports.
        let egress: Vec<u32> =
            if let Some(p) = self.mac_table.get(&(vlan_id, customer.dst)).copied() {
                if p == port.0 {
                    return; // already on the right segment
                }
                vec![p]
            } else {
                bridge
                    .ports
                    .iter()
                    .filter(|(p, m)| {
                        **p != port.0
                            && match m {
                                SwitchPortMode::Access(v) | SwitchPortMode::Dot1qTunnel(v) => {
                                    v.value() == vlan_id
                                }
                                SwitchPortMode::Trunk(allowed) => {
                                    allowed.iter().any(|v| v.value() == vlan_id)
                                }
                            }
                    })
                    .map(|(p, _)| *p)
                    .collect()
            };
        for p in egress {
            let mode = &bridge.ports[&p];
            let frame_out = match mode {
                SwitchPortMode::Access(_) | SwitchPortMode::Dot1qTunnel(_) => customer.clone(),
                SwitchPortMode::Trunk(_) => {
                    let vid = vlan::VlanId::new(vlan_id).expect("vlan id validated on ingress");
                    let tagged = vlan::push_tag(vid, customer.ethertype, &customer.payload);
                    EthernetFrame::new(customer.dst, customer.src, EtherType::Vlan, tagged)
                }
            };
            self.transmit(PortId(p), frame_out.encode(), out);
        }
    }

    // ------------------------------------------------------------------
    // Transmission helpers
    // ------------------------------------------------------------------

    fn transmit_via_arp(
        &mut self,
        port: PortId,
        nexthop: Ipv4Addr,
        ethertype: EtherType,
        payload: Vec<u8>,
        out: &mut EngineOutput,
    ) -> bool {
        let Some(nic) = self.port(port) else {
            self.stats.record_drop(DropReason::PortDown);
            return false;
        };
        if !nic.is_usable() {
            self.stats.record_drop(DropReason::PortDown);
            return false;
        }
        let our_mac = nic.mac;
        if let Some(mac) = self.arp.lookup(nexthop) {
            let frame = EthernetFrame::new(mac, our_mac, ethertype, payload);
            self.transmit(port, frame.encode(), out);
            return true;
        }
        // Park the packet and emit an ARP request if this is the first one
        // waiting for this next hop.
        let first = self.arp.park(
            nexthop,
            PendingPacket {
                port: port.0,
                bytes: payload,
                ethertype: ethertype.as_u16(),
            },
        );
        if first {
            let sender_ip = self
                .config
                .address_on_port(port.0)
                .map(|c| c.addr)
                .unwrap_or(Ipv4Addr::UNSPECIFIED);
            let request = ArpPacket::request(our_mac, sender_ip, nexthop);
            let frame = EthernetFrame::new(
                MacAddr::BROADCAST,
                our_mac,
                EtherType::Arp,
                request.encode(),
            );
            self.transmit(port, frame.encode(), out);
        }
        true
    }

    fn transmit(&mut self, port: PortId, bytes: Vec<u8>, out: &mut EngineOutput) {
        match self.port(port) {
            Some(nic) if nic.is_usable() => {
                // Management frames are invisible to data-plane counters
                // (see handle_frame): check the EtherType in the raw bytes.
                let is_mgmt = bytes.len() >= 14
                    && EtherType::from_u16(u16::from_be_bytes([bytes[12], bytes[13]]))
                        == EtherType::Management;
                if !is_mgmt {
                    self.stats.port(port.0).tx(bytes.len());
                }
                out.transmissions.push((port, bytes));
            }
            _ => {
                self.stats.record_drop(DropReason::PortDown);
            }
        }
    }

    /// Reset runtime state that depends on configuration (ARP cache, MAC
    /// table, sequence counters).  Used by tests that reconfigure devices.
    pub fn flush_runtime_state(&mut self) {
        self.arp = ArpCache::new();
        self.mac_table.clear();
        self.gre_tx_seq.clear();
        self.gre_rx_seq.clear();
    }
}

/// Extract the transport destination port for filter evaluation.
fn transport_dst_port(header: &Ipv4Header, payload: &[u8]) -> Option<u16> {
    if header.protocol == Ipv4Proto::Udp {
        UdpHeader::decode_datagram(payload)
            .ok()
            .map(|(u, _)| u.dst_port)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FilterAction, FilterRule, TunnelConfig};
    use crate::ipv4::Ipv4Cidr;
    use crate::link::LinkId;
    use crate::route::{Route, RouteTableId};

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// A router with two ports, addresses on both, forwarding enabled, and
    /// both ports attached to (dummy) links so transmission works.
    fn router() -> Device {
        let mut d = Device::new("R", DeviceRole::Router, 2);
        d.ports[0].link = Some(LinkId(0));
        d.ports[1].link = Some(LinkId(1));
        d.config.ip_forwarding = true;
        d.config.assign_address(0, cidr("10.0.1.1/24"));
        d.config.assign_address(1, cidr("204.9.168.1/24"));
        d
    }

    fn udp_packet(src: &str, dst: &str, dst_port: u16) -> Vec<u8> {
        let udp = UdpHeader::new(40000, dst_port).encode_datagram(b"payload");
        Ipv4Header::new(ip(src), ip(dst), Ipv4Proto::Udp).encode_packet(&udp)
    }

    #[test]
    fn local_udp_delivery() {
        let mut d = router();
        let frame = EthernetFrame::new(
            d.port_mac(PortId(0)),
            MacAddr::for_port(9, 9),
            EtherType::Ipv4,
            udp_packet("10.0.1.5", "10.0.1.1", 592),
        );
        let out = d.handle_frame(PortId(0), &frame.encode());
        assert!(out.transmissions.is_empty());
        let delivered = d.take_delivered();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].dst_port, Some(592));
        assert_eq!(delivered[0].payload, b"payload");
    }

    #[test]
    fn a_transit_packet_is_forwarded_or_dropped_never_both() {
        // A transit packet with no route is a drop, NOT a forward: per-goal
        // flow accounting (and the diagnosis frontier walk on top of it)
        // relies on the two tallies being mutually exclusive.
        let mut d = router();
        let frame = EthernetFrame::new(
            d.port_mac(PortId(0)),
            MacAddr::for_port(9, 9),
            EtherType::Ipv4,
            udp_packet("10.0.1.5", "8.8.8.8", 53),
        );
        d.handle_frame(PortId(0), &frame.encode());
        assert_eq!(d.stats.drops[&DropReason::NoRoute], 1);
        assert_eq!(d.stats.forwarded, 0, "a routeless packet never 'forwards'");
        // A routable one forwards (parked behind ARP counts: it will leave
        // the device once the reply arrives) and records no drop.
        let frame = EthernetFrame::new(
            d.port_mac(PortId(0)),
            MacAddr::for_port(9, 9),
            EtherType::Ipv4,
            udp_packet("10.0.1.5", "204.9.168.77", 53),
        );
        d.handle_frame(PortId(0), &frame.encode());
        assert_eq!(d.stats.forwarded, 1);
        assert_eq!(d.stats.total_drops(), 1, "no new drop for the forward");
    }

    #[test]
    fn forwarding_disabled_drops() {
        let mut d = router();
        d.config.ip_forwarding = false;
        let frame = EthernetFrame::new(
            d.port_mac(PortId(0)),
            MacAddr::for_port(9, 9),
            EtherType::Ipv4,
            udp_packet("10.0.1.5", "8.8.8.8", 53),
        );
        d.handle_frame(PortId(0), &frame.encode());
        assert_eq!(d.stats.drops[&DropReason::ForwardingDisabled], 1);
    }

    #[test]
    fn forwarding_emits_arp_then_packet() {
        let mut d = router();
        d.config.rib.add_main(Route {
            dest: cidr("8.8.8.0/24"),
            target: crate::route::RouteTarget::Port {
                port: 1,
                via: Some(ip("204.9.168.2")),
            },
        });
        let frame = EthernetFrame::new(
            d.port_mac(PortId(0)),
            MacAddr::for_port(9, 9),
            EtherType::Ipv4,
            udp_packet("10.0.1.5", "8.8.8.8", 53),
        );
        let out = d.handle_frame(PortId(0), &frame.encode());
        // The next hop is unresolved: an ARP request goes out instead.
        assert_eq!(out.transmissions.len(), 1);
        let arp_frame = EthernetFrame::decode(&out.transmissions[0].1).unwrap();
        assert_eq!(arp_frame.ethertype, EtherType::Arp);
        assert!(arp_frame.dst.is_broadcast());

        // Deliver the ARP reply; the parked packet is then transmitted.
        let peer_mac = MacAddr::for_port(7, 7);
        let reply = ArpPacket {
            op: ArpOp::Reply,
            sender_mac: peer_mac,
            sender_ip: ip("204.9.168.2"),
            target_mac: d.port_mac(PortId(1)),
            target_ip: ip("204.9.168.1"),
        };
        let reply_frame = EthernetFrame::new(
            d.port_mac(PortId(1)),
            peer_mac,
            EtherType::Arp,
            reply.encode(),
        );
        let out = d.handle_frame(PortId(1), &reply_frame.encode());
        assert_eq!(out.transmissions.len(), 1);
        let fwd = EthernetFrame::decode(&out.transmissions[0].1).unwrap();
        assert_eq!(fwd.ethertype, EtherType::Ipv4);
        assert_eq!(fwd.dst, peer_mac);
        let (h, _) = Ipv4Header::decode_packet(&fwd.payload).unwrap();
        assert_eq!(h.ttl, 63, "TTL must be decremented on forwarding");
    }

    #[test]
    fn gre_encap_and_decap_roundtrip_with_keys() {
        // Encapsulating router.
        let mut a = router();
        let mut tun = TunnelConfig::gre(1, "greA", ip("204.9.168.1"), ip("204.9.169.1"));
        tun.okey = Some(2001);
        tun.ikey = Some(1001);
        tun.oseq = true;
        tun.iseq = true;
        tun.ocsum = true;
        tun.icsum = true;
        a.config.tunnels.insert(1, tun);
        let t = RouteTableId(202);
        a.config.rib.table_mut(t).add(Route {
            dest: Ipv4Cidr::DEFAULT,
            target: crate::route::RouteTarget::Tunnel { tunnel: 1 },
        });
        a.config.rib.add_rule(crate::route::PolicyRule {
            priority: 100,
            selector: crate::route::RuleSelector::ToPrefix(cidr("10.0.2.0/24")),
            table: t,
        });
        a.config.rib.add_main(Route {
            dest: cidr("204.9.169.1/32"),
            target: crate::route::RouteTarget::Port {
                port: 1,
                via: Some(ip("204.9.168.2")),
            },
        });
        // Pre-resolve ARP so the tunnel packet leaves immediately.
        a.arp.insert(ip("204.9.168.2"), MacAddr::for_port(7, 7));

        let frame = EthernetFrame::new(
            a.port_mac(PortId(0)),
            MacAddr::for_port(9, 9),
            EtherType::Ipv4,
            udp_packet("10.0.1.5", "10.0.2.5", 592),
        );
        let out = a.handle_frame(PortId(0), &frame.encode());
        assert_eq!(out.transmissions.len(), 1);
        let encap = EthernetFrame::decode(&out.transmissions[0].1).unwrap();
        let summary = crate::trace::PacketSummary::parse(&out.transmissions[0].1);
        assert_eq!(
            summary.layer_names(),
            vec!["ETH", "IP", "GRE", "IP", "PAYLOAD"]
        );
        assert!(summary.protocol_path().contains("key=2001"));

        // Decapsulating router: its ikey must equal the sender's okey.
        let mut c = Device::new("C", DeviceRole::Router, 2);
        c.ports[0].link = Some(LinkId(0));
        c.ports[1].link = Some(LinkId(1));
        c.config.ip_forwarding = true;
        c.config.add_port_address(1, cidr("204.9.169.1/24"));
        c.config.add_port_address(0, cidr("10.0.2.1/24"));
        let mut tun = TunnelConfig::gre(1, "greC", ip("204.9.169.1"), ip("204.9.168.1"));
        tun.ikey = Some(2001);
        tun.okey = Some(1001);
        tun.iseq = true;
        tun.icsum = true;
        c.config.tunnels.insert(1, tun);
        let t21 = RouteTableId(203);
        c.config.rib.table_mut(t21).add(Route {
            dest: Ipv4Cidr::DEFAULT,
            target: crate::route::RouteTarget::Port { port: 0, via: None },
        });
        c.config.rib.add_rule(crate::route::PolicyRule {
            priority: 100,
            selector: crate::route::RuleSelector::FromTunnel(1),
            table: t21,
        });
        c.arp.insert(ip("10.0.2.5"), MacAddr::for_port(5, 5));

        let arriving = EthernetFrame::new(
            c.port_mac(PortId(1)),
            encap.src,
            EtherType::Ipv4,
            encap.payload,
        );
        let out = c.handle_frame(PortId(1), &arriving.encode());
        assert_eq!(out.transmissions.len(), 1);
        let final_frame = EthernetFrame::decode(&out.transmissions[0].1).unwrap();
        let (h, _) = Ipv4Header::decode_packet(&final_frame.payload).unwrap();
        assert_eq!(h.dst, ip("10.0.2.5"));
        assert_eq!(c.stats.tunnels[&1].rx_packets, 1);
    }

    #[test]
    fn gre_key_mismatch_is_dropped() {
        let mut c = Device::new("C", DeviceRole::Router, 1);
        c.ports[0].link = Some(LinkId(0));
        c.config.add_port_address(0, cidr("204.9.169.1/24"));
        let mut tun = TunnelConfig::gre(1, "greC", ip("204.9.169.1"), ip("204.9.168.1"));
        tun.ikey = Some(7777); // expects a different key
        c.config.tunnels.insert(1, tun);

        let inner = udp_packet("10.0.1.5", "10.0.2.5", 592);
        let gre = GreHeader::ipv4(Some(2001), None, false).encode_packet(&inner);
        let outer = Ipv4Header::new(ip("204.9.168.1"), ip("204.9.169.1"), Ipv4Proto::Gre)
            .encode_packet(&gre);
        let frame = EthernetFrame::new(
            c.port_mac(PortId(0)),
            MacAddr::for_port(9, 9),
            EtherType::Ipv4,
            outer,
        );
        c.handle_frame(PortId(0), &frame.encode());
        assert_eq!(c.stats.drops[&DropReason::TunnelMismatch], 1);
        assert!(c.take_delivered().is_empty());
    }

    #[test]
    fn filters_drop_matching_traffic() {
        let mut d = router();
        d.config.filters.push(FilterRule {
            id: 1,
            action: FilterAction::Drop,
            src: Some(cidr("10.0.1.0/24")),
            dst: None,
            proto: Some(Ipv4Proto::Udp),
            dst_port: Some(592),
        });
        let frame = EthernetFrame::new(
            d.port_mac(PortId(0)),
            MacAddr::for_port(9, 9),
            EtherType::Ipv4,
            udp_packet("10.0.1.5", "10.0.1.1", 592),
        );
        d.handle_frame(PortId(0), &frame.encode());
        assert!(d.take_delivered().is_empty());
        assert_eq!(d.stats.drops[&DropReason::Filtered], 1);
    }

    #[test]
    fn icmp_echo_is_answered() {
        let mut d = router();
        d.arp.insert(ip("10.0.1.5"), MacAddr::for_port(9, 9));
        let ping = IcmpMessage::echo_request(42, 1, vec![0u8; 8]).encode();
        let pkt =
            Ipv4Header::new(ip("10.0.1.5"), ip("10.0.1.1"), Ipv4Proto::Icmp).encode_packet(&ping);
        let frame = EthernetFrame::new(
            d.port_mac(PortId(0)),
            MacAddr::for_port(9, 9),
            EtherType::Ipv4,
            pkt,
        );
        let out = d.handle_frame(PortId(0), &frame.encode());
        assert_eq!(out.transmissions.len(), 1);
        let reply = EthernetFrame::decode(&out.transmissions[0].1).unwrap();
        let (h, icmp_bytes) = Ipv4Header::decode_packet(&reply.payload).unwrap();
        assert_eq!(h.dst, ip("10.0.1.5"));
        let msg = IcmpMessage::decode(&icmp_bytes).unwrap();
        assert_eq!(msg.kind, IcmpKind::EchoReply);
        assert_eq!(msg.identifier, 42);
    }

    #[test]
    fn mpls_push_swap_pop() {
        use crate::mpls::{IlmEntry, Label, Nhlfe, NhlfeKey};
        // Ingress: route into an LSP with label 2001.
        let mut a = router();
        let key = NhlfeKey(1);
        a.config.mpls.add_nhlfe(Nhlfe {
            key,
            op: LabelOp::Push(Label::new(2001).unwrap()),
            nexthop: ip("204.9.168.2"),
            out_port: 1,
            mtu: 1500,
        });
        a.config.rib.add_main(Route {
            dest: cidr("10.0.2.0/24"),
            target: crate::route::RouteTarget::Mpls { nhlfe: key },
        });
        a.arp.insert(ip("204.9.168.2"), MacAddr::for_port(7, 7));
        let frame = EthernetFrame::new(
            a.port_mac(PortId(0)),
            MacAddr::for_port(9, 9),
            EtherType::Ipv4,
            udp_packet("10.0.1.5", "10.0.2.5", 592),
        );
        let out = a.handle_frame(PortId(0), &frame.encode());
        assert_eq!(out.transmissions.len(), 1);
        let s = crate::trace::PacketSummary::parse(&out.transmissions[0].1);
        assert_eq!(s.layer_names(), vec!["ETH", "MPLS", "IP", "PAYLOAD"]);

        // Transit: swap 2001 -> 3001.
        let mut b = Device::new("B", DeviceRole::Router, 2);
        b.ports[0].link = Some(LinkId(0));
        b.ports[1].link = Some(LinkId(1));
        b.config.ip_forwarding = true;
        b.config.add_port_address(1, cidr("204.9.170.1/24"));
        let bkey = NhlfeKey(1);
        b.config.mpls.add_nhlfe(Nhlfe {
            key: bkey,
            op: LabelOp::Swap(Label::new(3001).unwrap()),
            nexthop: ip("204.9.170.2"),
            out_port: 1,
            mtu: 1500,
        });
        b.config.mpls.set_labelspace(0, 0);
        b.config.mpls.add_xc(
            IlmEntry {
                labelspace: 0,
                label: Label::new(2001).unwrap(),
            },
            bkey,
        );
        b.arp.insert(ip("204.9.170.2"), MacAddr::for_port(8, 8));
        let mpls_frame = EthernetFrame::decode(&out.transmissions[0].1).unwrap();
        let arriving = EthernetFrame::new(
            b.port_mac(PortId(0)),
            mpls_frame.src,
            EtherType::Mpls,
            mpls_frame.payload,
        );
        let out_b = b.handle_frame(PortId(0), &arriving.encode());
        assert_eq!(out_b.transmissions.len(), 1);
        let s = crate::trace::PacketSummary::parse(&out_b.transmissions[0].1);
        assert!(matches!(s.layers[1], crate::trace::Layer::Mpls(3001)));

        // Egress: pop and deliver to the local IP stack for routing.
        let mut c = Device::new("C", DeviceRole::Router, 2);
        c.ports[0].link = Some(LinkId(0));
        c.ports[1].link = Some(LinkId(1));
        c.config.ip_forwarding = true;
        c.config.add_port_address(1, cidr("10.0.2.1/24"));
        let ckey = NhlfeKey(1);
        c.config.mpls.add_nhlfe(Nhlfe {
            key: ckey,
            op: LabelOp::Pop,
            nexthop: Ipv4Addr::UNSPECIFIED,
            out_port: 1,
            mtu: 1500,
        });
        c.config.mpls.add_xc(
            IlmEntry {
                labelspace: 0,
                label: Label::new(3001).unwrap(),
            },
            ckey,
        );
        c.config.rib.add_main(Route {
            dest: cidr("10.0.2.0/24"),
            target: crate::route::RouteTarget::Port { port: 1, via: None },
        });
        c.arp.insert(ip("10.0.2.5"), MacAddr::for_port(5, 5));
        let b_frame = EthernetFrame::decode(&out_b.transmissions[0].1).unwrap();
        let arriving = EthernetFrame::new(
            c.port_mac(PortId(0)),
            b_frame.src,
            EtherType::Mpls,
            b_frame.payload,
        );
        let out_c = c.handle_frame(PortId(0), &arriving.encode());
        assert_eq!(out_c.transmissions.len(), 1);
        let s = crate::trace::PacketSummary::parse(&out_c.transmissions[0].1);
        assert_eq!(s.layer_names(), vec!["ETH", "IP", "PAYLOAD"]);
    }

    #[test]
    fn bridge_learns_and_floods_with_qinq() {
        use crate::vlan::VlanId;
        let mut sw = Device::new("SwitchA", DeviceRole::Switch, 3);
        for p in &mut sw.ports {
            p.link = Some(LinkId(p.index));
        }
        let mut bridge = crate::config::BridgeConfig::default();
        bridge.declare_vlan(VlanId::new(22).unwrap(), "C1", 1504);
        bridge.set_port(0, SwitchPortMode::Dot1qTunnel(VlanId::new(22).unwrap()));
        bridge.set_port(1, SwitchPortMode::Trunk(vec![VlanId::new(22).unwrap()]));
        bridge.set_port(2, SwitchPortMode::Access(VlanId::new(44).unwrap()));
        sw.config.bridge = Some(bridge);

        // Customer frame enters the dot1q-tunnel port: flooded only to ports
        // in VLAN 22 (port 1), tagged on the trunk.
        let customer = EthernetFrame::new(
            MacAddr::for_port(20, 0),
            MacAddr::for_port(10, 0),
            EtherType::Ipv4,
            vec![0u8; 64],
        );
        let out = sw.handle_frame(PortId(0), &customer.encode());
        assert_eq!(out.transmissions.len(), 1);
        assert_eq!(out.transmissions[0].0, PortId(1));
        let tagged = EthernetFrame::decode(&out.transmissions[0].1).unwrap();
        assert_eq!(tagged.ethertype, EtherType::Vlan);
        let (tag, inner) = vlan::pop_tag(&tagged.payload).unwrap();
        assert_eq!(tag.vid.value(), 22);
        assert_eq!(inner.len(), 64);

        // Return traffic on the trunk is learned and switched back untagged.
        let reply_inner = EthernetFrame::new(
            MacAddr::for_port(10, 0),
            MacAddr::for_port(20, 0),
            EtherType::Ipv4,
            vec![1u8; 64],
        );
        let reply_tagged = EthernetFrame::new(
            reply_inner.dst,
            reply_inner.src,
            EtherType::Vlan,
            vlan::push_tag(
                VlanId::new(22).unwrap(),
                EtherType::Ipv4,
                &reply_inner.payload,
            ),
        );
        let out = sw.handle_frame(PortId(1), &reply_tagged.encode());
        assert_eq!(out.transmissions.len(), 1);
        assert_eq!(out.transmissions[0].0, PortId(0));
        let untagged = EthernetFrame::decode(&out.transmissions[0].1).unwrap();
        assert_eq!(untagged.ethertype, EtherType::Ipv4);
    }

    #[test]
    fn management_frames_are_queued_not_forwarded() {
        let mut sw = Device::new("SwitchA", DeviceRole::Switch, 2);
        sw.ports[0].link = Some(LinkId(0));
        sw.ports[1].link = Some(LinkId(1));
        sw.config.bridge = Some(crate::config::BridgeConfig::default());
        let frame = EthernetFrame::new(
            MacAddr::BROADCAST,
            MacAddr::for_port(1, 0),
            EtherType::Management,
            vec![1, 2, 3],
        );
        let out = sw.handle_frame(PortId(0), &frame.encode());
        assert!(out.transmissions.is_empty());
        let frames = sw.take_mgmt_frames();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].payload, vec![1, 2, 3]);
        assert_eq!(frames[0].port, Some(PortId(0)));
    }

    #[test]
    fn ping_originates_via_routing() {
        let mut d = router();
        d.config.rib.add_main(Route {
            dest: cidr("204.9.169.0/24"),
            target: crate::route::RouteTarget::Port {
                port: 1,
                via: Some(ip("204.9.168.2")),
            },
        });
        d.arp.insert(ip("204.9.168.2"), MacAddr::for_port(7, 7));
        let out = d.originate_ping(ip("204.9.169.1"), 1, 1);
        assert_eq!(out.transmissions.len(), 1);
        assert_eq!(d.stats.originated, 1);
    }
}
