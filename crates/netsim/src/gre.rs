//! GRE (RFC 2784/2890) header codec with key, sequence-number and checksum
//! options — the three knobs the paper's GRE module negotiates with its peer
//! (§III-B, Table III).

use crate::ipv4::internet_checksum;
use crate::{CodecError, CodecResult};
use serde::{Deserialize, Serialize};

/// Protocol type carried in GRE for IPv4 payloads.
pub const GRE_PROTO_IPV4: u16 = 0x0800;

/// A decoded GRE header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GreHeader {
    /// Payload protocol (EtherType-style value, 0x0800 for IPv4).
    pub protocol: u16,
    /// Optional key (RFC 2890).
    pub key: Option<u32>,
    /// Optional sequence number (RFC 2890).
    pub sequence: Option<u32>,
    /// Whether the optional checksum is present.
    pub checksum_present: bool,
}

impl GreHeader {
    /// Build a header for an IPv4 payload.
    pub fn ipv4(key: Option<u32>, sequence: Option<u32>, checksum: bool) -> Self {
        GreHeader {
            protocol: GRE_PROTO_IPV4,
            key,
            sequence,
            checksum_present: checksum,
        }
    }

    /// Length of the encoded header in bytes.
    pub fn len(&self) -> usize {
        4 + if self.checksum_present { 4 } else { 0 }
            + if self.key.is_some() { 4 } else { 0 }
            + if self.sequence.is_some() { 4 } else { 0 }
    }

    /// GRE headers are never zero-length.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Encode the header followed by `payload`.
    pub fn encode_packet(&self, payload: &[u8]) -> Vec<u8> {
        let mut flags: u16 = 0;
        if self.checksum_present {
            flags |= 0x8000;
        }
        if self.key.is_some() {
            flags |= 0x2000;
        }
        if self.sequence.is_some() {
            flags |= 0x1000;
        }
        let mut out = Vec::with_capacity(self.len() + payload.len());
        out.extend_from_slice(&flags.to_be_bytes());
        out.extend_from_slice(&self.protocol.to_be_bytes());
        let csum_offset = out.len();
        if self.checksum_present {
            out.extend_from_slice(&[0, 0, 0, 0]); // checksum + reserved1
        }
        if let Some(k) = self.key {
            out.extend_from_slice(&k.to_be_bytes());
        }
        if let Some(s) = self.sequence {
            out.extend_from_slice(&s.to_be_bytes());
        }
        out.extend_from_slice(payload);
        if self.checksum_present {
            let csum = internet_checksum(&out);
            out[csum_offset..csum_offset + 2].copy_from_slice(&csum.to_be_bytes());
        }
        out
    }

    /// Decode a GRE packet into header and payload, verifying the checksum
    /// when present.
    pub fn decode_packet(bytes: &[u8]) -> CodecResult<(GreHeader, Vec<u8>)> {
        if bytes.len() < 4 {
            return Err(CodecError::Truncated {
                what: "gre",
                needed: 4,
                got: bytes.len(),
            });
        }
        let flags = u16::from_be_bytes([bytes[0], bytes[1]]);
        let version = (flags & 0x0007) as u8;
        if version != 0 {
            return Err(CodecError::BadVersion {
                what: "gre",
                version,
            });
        }
        let checksum_present = flags & 0x8000 != 0;
        let key_present = flags & 0x2000 != 0;
        let seq_present = flags & 0x1000 != 0;
        let protocol = u16::from_be_bytes([bytes[2], bytes[3]]);
        let mut offset = 4;
        let need = 4
            + if checksum_present { 4 } else { 0 }
            + if key_present { 4 } else { 0 }
            + if seq_present { 4 } else { 0 };
        if bytes.len() < need {
            return Err(CodecError::Truncated {
                what: "gre",
                needed: need,
                got: bytes.len(),
            });
        }
        if checksum_present {
            if internet_checksum(bytes) != 0 {
                return Err(CodecError::BadChecksum("gre"));
            }
            offset += 4;
        }
        let key = if key_present {
            let k = u32::from_be_bytes([
                bytes[offset],
                bytes[offset + 1],
                bytes[offset + 2],
                bytes[offset + 3],
            ]);
            offset += 4;
            Some(k)
        } else {
            None
        };
        let sequence = if seq_present {
            let s = u32::from_be_bytes([
                bytes[offset],
                bytes[offset + 1],
                bytes[offset + 2],
                bytes[offset + 3],
            ]);
            offset += 4;
            Some(s)
        } else {
            None
        };
        Ok((
            GreHeader {
                protocol,
                key,
                sequence,
                checksum_present,
            },
            bytes[offset..].to_vec(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_roundtrip() {
        let h = GreHeader::ipv4(None, None, false);
        assert_eq!(h.len(), 4);
        let pkt = h.encode_packet(&[1, 2, 3]);
        let (g, payload) = GreHeader::decode_packet(&pkt).unwrap();
        assert_eq!(g, h);
        assert_eq!(payload, vec![1, 2, 3]);
    }

    #[test]
    fn full_options_roundtrip() {
        // The exact configuration from Figure 7(a): ikey/okey, icsum/ocsum,
        // iseq/oseq all enabled.
        let h = GreHeader::ipv4(Some(2001), Some(17), true);
        assert_eq!(h.len(), 16);
        let pkt = h.encode_packet(&[9u8; 100]);
        let (g, payload) = GreHeader::decode_packet(&pkt).unwrap();
        assert_eq!(g.key, Some(2001));
        assert_eq!(g.sequence, Some(17));
        assert!(g.checksum_present);
        assert_eq!(payload.len(), 100);
    }

    #[test]
    fn checksum_detects_corruption() {
        let h = GreHeader::ipv4(Some(1001), None, true);
        let mut pkt = h.encode_packet(&[5u8; 32]);
        let last = pkt.len() - 1;
        pkt[last] ^= 0xff;
        assert!(matches!(
            GreHeader::decode_packet(&pkt),
            Err(CodecError::BadChecksum("gre"))
        ));
    }

    #[test]
    fn truncation_and_version_errors() {
        assert!(GreHeader::decode_packet(&[0]).is_err());
        let mut pkt = GreHeader::ipv4(None, None, false).encode_packet(&[]);
        pkt[1] |= 0x01; // version 1 (PPTP)
        assert!(matches!(
            GreHeader::decode_packet(&pkt),
            Err(CodecError::BadVersion { .. })
        ));
        // flags promise a key but the buffer ends early
        let short = [0x20u8, 0x00, 0x08, 0x00];
        assert!(GreHeader::decode_packet(&short).is_err());
    }
}
