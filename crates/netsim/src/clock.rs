//! Simulated time.
//!
//! The simulator never consults the wall clock; all timing flows from
//! [`SimTime`] values managed by the event queue.  Times are kept in
//! nanoseconds in a `u64`, which covers ~584 years of simulated time — far
//! beyond anything the experiments need.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// The splitmix64 finalizer: the one deterministic mixing function shared by
/// everything in the simulator that needs reproducible pseudo-randomness
/// (loss sampling, fault-plan generation).  Keeping a single copy means a
/// future tweak cannot silently diverge between samplers.
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A point in simulated time, measured in nanoseconds since the start of the
/// simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable time; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`; saturates at zero if `earlier` is
    /// in the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration needed to serialize `bytes` at `bits_per_sec` onto a link.
    pub fn serialization(bytes: usize, bits_per_sec: u64) -> SimDuration {
        if bits_per_sec == 0 {
            return SimDuration::ZERO;
        }
        let bits = bytes as u128 * 8;
        let ns = bits * 1_000_000_000u128 / bits_per_sec as u128;
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }

    /// Multiply by an integer factor (saturating).
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

/// A steppable tick clock: fixed-width ticks laid out on the simulated
/// timeline from a start instant.
///
/// The autonomic control loop and the telemetry schedule share one of these
/// so "tick `k`" means exactly the same instant to both — the loop advances
/// the network to [`StepClock::advance`]'s deadline with
/// [`Network::run_until`](crate::network::Network::run_until), which always
/// lands the event queue precisely on the deadline, so every run of the loop
/// replays tick-for-tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepClock {
    start: SimTime,
    tick: SimDuration,
    ticks: u64,
}

impl StepClock {
    /// A clock ticking every `tick`, starting at time zero.
    pub fn new(tick: SimDuration) -> Self {
        Self::starting_at(SimTime::ZERO, tick)
    }

    /// A clock ticking every `tick`, with tick boundaries laid out from
    /// `start` (usually "now" when the control loop is created mid-run).
    pub fn starting_at(start: SimTime, tick: SimDuration) -> Self {
        assert!(tick.as_nanos() > 0, "tick width must be non-zero");
        StepClock {
            start,
            tick,
            ticks: 0,
        }
    }

    /// The tick width.
    pub fn tick_width(&self) -> SimDuration {
        self.tick
    }

    /// Ticks completed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The deadline of the *next* tick (where the network should be run to).
    pub fn next_deadline(&self) -> SimTime {
        self.start + self.tick.saturating_mul(self.ticks + 1)
    }

    /// Complete one tick, returning its deadline.
    pub fn advance(&mut self) -> SimTime {
        self.ticks += 1;
        self.start + self.tick.saturating_mul(self.ticks)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(5), SimDuration::from_millis(10));
        // Subtraction saturates rather than panicking.
        assert_eq!(
            SimTime::from_millis(1) - SimTime::from_millis(5),
            SimDuration::ZERO
        );
    }

    #[test]
    fn serialization_delay() {
        // 1500 bytes at 1 Gbps = 12 microseconds.
        let d = SimDuration::serialization(1500, 1_000_000_000);
        assert_eq!(d.as_micros(), 12);
        assert_eq!(SimDuration::serialization(1500, 0), SimDuration::ZERO);
    }

    #[test]
    fn step_clock_ticks_are_fixed_width_from_the_start_instant() {
        let mut c = StepClock::starting_at(SimTime::from_millis(30), SimDuration::from_millis(100));
        assert_eq!(c.ticks(), 0);
        assert_eq!(c.next_deadline(), SimTime::from_millis(130));
        assert_eq!(c.advance(), SimTime::from_millis(130));
        assert_eq!(c.advance(), SimTime::from_millis(230));
        assert_eq!(c.ticks(), 2);
        assert_eq!(c.next_deadline(), SimTime::from_millis(330));
        assert_eq!(c.tick_width(), SimDuration::from_millis(100));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn step_clock_rejects_zero_ticks() {
        let _ = StepClock::new(SimDuration::ZERO);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_nanos(999)), "999ns");
    }
}
