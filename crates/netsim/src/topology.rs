//! Canned topologies used by the experiments, including the paper's Figure 4
//! VPN testbed (two customer sites connected across a three-router ISP) and
//! the Figure 2 GRE-tunnel setup, plus parameterised chains for the scaling
//! benchmarks (Table VI sweeps `n`, the number of routers along the path).

use crate::config::{BridgeConfig, SwitchPortMode};
use crate::device::{Device, DeviceId, DeviceRole, PortId};
use crate::ipv4::Ipv4Cidr;
use crate::link::LinkProperties;
use crate::network::Network;
use crate::route::{Route, RouteTarget};
use crate::vlan::VlanId;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

fn cidr(s: &str) -> Ipv4Cidr {
    s.parse().expect("valid CIDR literal")
}

fn ip(s: &str) -> Ipv4Addr {
    s.parse().expect("valid IPv4 literal")
}

/// A layer-2 switch whose ports all start in VLAN 1 access mode (an
/// unconfigured switch that floods everything, like a fresh device).
pub fn basic_switch(name: &str, num_ports: u32) -> Device {
    let mut d = Device::new(name, DeviceRole::Switch, num_ports);
    let mut bridge = BridgeConfig::default();
    bridge.declare_vlan(VlanId::new(1).unwrap(), "default", 1504);
    for p in 0..num_ports {
        bridge.set_port(p, SwitchPortMode::Access(VlanId::new(1).unwrap()));
    }
    d.config.bridge = Some(bridge);
    d
}

/// The ISP chain topology of Section III-C generalised to `n` core routers.
///
/// ```text
/// host1 -- D -- R1 -- R2 -- ... -- Rn -- E -- host2
///          (customer 1, site 1)          (customer 1, site 2)
/// ```
///
/// `n = 3` reproduces Figure 4 exactly (R1 = RouterA, R2 = RouterB,
/// R3 = RouterC).  The ISP routers have forwarding enabled and connected
/// routes only: the VPN path itself (tunnels, LSPs, customer routes) is what
/// the NM or the legacy scripts configure.
#[derive(Debug)]
pub struct ChainTopology {
    /// The network.
    pub net: Network,
    /// Host in customer site 1 (10.0.1.5).
    pub host1: DeviceId,
    /// Customer router at site 1 (Router D in the paper).
    pub customer1: DeviceId,
    /// ISP core routers in path order (Routers A, B, C for n = 3).
    pub core: Vec<DeviceId>,
    /// Customer router at site 2 (Router E in the paper).
    pub customer2: DeviceId,
    /// Host in customer site 2 (10.0.2.5).
    pub host2: DeviceId,
    /// The ISP-internal address of each core router on the link towards the
    /// *next* core router (used by configuration generators).
    pub core_link_addresses: Vec<(Ipv4Addr, Ipv4Addr)>,
    /// Second customer pair, present on dual-customer chains
    /// ([`isp_chain_dual`]): a host in the 10.0.3.0/24 LAN behind the site-1
    /// customer router and one in 10.0.4.0/24 behind the site-2 router.
    pub second_pair: Option<(DeviceId, DeviceId)>,
    /// Fan-out customer pairs ([`isp_chain_fanout`]): one `(site-1 host,
    /// site-2 host)` pair per entry, each on its own LAN behind the shared
    /// customer routers (subnets from [`fanout_pair_subnets`]).  Empty on
    /// plain and dual chains.
    pub fanout_pairs: Vec<(DeviceId, DeviceId)>,
}

/// The `(site-1, site-2)` /24 subnets of fan-out customer pair `k`
/// (0-based).  The scheme keeps clear of the first customer's 10.0.x.0/24
/// LANs and the 192.168.x / 204.9.x ISP addressing, and scales past 256
/// pairs without overflowing an octet.
pub fn fanout_pair_subnets(k: usize) -> (Ipv4Cidr, Ipv4Cidr) {
    let x = 1 + k / 64;
    let y = (k % 64) * 4;
    assert!(x <= 255, "fan-out pair index out of addressing range");
    (
        Ipv4Cidr::new(Ipv4Addr::new(10, x as u8, y as u8, 0), 24),
        Ipv4Cidr::new(Ipv4Addr::new(10, x as u8, (y + 1) as u8, 0), 24),
    )
}

/// The `(site-1, site-2)` host addresses of fan-out pair `k` (the `.5`
/// address of each subnet of [`fanout_pair_subnets`]).
pub fn fanout_pair_hosts(k: usize) -> (Ipv4Addr, Ipv4Addr) {
    let (s1, s2) = fanout_pair_subnets(k);
    let host = |c: Ipv4Cidr| -> Ipv4Addr {
        let base: u32 = c.network().into();
        Ipv4Addr::from(base + 5)
    };
    (host(s1), host(s2))
}

impl ChainTopology {
    /// Address of the first core router on its customer-facing port.
    pub fn ingress_customer_facing(&self) -> Ipv4Addr {
        ip("192.168.0.2")
    }

    /// Address of the last core router on its customer-facing port.
    pub fn egress_customer_facing(&self) -> Ipv4Addr {
        ip("192.168.2.2")
    }

    /// The "tunnel endpoint" addresses the paper uses: the ingress router's
    /// address on its first core link and the egress router's address on its
    /// last core link.
    pub fn tunnel_endpoints(&self) -> (Ipv4Addr, Ipv4Addr) {
        let ingress = self
            .core_link_addresses
            .first()
            .expect("at least one core link")
            .0;
        let egress = self
            .core_link_addresses
            .last()
            .expect("at least one core link")
            .1;
        (ingress, egress)
    }
}

/// Build the ISP chain with `n >= 2` core routers.  Core routers are named
/// `RouterA`, `RouterB`, ... (wrapping to `Router<k>` beyond 26).
pub fn isp_chain(n: usize) -> ChainTopology {
    build_isp_chain(n, false, 0)
}

/// Build the ISP chain with a *second* customer pair: each customer router
/// gets an extra LAN (10.0.3.0/24 at site 1, 10.0.4.0/24 at site 2) with one
/// host.  The second pair shares the customer routers, uplinks and ISP core
/// with the first, which is exactly the multi-goal scenario: two VPN goals
/// between the same customer-facing interfaces for different site classes.
pub fn isp_chain_dual(n: usize) -> ChainTopology {
    build_isp_chain(n, true, 0)
}

/// Build the ISP chain with `pairs` fan-out customer pairs: each customer
/// router grows one extra LAN per pair (subnets from
/// [`fanout_pair_subnets`]) with a single host in it.  Every pair shares
/// the customer routers, uplinks and ISP core — the data-plane substrate
/// for running *hundreds* of concurrent VPN goals with real end-to-end
/// traffic, which the autonomic control loop's per-goal health probes and
/// flow-attributed diagnosis need.
pub fn isp_chain_fanout(n: usize, pairs: usize) -> ChainTopology {
    build_isp_chain(n, false, pairs)
}

/// Build customer site 1 (one host in 10.0.1.0/24 behind router D, which
/// uplinks towards the ISP ingress at 192.168.0.2), with the extra LANs a
/// dual or fan-out variant asks for.  Returns `(host1, customer1)`.
fn build_site1(net: &mut Network, dual: bool, fanout: usize) -> (DeviceId, DeviceId) {
    let extra_ports = if dual { 1 } else { fanout };
    let customer_ports = 2 + extra_ports as u32;
    let mut host1 = Device::new("Host1", DeviceRole::Host, 1);
    host1.config.assign_address(0, cidr("10.0.1.5/24"));
    host1.config.rib.add_main(Route {
        dest: Ipv4Cidr::DEFAULT,
        target: RouteTarget::Port {
            port: 0,
            via: Some(ip("10.0.1.1")),
        },
    });
    let host1 = net.add_device(host1);

    let mut d = Device::new("CustomerRouterD", DeviceRole::Router, customer_ports);
    d.config.ip_forwarding = true;
    d.config.assign_address(0, cidr("10.0.1.1/24")); // site 1 LAN
    d.config.assign_address(1, cidr("192.168.0.1/24")); // uplink to ingress
    if dual {
        d.config.assign_address(2, cidr("10.0.3.1/24")); // site 1 second LAN
    }
    for k in 0..fanout {
        let (s1, _) = fanout_pair_subnets(k);
        let gw: u32 = s1.network().into();
        d.config
            .assign_address(2 + k as u32, Ipv4Cidr::new(Ipv4Addr::from(gw + 1), 24));
    }
    d.config.rib.add_main(Route {
        dest: Ipv4Cidr::DEFAULT,
        target: RouteTarget::Port {
            port: 1,
            via: Some(ip("192.168.0.2")),
        },
    });
    let customer1 = net.add_device(d);
    (host1, customer1)
}

/// Build customer site 2 (router E uplinking towards the ISP egress at
/// 192.168.2.2, one host in 10.0.2.0/24 behind it).  Returns
/// `(customer2, host2)`.
fn build_site2(net: &mut Network, dual: bool, fanout: usize) -> (DeviceId, DeviceId) {
    let extra_ports = if dual { 1 } else { fanout };
    let customer_ports = 2 + extra_ports as u32;
    let mut e = Device::new("CustomerRouterE", DeviceRole::Router, customer_ports);
    e.config.ip_forwarding = true;
    e.config.assign_address(0, cidr("10.0.2.1/24"));
    e.config.assign_address(1, cidr("192.168.2.1/24"));
    if dual {
        e.config.assign_address(2, cidr("10.0.4.1/24")); // site 2 second LAN
    }
    for k in 0..fanout {
        let (_, s2) = fanout_pair_subnets(k);
        let gw: u32 = s2.network().into();
        e.config
            .assign_address(2 + k as u32, Ipv4Cidr::new(Ipv4Addr::from(gw + 1), 24));
    }
    e.config.rib.add_main(Route {
        dest: Ipv4Cidr::DEFAULT,
        target: RouteTarget::Port {
            port: 1,
            via: Some(ip("192.168.2.2")),
        },
    });
    let customer2 = net.add_device(e);

    let mut host2 = Device::new("Host2", DeviceRole::Host, 1);
    host2.config.assign_address(0, cidr("10.0.2.5/24"));
    host2.config.rib.add_main(Route {
        dest: Ipv4Cidr::DEFAULT,
        target: RouteTarget::Port {
            port: 0,
            via: Some(ip("10.0.2.1")),
        },
    });
    let host2 = net.add_device(host2);
    (customer2, host2)
}

/// Attach `fanout` extra host pairs (one per LAN from
/// [`fanout_pair_subnets`]) behind the shared customer routers, each
/// default-routed through its gateway.
fn attach_fanout_hosts(
    net: &mut Network,
    customer1: DeviceId,
    customer2: DeviceId,
    fanout: usize,
) -> Vec<(DeviceId, DeviceId)> {
    let mut fanout_pairs = Vec::with_capacity(fanout);
    for k in 0..fanout {
        let (s1, s2) = fanout_pair_subnets(k);
        let (h1_addr, h2_addr) = fanout_pair_hosts(k);
        let gw = |subnet: Ipv4Cidr| -> Ipv4Addr {
            let base: u32 = subnet.network().into();
            Ipv4Addr::from(base + 1)
        };
        let mut a = Device::new(format!("FanHost{k}S1"), DeviceRole::Host, 1);
        a.config.assign_address(0, Ipv4Cidr::new(h1_addr, 24));
        a.config.rib.add_main(Route {
            dest: Ipv4Cidr::DEFAULT,
            target: RouteTarget::Port {
                port: 0,
                via: Some(gw(s1)),
            },
        });
        let a = net.add_device(a);
        let mut b = Device::new(format!("FanHost{k}S2"), DeviceRole::Host, 1);
        b.config.assign_address(0, Ipv4Cidr::new(h2_addr, 24));
        b.config.rib.add_main(Route {
            dest: Ipv4Cidr::DEFAULT,
            target: RouteTarget::Port {
                port: 0,
                via: Some(gw(s2)),
            },
        });
        let b = net.add_device(b);
        net.connect(
            (a, PortId(0)),
            (customer1, PortId(2 + k as u32)),
            LinkProperties::lan(),
        )
        .unwrap();
        net.connect(
            (b, PortId(0)),
            (customer2, PortId(2 + k as u32)),
            LinkProperties::lan(),
        )
        .unwrap();
        fanout_pairs.push((a, b));
    }
    fanout_pairs
}

fn build_isp_chain(n: usize, dual: bool, fanout: usize) -> ChainTopology {
    assert!(n >= 2, "the chain needs at least two core routers");
    let mut net = Network::new();

    // Customer site 1.
    let (host1, customer1) = build_site1(&mut net, dual, fanout);

    // Core routers.  Port plan: port 0 = customer-facing (edges only),
    // port 1 = towards the previous core router, port 2 = towards the next.
    let mut core = Vec::new();
    let mut core_link_addresses = Vec::new();
    for i in 0..n {
        let name = if i < 26 {
            format!("Router{}", (b'A' + i as u8) as char)
        } else {
            format!("Router{}", i)
        };
        let mut r = Device::new(&name, DeviceRole::Router, 3);
        r.config.ip_forwarding = true;
        if i == 0 {
            r.config.assign_address(0, cidr("192.168.0.2/24"));
        }
        if i == n - 1 {
            r.config.assign_address(0, cidr("192.168.2.2/24"));
        }
        core.push(net.add_device(r));
    }

    // Core links: subnet 204.9.(168+i).0/24 between core[i] and core[i+1].
    // Octets are chosen so that n = 3 reproduces the paper's addresses:
    // RouterA = 204.9.168.1, RouterB = 204.9.168.2 / 204.9.169.2,
    // RouterC = 204.9.169.1.
    for i in 0..n - 1 {
        let third = 168 + i as u32;
        let (left_host, right_host) = if n > 2 && i == n - 2 {
            (2u32, 1u32)
        } else {
            (1u32, 2u32)
        };
        let left_addr = Ipv4Addr::from((204u32 << 24) | (9 << 16) | (third << 8) | left_host);
        let right_addr = Ipv4Addr::from((204u32 << 24) | (9 << 16) | (third << 8) | right_host);
        {
            let dev = net.device_mut(core[i]).unwrap();
            dev.config.assign_address(2, Ipv4Cidr::new(left_addr, 24));
        }
        {
            let dev = net.device_mut(core[i + 1]).unwrap();
            dev.config.assign_address(1, Ipv4Cidr::new(right_addr, 24));
        }
        net.connect(
            (core[i], PortId(2)),
            (core[i + 1], PortId(1)),
            LinkProperties::wan(),
        )
        .unwrap();
        core_link_addresses.push((left_addr, right_addr));
    }

    // Customer site 2.
    let (customer2, host2) = build_site2(&mut net, dual, fanout);

    // Edge links.
    net.connect(
        (host1, PortId(0)),
        (customer1, PortId(0)),
        LinkProperties::lan(),
    )
    .unwrap();
    net.connect(
        (customer1, PortId(1)),
        (core[0], PortId(0)),
        LinkProperties::lan(),
    )
    .unwrap();
    net.connect(
        (core[n - 1], PortId(0)),
        (customer2, PortId(1)),
        LinkProperties::lan(),
    )
    .unwrap();
    net.connect(
        (customer2, PortId(0)),
        (host2, PortId(0)),
        LinkProperties::lan(),
    )
    .unwrap();

    // Second customer pair (dual chains): one host per extra LAN.
    let second_pair = if dual {
        let mut host3 = Device::new("Host3", DeviceRole::Host, 1);
        host3.config.assign_address(0, cidr("10.0.3.5/24"));
        host3.config.rib.add_main(Route {
            dest: Ipv4Cidr::DEFAULT,
            target: RouteTarget::Port {
                port: 0,
                via: Some(ip("10.0.3.1")),
            },
        });
        let host3 = net.add_device(host3);
        let mut host4 = Device::new("Host4", DeviceRole::Host, 1);
        host4.config.assign_address(0, cidr("10.0.4.5/24"));
        host4.config.rib.add_main(Route {
            dest: Ipv4Cidr::DEFAULT,
            target: RouteTarget::Port {
                port: 0,
                via: Some(ip("10.0.4.1")),
            },
        });
        let host4 = net.add_device(host4);
        net.connect(
            (host3, PortId(0)),
            (customer1, PortId(2)),
            LinkProperties::lan(),
        )
        .unwrap();
        net.connect(
            (host4, PortId(0)),
            (customer2, PortId(2)),
            LinkProperties::lan(),
        )
        .unwrap();
        Some((host3, host4))
    } else {
        None
    };

    // Fan-out pairs: one host per extra LAN on each side, default-routed
    // through the shared customer router.
    let fanout_pairs = attach_fanout_hosts(&mut net, customer1, customer2, fanout);

    ChainTopology {
        net,
        host1,
        customer1,
        core,
        customer2,
        host2,
        core_link_addresses,
        second_pair,
        fanout_pairs,
    }
}

/// The exact Figure 4 testbed: three ISP routers A, B, C plus the customer
/// routers D (site 1) and E (site 2) and one host per site.
pub fn figure4() -> ChainTopology {
    isp_chain(3)
}

/// A multipath ISP topology: the first testbed family on which a blamed
/// core *link* has a genuine alternative, so link-suspect-aware planning can
/// actually route around it instead of reinstalling through.
///
/// Two shapes share the struct:
///
/// * **Mesh** ([`isp_mesh_fanout`]) — a 2×k redundant core: two parallel
///   rows of `k` routers with a cross-link at every stage, both rows
///   reachable from a dedicated ingress and egress edge router.
///
/// ```text
///                  U1 -- U2 -- ... -- Uk
///                 /  |     |           |  \
/// host1 -- D -- In   |     |           |   Out -- E -- host2
///                 \  |     |           |  /
///                  L1 -- L2 -- ... -- Lk
/// ```
///
/// * **Ring** ([`isp_ring_fanout`]) — `k` core routers in a cycle, the
///   ingress and egress edges attached at opposite points, giving exactly
///   two disjoint arcs between them.
///
/// Customer sites, addressing and the fan-out host pairs are identical to
/// the chain's ([`isp_chain_fanout`]), so every goal again runs real
/// end-to-end traffic.
#[derive(Debug)]
pub struct MeshTopology {
    /// The network.
    pub net: Network,
    /// Host in customer site 1 (10.0.1.5).
    pub host1: DeviceId,
    /// Customer router at site 1.
    pub customer1: DeviceId,
    /// ISP ingress edge router (customer-facing port 0, 192.168.0.2; port 1
    /// is left free for an NM station).
    pub ingress: DeviceId,
    /// Upper core row, in path order (empty on rings).
    pub upper: Vec<DeviceId>,
    /// Lower core row, in path order (empty on rings).
    pub lower: Vec<DeviceId>,
    /// Ring core routers, in cycle order (empty on meshes).
    pub ring: Vec<DeviceId>,
    /// ISP egress edge router (customer-facing port 0, 192.168.2.2).
    pub egress: DeviceId,
    /// Customer router at site 2.
    pub customer2: DeviceId,
    /// Host in customer site 2 (10.0.2.5).
    pub host2: DeviceId,
    /// Fan-out customer host pairs (see [`fanout_pair_subnets`]).
    pub fanout_pairs: Vec<(DeviceId, DeviceId)>,
    /// Core-facing ports of every ISP router, in the order they were wired —
    /// what a managed testbed needs to build the right router agents.
    pub core_ports: BTreeMap<DeviceId, Vec<u32>>,
}

impl MeshTopology {
    /// Every ISP router (edges first, then the core), in creation order.
    pub fn routers(&self) -> Vec<DeviceId> {
        let mut out = vec![self.ingress];
        out.extend(&self.upper);
        out.extend(&self.lower);
        out.extend(&self.ring);
        out.push(self.egress);
        out
    }

    /// The core routers only (no edges).
    pub fn core_routers(&self) -> Vec<DeviceId> {
        let mut out = Vec::new();
        out.extend(&self.upper);
        out.extend(&self.lower);
        out.extend(&self.ring);
        out
    }
}

/// Assign a fresh /24 (204.9.`(168 + link_no)`.0/24) to both ends of a core
/// link and connect it.  Every core link gets its own subnet, like the
/// chain's.
fn connect_core_link(net: &mut Network, link_no: &mut u32, a: (DeviceId, u32), b: (DeviceId, u32)) {
    let third = 168 + *link_no;
    assert!(third <= 255, "core-link subnet space exhausted");
    *link_no += 1;
    let a_addr = Ipv4Addr::new(204, 9, third as u8, 1);
    let b_addr = Ipv4Addr::new(204, 9, third as u8, 2);
    net.device_mut(a.0)
        .unwrap()
        .config
        .assign_address(a.1, Ipv4Cidr::new(a_addr, 24));
    net.device_mut(b.0)
        .unwrap()
        .config
        .assign_address(b.1, Ipv4Cidr::new(b_addr, 24));
    net.connect(
        (a.0, PortId(a.1)),
        (b.0, PortId(b.1)),
        LinkProperties::wan(),
    )
    .unwrap();
}

/// An ISP router for the mesh family: forwarding on, addresses assigned per
/// link as it is wired.
fn mesh_router(net: &mut Network, name: &str, ports: u32) -> DeviceId {
    let mut r = Device::new(name, DeviceRole::Router, ports);
    r.config.ip_forwarding = true;
    net.add_device(r)
}

/// Build the 2×k redundant-core mesh with `pairs` fan-out customer host
/// pairs.  `k >= 2` stages; see [`MeshTopology`] for the shape.
///
/// Port plan — ingress/egress: 0 customer-facing, 1 free (NM station),
/// 2 upper row, 3 lower row; row router `U_i`/`L_i`: 0 previous hop,
/// 1 next hop, 2 cross-link to the other row.
pub fn isp_mesh_fanout(k: usize, pairs: usize) -> MeshTopology {
    assert!(k >= 2, "the mesh needs at least two core stages");
    let mut net = Network::new();
    let (host1, customer1) = build_site1(&mut net, false, pairs);

    let ingress = mesh_router(&mut net, "RouterIn", 4);
    net.device_mut(ingress)
        .unwrap()
        .config
        .assign_address(0, cidr("192.168.0.2/24"));
    let upper: Vec<DeviceId> = (0..k)
        .map(|i| mesh_router(&mut net, &format!("RouterU{}", i + 1), 3))
        .collect();
    let lower: Vec<DeviceId> = (0..k)
        .map(|i| mesh_router(&mut net, &format!("RouterL{}", i + 1), 3))
        .collect();
    let egress = mesh_router(&mut net, "RouterOut", 4);
    net.device_mut(egress)
        .unwrap()
        .config
        .assign_address(0, cidr("192.168.2.2/24"));

    let mut link_no = 0u32;
    // Edge fan-in: the ingress reaches both rows, so do the rows the egress.
    connect_core_link(&mut net, &mut link_no, (ingress, 2), (upper[0], 0));
    connect_core_link(&mut net, &mut link_no, (ingress, 3), (lower[0], 0));
    // Row links.
    for i in 0..k - 1 {
        connect_core_link(&mut net, &mut link_no, (upper[i], 1), (upper[i + 1], 0));
        connect_core_link(&mut net, &mut link_no, (lower[i], 1), (lower[i + 1], 0));
    }
    // Cross-links: every stage can hop between the rows.
    for i in 0..k {
        connect_core_link(&mut net, &mut link_no, (upper[i], 2), (lower[i], 2));
    }
    connect_core_link(&mut net, &mut link_no, (upper[k - 1], 1), (egress, 2));
    connect_core_link(&mut net, &mut link_no, (lower[k - 1], 1), (egress, 3));

    let mut core_ports = BTreeMap::new();
    core_ports.insert(ingress, vec![2, 3]);
    core_ports.insert(egress, vec![2, 3]);
    for &u in upper.iter().chain(lower.iter()) {
        core_ports.insert(u, vec![0, 1, 2]);
    }

    let (customer2, host2) = build_site2(&mut net, false, pairs);
    net.connect(
        (host1, PortId(0)),
        (customer1, PortId(0)),
        LinkProperties::lan(),
    )
    .unwrap();
    net.connect(
        (customer1, PortId(1)),
        (ingress, PortId(0)),
        LinkProperties::lan(),
    )
    .unwrap();
    net.connect(
        (egress, PortId(0)),
        (customer2, PortId(1)),
        LinkProperties::lan(),
    )
    .unwrap();
    net.connect(
        (customer2, PortId(0)),
        (host2, PortId(0)),
        LinkProperties::lan(),
    )
    .unwrap();
    let fanout_pairs = attach_fanout_hosts(&mut net, customer1, customer2, pairs);

    MeshTopology {
        net,
        host1,
        customer1,
        ingress,
        upper,
        lower,
        ring: Vec::new(),
        egress,
        customer2,
        host2,
        fanout_pairs,
        core_ports,
    }
}

/// Build the ring variant: `k >= 4` core routers in a cycle, the ingress
/// edge attached at `R1` and the egress edge at `R(k/2 + 1)` — two disjoint
/// arcs between the edges, so any single ring-link cut leaves a route.
///
/// Port plan — edges: 0 customer-facing, 1 free (NM station), 2 ring
/// attach; ring router `R_i`: 0 previous in the cycle, 1 next, 2 edge
/// attach (only wired on the two attachment routers).
pub fn isp_ring_fanout(k: usize, pairs: usize) -> MeshTopology {
    assert!(k >= 4, "the ring needs at least four core routers");
    let mut net = Network::new();
    let (host1, customer1) = build_site1(&mut net, false, pairs);

    let ingress = mesh_router(&mut net, "RouterIn", 3);
    net.device_mut(ingress)
        .unwrap()
        .config
        .assign_address(0, cidr("192.168.0.2/24"));
    let ring: Vec<DeviceId> = (0..k)
        .map(|i| mesh_router(&mut net, &format!("RouterR{}", i + 1), 3))
        .collect();
    let egress = mesh_router(&mut net, "RouterOut", 3);
    net.device_mut(egress)
        .unwrap()
        .config
        .assign_address(0, cidr("192.168.2.2/24"));

    let mut link_no = 0u32;
    let attach = k / 2;
    connect_core_link(&mut net, &mut link_no, (ingress, 2), (ring[0], 2));
    connect_core_link(&mut net, &mut link_no, (egress, 2), (ring[attach], 2));
    for i in 0..k {
        connect_core_link(&mut net, &mut link_no, (ring[i], 1), (ring[(i + 1) % k], 0));
    }

    let mut core_ports = BTreeMap::new();
    core_ports.insert(ingress, vec![2]);
    core_ports.insert(egress, vec![2]);
    for (i, &r) in ring.iter().enumerate() {
        if i == 0 || i == attach {
            core_ports.insert(r, vec![0, 1, 2]);
        } else {
            core_ports.insert(r, vec![0, 1]);
        }
    }

    let (customer2, host2) = build_site2(&mut net, false, pairs);
    net.connect(
        (host1, PortId(0)),
        (customer1, PortId(0)),
        LinkProperties::lan(),
    )
    .unwrap();
    net.connect(
        (customer1, PortId(1)),
        (ingress, PortId(0)),
        LinkProperties::lan(),
    )
    .unwrap();
    net.connect(
        (egress, PortId(0)),
        (customer2, PortId(1)),
        LinkProperties::lan(),
    )
    .unwrap();
    net.connect(
        (customer2, PortId(0)),
        (host2, PortId(0)),
        LinkProperties::lan(),
    )
    .unwrap();
    let fanout_pairs = attach_fanout_hosts(&mut net, customer1, customer2, pairs);

    MeshTopology {
        net,
        host1,
        customer1,
        ingress,
        upper: Vec::new(),
        lower: Vec::new(),
        ring,
        egress,
        customer2,
        host2,
        fanout_pairs,
        core_ports,
    }
}

/// The Figure 2 GRE-tunnel testbed: two end devices A and B, a layer-2
/// switch C between A and the router D.
///
/// ```text
/// A ---- C (layer-2 switch) ---- D (router) ---- B
/// ```
#[derive(Debug)]
pub struct Figure2Testbed {
    /// The network.
    pub net: Network,
    /// End device A (204.9.168.1).
    pub a: DeviceId,
    /// End device B (204.9.169.1).
    pub b: DeviceId,
    /// The layer-2 switch C.
    pub c: DeviceId,
    /// The router D (204.9.168.2 / 204.9.169.2).
    pub d: DeviceId,
}

/// Build the Figure 2 testbed.
pub fn figure2() -> Figure2Testbed {
    let mut net = Network::new();

    let mut a = Device::new("DeviceA", DeviceRole::Host, 1);
    a.config.assign_address(0, cidr("204.9.168.1/24"));
    a.config.rib.add_main(Route {
        dest: Ipv4Cidr::DEFAULT,
        target: RouteTarget::Port {
            port: 0,
            via: Some(ip("204.9.168.2")),
        },
    });
    let a = net.add_device(a);

    let c = net.add_device(basic_switch("DeviceC", 2));

    let mut d = Device::new("DeviceD", DeviceRole::Router, 2);
    d.config.ip_forwarding = true;
    d.config.assign_address(0, cidr("204.9.168.2/24"));
    d.config.assign_address(1, cidr("204.9.169.2/24"));
    let d = net.add_device(d);

    let mut b = Device::new("DeviceB", DeviceRole::Host, 1);
    b.config.assign_address(0, cidr("204.9.169.1/24"));
    b.config.rib.add_main(Route {
        dest: Ipv4Cidr::DEFAULT,
        target: RouteTarget::Port {
            port: 0,
            via: Some(ip("204.9.169.2")),
        },
    });
    let b = net.add_device(b);

    net.connect((a, PortId(0)), (c, PortId(0)), LinkProperties::lan())
        .unwrap();
    net.connect((c, PortId(1)), (d, PortId(0)), LinkProperties::lan())
        .unwrap();
    net.connect((d, PortId(1)), (b, PortId(0)), LinkProperties::lan())
        .unwrap();

    Figure2Testbed { net, a, b, c, d }
}

/// The Figure 9 layer-2 VPN testbed: a chain of provider switches carrying a
/// customer VLAN tunnel between two customer routers on the same subnet.
#[derive(Debug)]
pub struct VlanChain {
    /// The network.
    pub net: Network,
    /// Customer router at site 1 (10.0.0.1/24).
    pub customer1: DeviceId,
    /// Provider switches in path order (SwitchA, SwitchB, SwitchC for n = 3).
    pub switches: Vec<DeviceId>,
    /// Customer router at site 2 (10.0.0.2/24).
    pub customer2: DeviceId,
}

/// Build a chain of `n >= 2` provider switches with a customer router at
/// each end.  Switch port plan: port 0 = customer-facing (edges only),
/// port 1 = previous switch, port 2 = next switch.  The switches start
/// unconfigured (all ports in access VLAN 1): the VLAN-tunnel configuration
/// is what the experiments apply.
pub fn vlan_chain(n: usize) -> VlanChain {
    assert!(n >= 2, "the chain needs at least two switches");
    let mut net = Network::new();

    let mut d = Device::new("CustomerD", DeviceRole::Host, 1);
    d.config.assign_address(0, cidr("10.0.0.1/24"));
    let customer1 = net.add_device(d);

    let mut switches = Vec::new();
    for i in 0..n {
        let name = if i < 26 {
            format!("Switch{}", (b'A' + i as u8) as char)
        } else {
            format!("Switch{}", i)
        };
        switches.push(net.add_device(basic_switch(&name, 3)));
    }

    let mut e = Device::new("CustomerE", DeviceRole::Host, 1);
    e.config.assign_address(0, cidr("10.0.0.2/24"));
    let customer2 = net.add_device(e);

    net.connect(
        (customer1, PortId(0)),
        (switches[0], PortId(0)),
        LinkProperties::lan(),
    )
    .unwrap();
    for i in 0..n - 1 {
        net.connect(
            (switches[i], PortId(2)),
            (switches[i + 1], PortId(1)),
            LinkProperties::lan(),
        )
        .unwrap();
    }
    net.connect(
        (switches[n - 1], PortId(0)),
        (customer2, PortId(0)),
        LinkProperties::lan(),
    )
    .unwrap();

    VlanChain {
        net,
        customer1,
        switches,
        customer2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_has_expected_devices_and_addresses() {
        let t = figure4();
        assert_eq!(t.core.len(), 3);
        let a = t.net.device(t.core[0]).unwrap();
        assert_eq!(a.name, "RouterA");
        assert!(a.config.is_local_address(ip("204.9.168.1")));
        assert!(a.config.is_local_address(ip("192.168.0.2")));
        let b = t.net.device(t.core[1]).unwrap();
        assert!(b.config.is_local_address(ip("204.9.168.2")));
        assert!(b.config.is_local_address(ip("204.9.169.2")));
        let c = t.net.device(t.core[2]).unwrap();
        assert!(c.config.is_local_address(ip("204.9.169.1")));
        assert_eq!(t.tunnel_endpoints(), (ip("204.9.168.1"), ip("204.9.169.1")));
        // 7 devices, 6 links.
        assert_eq!(t.net.device_ids().len(), 7);
        assert_eq!(t.net.links().len(), 6);
    }

    #[test]
    fn figure4_without_vpn_cannot_carry_customer_traffic() {
        // Before any VPN configuration the ISP does not know the customer
        // prefixes, so site-1 traffic to site 2 is dropped at the ingress.
        let mut t = figure4();
        t.net
            .send_udp(t.host1, ip("10.0.2.5"), 1000, 2000, b"before-vpn")
            .unwrap();
        t.net.run_to_quiescence(10_000);
        let delivered = t.net.device_mut(t.host2).unwrap().take_delivered();
        assert!(delivered.is_empty());
    }

    #[test]
    fn figure2_hosts_reach_the_router_but_not_each_other_without_tunnel_routes() {
        let mut t = figure2();
        // A can ping its gateway D across the switch.
        t.net.send_ping(t.a, ip("204.9.168.2"), 7, 1).unwrap();
        t.net.run_to_quiescence(10_000);
        let got = t.net.device_mut(t.a).unwrap().take_delivered();
        assert_eq!(got.len(), 1, "A should receive an echo reply from D");
        // And A can even reach B directly because D forwards between its
        // connected subnets — the tunnel the NM builds later adds ordering,
        // keys and isolation on top of this raw reachability.
        t.net.send_ping(t.a, ip("204.9.169.1"), 7, 2).unwrap();
        t.net.run_to_quiescence(10_000);
        let got = t.net.device_mut(t.a).unwrap().take_delivered();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn isp_chain_scales() {
        for n in [2usize, 4, 8] {
            let t = isp_chain(n);
            assert_eq!(t.core.len(), n);
            assert_eq!(t.core_link_addresses.len(), n - 1);
            assert_eq!(t.net.device_ids().len(), n + 4);
        }
    }

    #[test]
    fn dual_chain_adds_a_second_customer_pair_behind_the_same_routers() {
        let t = isp_chain_dual(3);
        let (h3, h4) = t.second_pair.expect("dual chain has a second pair");
        // 3 core + 2 customer routers + 4 hosts.
        assert_eq!(t.net.device_ids().len(), 9);
        assert!(t
            .net
            .device(h3)
            .unwrap()
            .config
            .is_local_address(ip("10.0.3.5")));
        assert!(t
            .net
            .device(h4)
            .unwrap()
            .config
            .is_local_address(ip("10.0.4.5")));
        // Without VPN state the ISP carries neither customer's traffic.
        let mut t = t;
        t.net
            .send_udp(h3, ip("10.0.4.5"), 1000, 2000, b"before-vpn-2")
            .unwrap();
        t.net.run_to_quiescence(10_000);
        assert!(t.net.device_mut(h4).unwrap().take_delivered().is_empty());
    }

    #[test]
    fn fanout_chain_adds_a_pair_per_lan_with_disjoint_subnets() {
        let t = isp_chain_fanout(3, 70); // crosses the 64-per-octet boundary
        assert_eq!(t.fanout_pairs.len(), 70);
        // 3 core + 2 customer routers + 2 base hosts + 140 fan-out hosts.
        assert_eq!(t.net.device_ids().len(), 147);
        let (h1, _) = t.fanout_pairs[0];
        let (h65a, h65b) = t.fanout_pairs[64];
        assert!(t
            .net
            .device(h1)
            .unwrap()
            .config
            .is_local_address(ip("10.1.0.5")));
        assert!(t
            .net
            .device(h65a)
            .unwrap()
            .config
            .is_local_address(ip("10.2.0.5")));
        assert!(t
            .net
            .device(h65b)
            .unwrap()
            .config
            .is_local_address(ip("10.2.1.5")));
        // Subnets are pairwise disjoint.
        let mut seen = std::collections::BTreeSet::new();
        for k in 0..70 {
            let (a, b) = fanout_pair_subnets(k);
            assert!(seen.insert(a.network()));
            assert!(seen.insert(b.network()));
        }
        // A fan-out host reaches its own gateway...
        let mut t = t;
        t.net.send_ping(h1, ip("10.1.0.1"), 1, 1).unwrap();
        t.net.run_to_quiescence(10_000);
        assert_eq!(t.net.device_mut(h1).unwrap().take_delivered().len(), 1);
        // ...but not its peer before any VPN is configured.
        let (src, dst) = t.fanout_pairs[1];
        let (_, dst_ip) = fanout_pair_hosts(1);
        t.net.send_udp(src, dst_ip, 1, 2, b"before-vpn").unwrap();
        t.net.run_to_quiescence(10_000);
        assert!(t.net.device_mut(dst).unwrap().take_delivered().is_empty());
    }

    #[test]
    fn mesh_has_a_redundant_core_with_cross_links() {
        let t = isp_mesh_fanout(2, 3);
        assert_eq!(t.upper.len(), 2);
        assert_eq!(t.lower.len(), 2);
        assert!(t.ring.is_empty());
        // 6 ISP routers + 2 customer routers + 2 base hosts + 6 fan-out hosts.
        assert_eq!(t.net.device_ids().len(), 16);
        // Core links: 2 edge-in + 2 row + 2 cross + 2 edge-out = 8, plus the
        // 4 customer-side links and 6 fan-out host links.
        assert_eq!(t.net.links().len(), 18);
        // Every advertised core link exists, and each end got an address in
        // the link's own /24.
        for (dev, ports) in &t.core_ports {
            for p in ports {
                assert!(
                    t.net
                        .device(*dev)
                        .unwrap()
                        .config
                        .address_on_port(*p)
                        .is_some(),
                    "core port {p} of {dev} must be addressed"
                );
            }
        }
        // The redundancy that matters: cutting any single upper-row link
        // leaves the lower row (and the cross-links) intact.
        assert!(t.net.link_between(t.upper[0], t.upper[1]).is_some());
        assert!(t.net.link_between(t.lower[0], t.lower[1]).is_some());
        assert!(t.net.link_between(t.upper[0], t.lower[0]).is_some());
        assert!(t.net.link_between(t.ingress, t.upper[0]).is_some());
        assert!(t.net.link_between(t.ingress, t.lower[0]).is_some());
        assert!(t.net.link_between(t.upper[1], t.egress).is_some());
        assert!(t.net.link_between(t.lower[1], t.egress).is_some());
        assert_eq!(t.routers().len(), 6);
        assert_eq!(t.core_routers().len(), 4);
    }

    #[test]
    fn mesh_fanout_hosts_cannot_cross_before_vpn_configuration() {
        let mut t = isp_mesh_fanout(2, 2);
        let (src, dst) = t.fanout_pairs[0];
        let (_, dst_ip) = fanout_pair_hosts(0);
        // A fan-out host reaches its own gateway...
        t.net.send_ping(src, ip("10.1.0.1"), 1, 1).unwrap();
        t.net.run_to_quiescence(10_000);
        assert_eq!(t.net.device_mut(src).unwrap().take_delivered().len(), 1);
        // ...but not its peer: the ISP mesh has no customer routes yet.
        t.net.send_udp(src, dst_ip, 1, 2, b"before-vpn").unwrap();
        t.net.run_to_quiescence(10_000);
        assert!(t.net.device_mut(dst).unwrap().take_delivered().is_empty());
    }

    #[test]
    fn ring_attaches_the_edges_on_opposite_arcs() {
        let t = isp_ring_fanout(4, 1);
        assert_eq!(t.ring.len(), 4);
        assert!(t.upper.is_empty() && t.lower.is_empty());
        // Ring cycle closed, edges on R1 and R3.
        for i in 0..4 {
            assert!(t.net.link_between(t.ring[i], t.ring[(i + 1) % 4]).is_some());
        }
        assert!(t.net.link_between(t.ingress, t.ring[0]).is_some());
        assert!(t.net.link_between(t.egress, t.ring[2]).is_some());
        // 6 ISP routers + 2 customer routers + 2 hosts + 2 fan-out hosts.
        assert_eq!(t.net.device_ids().len(), 12);
    }

    #[test]
    fn flow_windows_attribute_device_tallies_per_tag() {
        let mut t = isp_chain(2);
        // A tagged window around a burst credits the traffic to the tag.
        t.net.begin_flow_window(7);
        t.net
            .send_udp(t.host1, ip("10.0.1.1"), 1, 2, b"to-gateway")
            .unwrap();
        t.net.run_to_quiescence(10_000);
        t.net.end_flow_window();
        let f = t.net.flow_counters(t.host1, 7);
        assert_eq!(f.originated, 1);
        // A different tag saw nothing.
        assert!(t.net.flow_counters(t.host1, 8).is_empty());
        // Untagged traffic is credited to no flow.
        t.net
            .send_udp(t.host1, ip("10.0.1.1"), 1, 2, b"untagged")
            .unwrap();
        t.net.run_to_quiescence(10_000);
        assert_eq!(t.net.flow_counters(t.host1, 7).originated, 1);
    }

    #[test]
    fn vlan_chain_floods_untagged_frames_by_default() {
        // With all ports in the default VLAN the two customers can already
        // exchange frames (no isolation!) — the VLAN tunnel configuration is
        // about isolating customer traffic, which the VPN tests verify.
        let mut t = vlan_chain(3);
        t.net
            .send_udp(t.customer1, ip("10.0.0.2"), 5, 6, b"flooded")
            .unwrap();
        t.net.run_to_quiescence(10_000);
        let delivered = t.net.device_mut(t.customer2).unwrap().take_delivered();
        assert_eq!(delivered.len(), 1);
    }
}
