//! Physical links.
//!
//! CONMan models real network links as *physical pipes* which the NM can
//! discover and enable but not create (§II-C.1).  Links can be point-to-point
//! or broadcast; the latter models a shared Ethernet segment.

use crate::clock::SimDuration;
use crate::device::{DeviceId, PortId};
use serde::{Deserialize, Serialize};

/// Identifier of a link within a [`crate::network::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// Performance characteristics of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkProperties {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Bandwidth in bits per second (0 means "infinite": no serialization
    /// delay is modelled).
    pub bandwidth_bps: u64,
    /// Packet loss probability in parts per million (deterministic losses
    /// are injected by the fault-injection tests, not sampled here).
    pub loss_ppm: u32,
    /// Administrative state; frames on a disabled link are dropped.
    pub enabled: bool,
}

impl Default for LinkProperties {
    fn default() -> Self {
        LinkProperties {
            latency: SimDuration::from_micros(50),
            bandwidth_bps: 1_000_000_000,
            loss_ppm: 0,
            enabled: true,
        }
    }
}

impl LinkProperties {
    /// A LAN-like link: 1 Gbps, 50 microseconds.
    pub fn lan() -> Self {
        Self::default()
    }

    /// A WAN-like link: 100 Mbps, 5 ms.
    pub fn wan() -> Self {
        LinkProperties {
            latency: SimDuration::from_millis(5),
            bandwidth_bps: 100_000_000,
            ..Self::default()
        }
    }
}

/// One attachment point of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Endpoint {
    /// Attached device.
    pub device: DeviceId,
    /// Attached port on that device.
    pub port: PortId,
}

/// A physical link connecting two or more endpoints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// Link identifier.
    pub id: LinkId,
    /// Attached endpoints.  Two endpoints model a point-to-point cable; more
    /// model a broadcast segment.
    pub endpoints: Vec<Endpoint>,
    /// Performance properties.
    pub properties: LinkProperties,
}

impl Link {
    /// Create a point-to-point link.
    pub fn point_to_point(
        id: LinkId,
        a: Endpoint,
        b: Endpoint,
        properties: LinkProperties,
    ) -> Self {
        Link {
            id,
            endpoints: vec![a, b],
            properties,
        }
    }

    /// All endpoints other than `from` (the receivers of a transmission).
    pub fn other_endpoints(&self, from: Endpoint) -> impl Iterator<Item = Endpoint> + '_ {
        self.endpoints.iter().copied().filter(move |e| *e != from)
    }

    /// Is this a broadcast (more than two endpoints) segment?
    pub fn is_broadcast(&self) -> bool {
        self.endpoints.len() > 2
    }

    /// Time for `bytes` to fully arrive at the far end(s).
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        self.properties.latency + SimDuration::serialization(bytes, self.properties.bandwidth_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceId;

    fn ep(d: u64, p: u32) -> Endpoint {
        Endpoint {
            device: DeviceId::from_raw(d),
            port: PortId(p),
        }
    }

    #[test]
    fn point_to_point_other_endpoint() {
        let l = Link::point_to_point(LinkId(0), ep(1, 0), ep(2, 1), LinkProperties::lan());
        let others: Vec<_> = l.other_endpoints(ep(1, 0)).collect();
        assert_eq!(others, vec![ep(2, 1)]);
        assert!(!l.is_broadcast());
    }

    #[test]
    fn broadcast_segment() {
        let l = Link {
            id: LinkId(1),
            endpoints: vec![ep(1, 0), ep(2, 0), ep(3, 0)],
            properties: LinkProperties::lan(),
        };
        assert!(l.is_broadcast());
        assert_eq!(l.other_endpoints(ep(2, 0)).count(), 2);
    }

    #[test]
    fn transfer_time_includes_serialization() {
        let l = Link::point_to_point(LinkId(0), ep(1, 0), ep(2, 0), LinkProperties::lan());
        let t = l.transfer_time(1500);
        assert_eq!(t.as_micros(), 50 + 12);
        let wan = Link::point_to_point(LinkId(0), ep(1, 0), ep(2, 0), LinkProperties::wan());
        assert!(wan.transfer_time(1500) > t);
    }
}
