//! # netsim — deterministic packet-level network simulator
//!
//! This crate is the data-plane substrate for the CONMan reproduction.  The
//! original paper ran its protocol modules as user-level wrappers around the
//! Linux 2.6.14 networking stack on a five-machine testbed; here the same
//! protocols (Ethernet, ARP, IPv4, GRE, MPLS, 802.1Q VLAN, UDP, ICMP) are
//! implemented as byte-accurate codecs and a configurable forwarding engine
//! driven by a discrete-event scheduler.
//!
//! The simulator is intentionally synchronous and deterministic (smoltcp-style
//! poll-driven design rather than an async runtime): every run with the same
//! seed and the same configuration produces the same packet trace, which makes
//! the reproduction experiments and property tests stable.
//!
//! ## Layout
//!
//! * [`clock`] / [`event`] — simulated time and the event queue.
//! * [`mac`], [`ether`], [`vlan`], [`arp`], [`ipv4`], [`gre`], [`mpls`],
//!   [`udp`], [`icmp`] — wire-format codecs.
//! * [`route`] — longest-prefix-match routing tables and policy rules
//!   (the iproute2 `rule`/`table` model used by the paper's scripts).
//! * [`config`] — the device configuration written by CONMan modules or by
//!   the legacy ("today") scripts.
//! * [`engine`] — the forwarding engine (host / router / layer-2 switch).
//! * [`device`], [`nic`], [`link`], [`network`] — devices, ports, links and
//!   the network event loop.
//! * [`topology`] — canned topologies, including the paper's Figure 4 testbed.
//! * [`trace`], [`stats`] — packet traces and counters used by the tests and
//!   the experiment harness.
//! * [`fault`] — deterministic fault injection (link cuts/flaps, loss
//!   spikes, device crashes, misconfigurations) for the diagnosis layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arp;
pub mod clock;
pub mod config;
pub mod device;
pub mod engine;
pub mod ether;
pub mod event;
pub mod fault;
pub mod gre;
pub mod icmp;
pub mod ipv4;
pub mod link;
pub mod mac;
pub mod mpls;
pub mod network;
pub mod nic;
pub mod route;
pub mod stats;
pub mod topology;
pub mod trace;
pub mod udp;
pub mod vlan;

pub use clock::{SimDuration, SimTime};
pub use config::DeviceConfig;
pub use device::{Device, DeviceId, DeviceRole, PortId};
pub use ether::{EtherType, EthernetFrame};
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultPlan, Misconfiguration};
pub use ipv4::{Ipv4Cidr, Ipv4Header, Ipv4Proto};
pub use link::{Link, LinkId, LinkProperties};
pub use mac::MacAddr;
pub use network::Network;
pub use stats::{DeviceStats, DropReason, FlowCounters};
pub use trace::{PacketSummary, TraceEntry};

/// Errors produced while encoding or decoding wire formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer was shorter than the fixed header requires.
    Truncated {
        /// Protocol whose header was truncated.
        what: &'static str,
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A checksum did not verify.
    BadChecksum(&'static str),
    /// A field held a value the codec cannot interpret.
    BadField {
        /// Protocol and field name.
        what: &'static str,
        /// Offending value.
        value: u64,
    },
    /// The header advertised an unsupported version.
    BadVersion {
        /// Protocol name.
        what: &'static str,
        /// Version found.
        version: u8,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { what, needed, got } => {
                write!(
                    f,
                    "{what}: truncated header (need {needed} bytes, got {got})"
                )
            }
            CodecError::BadChecksum(what) => write!(f, "{what}: checksum mismatch"),
            CodecError::BadField { what, value } => {
                write!(f, "{what}: unsupported field value {value}")
            }
            CodecError::BadVersion { what, version } => {
                write!(f, "{what}: unsupported version {version}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Convenience result alias for codec operations.
pub type CodecResult<T> = Result<T, CodecError>;
