//! Ethernet MAC addresses.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address, used as a placeholder in ARP requests.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Construct from raw octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Deterministically derive a locally-administered unicast MAC address
    /// from a device index and port index.  Used by the topology builders so
    /// that addresses are stable across runs.
    pub fn for_port(device_index: u32, port_index: u32) -> Self {
        let d = device_index.to_be_bytes();
        let p = (port_index as u16).to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, d[1], d[2], d[3], p[0], p[1]])
    }

    /// Raw octets.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// Is this the broadcast address?
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Is this a multicast (group) address?
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Is this a unicast address?
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast()
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// Error parsing a textual MAC address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacParseError(String);

impl fmt::Display for MacParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address: {}", self.0)
    }
}

impl std::error::Error for MacParseError {}

impl FromStr for MacAddr {
    type Err = MacParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 6 {
            return Err(MacParseError(s.to_string()));
        }
        let mut octets = [0u8; 6];
        for (i, p) in parts.iter().enumerate() {
            octets[i] = u8::from_str_radix(p, 16).map_err(|_| MacParseError(s.to_string()))?;
        }
        Ok(MacAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let m = MacAddr::new([0x02, 0x00, 0x00, 0x01, 0x00, 0x02]);
        let s = m.to_string();
        assert_eq!(s, "02:00:00:01:00:02");
        assert_eq!(s.parse::<MacAddr>().unwrap(), m);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("02:00:00:01:00".parse::<MacAddr>().is_err());
        assert!("zz:00:00:01:00:02".parse::<MacAddr>().is_err());
        assert!("".parse::<MacAddr>().is_err());
    }

    #[test]
    fn classification() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        let m = MacAddr::for_port(1, 2);
        assert!(m.is_unicast());
        assert!(!m.is_broadcast());
    }

    #[test]
    fn for_port_is_stable_and_distinct() {
        assert_eq!(MacAddr::for_port(3, 1), MacAddr::for_port(3, 1));
        assert_ne!(MacAddr::for_port(3, 1), MacAddr::for_port(3, 2));
        assert_ne!(MacAddr::for_port(3, 1), MacAddr::for_port(4, 1));
    }
}
