//! ARP (RFC 826) packets and a per-device ARP cache.
//!
//! The paper notes (§II-C.1, footnote 2) that the CONMan IP module may either
//! learn its peer's MAC address through the management channel or simply rely
//! on ARP; our IP module implementation relies on ARP, so the simulator
//! provides a faithful request/reply implementation with a cache and a
//! pending-packet queue.

use crate::mac::MacAddr;
use crate::{CodecError, CodecResult};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Length of an ARP packet for Ethernet/IPv4.
pub const ARP_LEN: usize = 28;

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArpOp {
    /// Who-has request.
    Request,
    /// Is-at reply.
    Reply,
}

/// An ARP packet for IPv4 over Ethernet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArpPacket {
    /// Operation (request or reply).
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// Build a who-has request for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Build a reply answering `request`.
    pub fn reply_to(&self, our_mac: MacAddr) -> Self {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: our_mac,
            sender_ip: self.target_ip,
            target_mac: self.sender_mac,
            target_ip: self.sender_ip,
        }
    }

    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ARP_LEN);
        out.extend_from_slice(&1u16.to_be_bytes()); // htype ethernet
        out.extend_from_slice(&0x0800u16.to_be_bytes()); // ptype ipv4
        out.push(6); // hlen
        out.push(4); // plen
        let op: u16 = match self.op {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        };
        out.extend_from_slice(&op.to_be_bytes());
        out.extend_from_slice(&self.sender_mac.octets());
        out.extend_from_slice(&self.sender_ip.octets());
        out.extend_from_slice(&self.target_mac.octets());
        out.extend_from_slice(&self.target_ip.octets());
        out
    }

    /// Decode from wire bytes.
    pub fn decode(bytes: &[u8]) -> CodecResult<Self> {
        if bytes.len() < ARP_LEN {
            return Err(CodecError::Truncated {
                what: "arp",
                needed: ARP_LEN,
                got: bytes.len(),
            });
        }
        let op_raw = u16::from_be_bytes([bytes[6], bytes[7]]);
        let op = match op_raw {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            other => {
                return Err(CodecError::BadField {
                    what: "arp op",
                    value: other as u64,
                })
            }
        };
        let mac = |o: usize| {
            let mut m = [0u8; 6];
            m.copy_from_slice(&bytes[o..o + 6]);
            MacAddr(m)
        };
        let ip = |o: usize| Ipv4Addr::new(bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]);
        Ok(ArpPacket {
            op,
            sender_mac: mac(8),
            sender_ip: ip(14),
            target_mac: mac(18),
            target_ip: ip(24),
        })
    }
}

/// A simple ARP cache with a pending-packet queue per unresolved address.
#[derive(Debug, Default)]
pub struct ArpCache {
    entries: HashMap<Ipv4Addr, MacAddr>,
    /// Packets (already IPv4-encoded) waiting for address resolution,
    /// together with the port they should leave from.
    pending: HashMap<Ipv4Addr, Vec<PendingPacket>>,
}

/// A packet parked while ARP resolution completes.
#[derive(Debug, Clone)]
pub struct PendingPacket {
    /// Egress port index on the device.
    pub port: u32,
    /// The IPv4 packet (or MPLS payload) bytes to send once resolved.
    pub bytes: Vec<u8>,
    /// EtherType to use when finally transmitting.
    pub ethertype: u16,
}

impl ArpCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a resolved MAC address.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.entries.get(&ip).copied()
    }

    /// Insert or refresh an entry, returning any packets that were waiting
    /// for this resolution.
    pub fn insert(&mut self, ip: Ipv4Addr, mac: MacAddr) -> Vec<PendingPacket> {
        self.entries.insert(ip, mac);
        self.pending.remove(&ip).unwrap_or_default()
    }

    /// Park a packet until `ip` resolves. Returns `true` if an ARP request
    /// should be emitted (i.e. this is the first packet waiting).
    pub fn park(&mut self, ip: Ipv4Addr, packet: PendingPacket) -> bool {
        let queue = self.pending.entry(ip).or_default();
        queue.push(packet);
        queue.len() == 1
    }

    /// Number of resolved entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over resolved entries (for showActual-style reporting).
    pub fn entries(&self) -> impl Iterator<Item = (Ipv4Addr, MacAddr)> + '_ {
        self.entries.iter().map(|(ip, mac)| (*ip, *mac))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_roundtrip() {
        let req = ArpPacket::request(
            MacAddr::for_port(1, 0),
            Ipv4Addr::new(204, 9, 168, 1),
            Ipv4Addr::new(204, 9, 168, 2),
        );
        let dec = ArpPacket::decode(&req.encode()).unwrap();
        assert_eq!(req, dec);
        assert_eq!(dec.op, ArpOp::Request);
    }

    #[test]
    fn reply_swaps_roles() {
        let req = ArpPacket::request(
            MacAddr::for_port(1, 0),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let rep = req.reply_to(MacAddr::for_port(2, 0));
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.sender_ip, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(rep.target_ip, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(rep.target_mac, MacAddr::for_port(1, 0));
    }

    #[test]
    fn decode_errors() {
        assert!(ArpPacket::decode(&[0u8; 4]).is_err());
        let mut bytes =
            ArpPacket::request(MacAddr::ZERO, Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED)
                .encode();
        bytes[7] = 9; // bogus op
        assert!(ArpPacket::decode(&bytes).is_err());
    }

    #[test]
    fn cache_parks_and_releases() {
        let mut cache = ArpCache::new();
        let ip = Ipv4Addr::new(10, 0, 0, 2);
        let pkt = PendingPacket {
            port: 1,
            bytes: vec![1, 2, 3],
            ethertype: 0x0800,
        };
        assert!(cache.park(ip, pkt.clone()));
        assert!(!cache.park(ip, pkt.clone())); // second packet, no new request
        assert!(cache.lookup(ip).is_none());
        let released = cache.insert(ip, MacAddr::for_port(2, 0));
        assert_eq!(released.len(), 2);
        assert_eq!(cache.lookup(ip), Some(MacAddr::for_port(2, 0)));
        assert!(cache.insert(ip, MacAddr::for_port(2, 0)).is_empty());
    }
}
