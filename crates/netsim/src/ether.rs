//! Ethernet II framing.

use crate::mac::MacAddr;
use crate::{CodecError, CodecResult};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Length of an Ethernet II header (no 802.1Q tag).
pub const ETHERNET_HEADER_LEN: usize = 14;

/// EtherType values understood by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// 802.1Q VLAN tag (0x8100).
    Vlan,
    /// MPLS unicast (0x8847).
    Mpls,
    /// CONMan management channel frames (experimental ethertype 0x88B5,
    /// the IEEE "local experimental" value, used by the in-band channel).
    Management,
    /// Anything else, carried through untouched.
    Other(u16),
}

impl EtherType {
    /// The numeric EtherType.
    pub fn as_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Vlan => 0x8100,
            EtherType::Mpls => 0x8847,
            EtherType::Management => 0x88B5,
            EtherType::Other(v) => v,
        }
    }

    /// Interpret a numeric EtherType.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x8100 => EtherType::Vlan,
            0x8847 => EtherType::Mpls,
            0x88B5 => EtherType::Management,
            other => EtherType::Other(other),
        }
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtherType::Ipv4 => write!(f, "IPv4"),
            EtherType::Arp => write!(f, "ARP"),
            EtherType::Vlan => write!(f, "802.1Q"),
            EtherType::Mpls => write!(f, "MPLS"),
            EtherType::Management => write!(f, "MGMT"),
            EtherType::Other(v) => write!(f, "0x{v:04x}"),
        }
    }
}

/// A decoded Ethernet II frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// EtherType of the payload.
    pub ethertype: EtherType,
    /// Payload bytes (everything after the 14-byte header).
    pub payload: Vec<u8>,
}

impl EthernetFrame {
    /// Build a frame.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Vec<u8>) -> Self {
        EthernetFrame {
            dst,
            src,
            ethertype,
            payload,
        }
    }

    /// Serialize to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ETHERNET_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.dst.octets());
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.ethertype.as_u16().to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse from wire bytes.
    pub fn decode(bytes: &[u8]) -> CodecResult<Self> {
        if bytes.len() < ETHERNET_HEADER_LEN {
            return Err(CodecError::Truncated {
                what: "ethernet",
                needed: ETHERNET_HEADER_LEN,
                got: bytes.len(),
            });
        }
        let mut dst = [0u8; 6];
        dst.copy_from_slice(&bytes[0..6]);
        let mut src = [0u8; 6];
        src.copy_from_slice(&bytes[6..12]);
        let ethertype = EtherType::from_u16(u16::from_be_bytes([bytes[12], bytes[13]]));
        Ok(EthernetFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload: bytes[ETHERNET_HEADER_LEN..].to_vec(),
        })
    }

    /// Total encoded length in bytes.
    pub fn wire_len(&self) -> usize {
        ETHERNET_HEADER_LEN + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let f = EthernetFrame::new(
            MacAddr::BROADCAST,
            MacAddr::for_port(1, 0),
            EtherType::Ipv4,
            vec![1, 2, 3, 4],
        );
        let bytes = f.encode();
        assert_eq!(bytes.len(), 18);
        let g = EthernetFrame::decode(&bytes).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn decode_truncated() {
        let err = EthernetFrame::decode(&[0u8; 5]).unwrap_err();
        assert!(matches!(
            err,
            CodecError::Truncated {
                what: "ethernet",
                ..
            }
        ));
    }

    #[test]
    fn ethertype_mapping() {
        for ty in [
            EtherType::Ipv4,
            EtherType::Arp,
            EtherType::Vlan,
            EtherType::Mpls,
            EtherType::Management,
            EtherType::Other(0x1234),
        ] {
            assert_eq!(EtherType::from_u16(ty.as_u16()), ty);
        }
    }

    #[test]
    fn empty_payload_is_allowed() {
        let f = EthernetFrame::new(
            MacAddr::for_port(1, 0),
            MacAddr::for_port(2, 0),
            EtherType::Management,
            vec![],
        );
        let g = EthernetFrame::decode(&f.encode()).unwrap();
        assert!(g.payload.is_empty());
    }
}
