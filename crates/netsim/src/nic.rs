//! Network interface (port) model.

use crate::link::LinkId;
use crate::mac::MacAddr;
use serde::{Deserialize, Serialize};

/// A network interface on a device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Nic {
    /// Port index within the device (0-based).
    pub index: u32,
    /// Interface name (`eth0`, `eth1`, ... by default).
    pub name: String,
    /// MAC address.
    pub mac: MacAddr,
    /// Link this port is attached to, if any.
    pub link: Option<LinkId>,
    /// Administrative state.
    pub up: bool,
    /// MTU in bytes.
    pub mtu: u16,
}

impl Nic {
    /// Create an interface with a default name derived from its index.
    pub fn new(index: u32, mac: MacAddr) -> Self {
        Nic {
            index,
            name: format!("eth{index}"),
            mac,
            link: None,
            up: true,
            mtu: 1500,
        }
    }

    /// Create an interface with an explicit name.
    pub fn named(index: u32, name: impl Into<String>, mac: MacAddr) -> Self {
        Nic {
            name: name.into(),
            ..Nic::new(index, mac)
        }
    }

    /// Is the port attached to a link and administratively up?
    pub fn is_usable(&self) -> bool {
        self.up && self.link.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let nic = Nic::new(2, MacAddr::for_port(1, 2));
        assert_eq!(nic.name, "eth2");
        assert_eq!(nic.mtu, 1500);
        assert!(nic.up);
        assert!(!nic.is_usable()); // no link yet
    }

    #[test]
    fn named_ports() {
        let nic = Nic::named(0, "gigabitethernet0/9", MacAddr::for_port(1, 0));
        assert_eq!(nic.name, "gigabitethernet0/9");
        assert_eq!(nic.index, 0);
    }
}
