//! Fault injection: deterministic, replayable fault timelines.
//!
//! CONMan's §III-C argues that the same machinery that configures a network
//! can diagnose it.  To exercise that claim the simulator needs faults worth
//! diagnosing: link cuts and flaps, loss spikes, device crashes and module
//! misconfigurations.  A [`FaultPlan`] is a time-ordered list of such events
//! driven by the deterministic simulation clock, so a scenario replays
//! *exactly* — same seed, same timeline, same packet-level outcome — which is
//! what the diagnosis tests and the time-to-detect/time-to-repair experiments
//! rely on.

use crate::clock::SimTime;
use crate::device::DeviceId;
use crate::link::LinkId;
use crate::network::Network;
use crate::route::RouteTableId;
use serde::{Deserialize, Serialize};

/// A configuration-level fault: state on a device is corrupted or lost, the
/// classic "confused/buggy/malicious station" failures of §III-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Misconfiguration {
    /// Shift every GRE tunnel's receive key on the device (`ikey += delta`),
    /// the key-mismatch misconfiguration the paper repeatedly cites.
    CorruptGreKey {
        /// Device whose tunnels are corrupted.
        device: DeviceId,
        /// Amount added to each configured `ikey`.
        delta: u32,
    },
    /// Drop the device's MPLS ILM/NHLFE/cross-connect state, killing every
    /// LSP through it while leaving IP forwarding intact.
    ClearMplsState {
        /// Device whose label state is flushed.
        device: DeviceId,
    },
    /// Flush all policy-routing rules and non-main tables, the
    /// "operator fat-fingers the router config" failure.
    FlushPolicyRouting {
        /// Device whose policy routing is flushed.
        device: DeviceId,
    },
    /// Flush a contiguous range of non-main route tables (and the policy
    /// rules pointing at them) on one device.  Because the NM derives a
    /// goal's table ids from its disjoint pipe-id block, a range covering
    /// exactly one goal's block is a *per-flow* fault: that goal's transit
    /// state vanishes while every other goal through the same device keeps
    /// forwarding — the scenario that separates per-goal counter
    /// attribution from device-total diagnosis.
    FlushRouteTables {
        /// Device whose tables are flushed.
        device: DeviceId,
        /// First table id of the flushed range (inclusive).
        first: RouteTableId,
        /// Last table id of the flushed range (inclusive).
        last: RouteTableId,
    },
}

impl Misconfiguration {
    /// The device the misconfiguration hits.
    pub fn device(&self) -> DeviceId {
        match self {
            Misconfiguration::CorruptGreKey { device, .. }
            | Misconfiguration::ClearMplsState { device }
            | Misconfiguration::FlushPolicyRouting { device }
            | Misconfiguration::FlushRouteTables { device, .. } => *device,
        }
    }
}

/// One injectable fault (or repair) action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Administratively cut a link (the wire is yanked).
    LinkCut(LinkId),
    /// Re-enable a previously cut link.
    LinkRestore(LinkId),
    /// Set a link's deterministic loss rate in parts per million
    /// (1_000_000 = blackhole while staying administratively up).
    LossSpike {
        /// Affected link.
        link: LinkId,
        /// New loss rate in parts per million.
        loss_ppm: u32,
    },
    /// Power off a device: it stops forwarding *and* stops answering the
    /// management channel.
    DeviceCrash(DeviceId),
    /// Power a crashed device back on (its configuration survives; runtime
    /// caches are flushed as after a reboot).
    DeviceRestore(DeviceId),
    /// Corrupt or lose configuration state on a device.
    Misconfigure(Misconfiguration),
}

/// A fault scheduled at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, time-ordered fault timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule an event (builder style).  Events are kept sorted by time;
    /// ties preserve insertion order.
    pub fn at(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.push(at, kind);
        self
    }

    /// Schedule an event in place.
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, FaultEvent { at, kind });
    }

    /// Schedule a link flap: `cycles` repetitions of cut-then-restore,
    /// starting at `start`, down for `down_for` and up for `up_for` per
    /// cycle.
    pub fn flap(
        mut self,
        link: LinkId,
        start: SimTime,
        down_for: crate::clock::SimDuration,
        up_for: crate::clock::SimDuration,
        cycles: u32,
    ) -> Self {
        let mut t = start;
        for _ in 0..cycles {
            self.push(t, FaultKind::LinkCut(link));
            t += down_for;
            self.push(t, FaultKind::LinkRestore(link));
            t += up_for;
        }
        self
    }

    /// Generate a pseudo-random flap schedule over `links`.  The schedule is
    /// a pure function of `seed`: the same seed always yields the identical
    /// timeline (splitmix64, no global RNG), so experiments replay exactly.
    pub fn random_flaps(
        seed: u64,
        links: &[LinkId],
        start: SimTime,
        horizon: crate::clock::SimDuration,
        count: u32,
    ) -> Self {
        let mut plan = FaultPlan::new();
        if links.is_empty() || horizon.as_nanos() == 0 {
            return plan;
        }
        let mut counter = seed;
        let mut next = move || -> u64 {
            counter = counter.wrapping_add(1);
            crate::clock::splitmix64(counter)
        };
        for _ in 0..count {
            let link = links[(next() % links.len() as u64) as usize];
            let offset = next() % horizon.as_nanos();
            let down = 1 + next() % (horizon.as_nanos() / 4).max(1);
            let cut_at = start + crate::clock::SimDuration::from_nanos(offset);
            plan.push(cut_at, FaultKind::LinkCut(link));
            plan.push(
                cut_at + crate::clock::SimDuration::from_nanos(down),
                FaultKind::LinkRestore(link),
            );
        }
        plan
    }

    /// The scheduled events in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the plan empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Applies a [`FaultPlan`] to a network as simulated time advances.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    cursor: usize,
    /// Events applied so far, in application order.
    pub applied: Vec<FaultEvent>,
}

impl FaultInjector {
    /// Create an injector over a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            cursor: 0,
            applied: Vec::new(),
        }
    }

    /// Events not yet applied.
    pub fn pending(&self) -> usize {
        self.plan.events.len() - self.cursor
    }

    /// Apply every event whose time has come (`at <= net.now()`).  Returns
    /// the number of events applied.
    pub fn apply_due(&mut self, net: &mut Network) -> usize {
        let now = net.now();
        let mut applied = 0;
        while let Some(event) = self.plan.events.get(self.cursor) {
            if event.at > now {
                break;
            }
            apply_fault(net, event.kind);
            self.applied.push(*event);
            self.cursor += 1;
            applied += 1;
        }
        applied
    }
}

/// Apply a single fault to the network, immediately.
pub fn apply_fault(net: &mut Network, kind: FaultKind) {
    match kind {
        FaultKind::LinkCut(link) => net.set_link_enabled(link, false),
        FaultKind::LinkRestore(link) => net.set_link_enabled(link, true),
        FaultKind::LossSpike { link, loss_ppm } => net.set_link_loss(link, loss_ppm),
        FaultKind::DeviceCrash(device) => net.set_device_up(device, false),
        FaultKind::DeviceRestore(device) => net.set_device_up(device, true),
        FaultKind::Misconfigure(m) => apply_misconfiguration(net, m),
    }
}

fn apply_misconfiguration(net: &mut Network, m: Misconfiguration) {
    let Ok(device) = net.device_mut(m.device()) else {
        return;
    };
    match m {
        Misconfiguration::CorruptGreKey { delta, .. } => {
            for tunnel in device.config.tunnels.values_mut() {
                if let Some(ikey) = tunnel.ikey.as_mut() {
                    *ikey = ikey.wrapping_add(delta);
                }
            }
        }
        Misconfiguration::ClearMplsState { .. } => {
            device.config.mpls = crate::mpls::MplsTables::new();
        }
        Misconfiguration::FlushPolicyRouting { .. } => {
            let main = device
                .config
                .rib
                .table(RouteTableId::MAIN)
                .cloned()
                .unwrap_or_default();
            let mut rib = crate::route::Rib::new();
            for route in main.routes() {
                rib.add_main(*route);
            }
            device.config.rib = rib;
        }
        Misconfiguration::FlushRouteTables { first, last, .. } => {
            let in_range = |id: RouteTableId| id != RouteTableId::MAIN && id >= first && id <= last;
            let tables: Vec<RouteTableId> = device
                .config
                .rib
                .tables()
                .map(|(id, _)| id)
                .filter(|id| in_range(*id))
                .collect();
            for id in tables {
                device.config.rib.drop_table(id);
            }
            let rules: Vec<(u32, RouteTableId)> = device
                .config
                .rib
                .rules()
                .iter()
                .filter(|r| in_range(r.table))
                .map(|r| (r.priority, r.table))
                .collect();
            for (priority, table) in rules {
                device.config.rib.remove_rule(priority, table);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;
    use crate::config::TunnelConfig;
    use crate::device::{Device, DeviceRole, PortId};
    use crate::link::LinkProperties;

    #[test]
    fn plans_stay_sorted_and_flaps_expand() {
        let plan = FaultPlan::new()
            .at(SimTime::from_millis(50), FaultKind::LinkCut(LinkId(1)))
            .at(SimTime::from_millis(10), FaultKind::LinkCut(LinkId(0)))
            .flap(
                LinkId(2),
                SimTime::from_millis(20),
                SimDuration::from_millis(5),
                SimDuration::from_millis(5),
                2,
            );
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_nanos()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert_eq!(plan.len(), 6); // 2 cuts + 2 flap cycles x 2 events
    }

    #[test]
    fn random_flaps_are_deterministic() {
        let links = [LinkId(0), LinkId(1), LinkId(2)];
        let a = FaultPlan::random_flaps(42, &links, SimTime::ZERO, SimDuration::from_secs(1), 8);
        let b = FaultPlan::random_flaps(42, &links, SimTime::ZERO, SimDuration::from_secs(1), 8);
        assert_eq!(a, b, "same seed must give the identical timeline");
        let c = FaultPlan::random_flaps(43, &links, SimTime::ZERO, SimDuration::from_secs(1), 8);
        assert_ne!(a, c, "different seeds should diverge");
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn injector_applies_events_as_time_passes() {
        let mut net = Network::new();
        let mut h1 = Device::new("h1", DeviceRole::Host, 1);
        h1.config.assign_address(0, "10.0.0.1/24".parse().unwrap());
        let mut h2 = Device::new("h2", DeviceRole::Host, 1);
        h2.config.assign_address(0, "10.0.0.2/24".parse().unwrap());
        let h1 = net.add_device(h1);
        let h2 = net.add_device(h2);
        let link = net
            .connect((h1, PortId(0)), (h2, PortId(0)), LinkProperties::lan())
            .unwrap();

        let plan = FaultPlan::new().at(SimTime::from_millis(1), FaultKind::LinkCut(link));
        let mut injector = FaultInjector::new(plan);
        assert_eq!(injector.apply_due(&mut net), 0, "not due yet");

        net.send_udp(h1, "10.0.0.2".parse().unwrap(), 1, 2, b"pre")
            .unwrap();
        net.run_to_quiescence(1000);
        assert_eq!(net.device_mut(h2).unwrap().take_delivered().len(), 1);

        net.run_for(SimDuration::from_millis(2));
        assert_eq!(injector.apply_due(&mut net), 1);
        net.send_udp(h1, "10.0.0.2".parse().unwrap(), 1, 2, b"post")
            .unwrap();
        net.run_to_quiescence(1000);
        assert!(net.device_mut(h2).unwrap().take_delivered().is_empty());
        assert_eq!(injector.pending(), 0);
    }

    #[test]
    fn misconfigurations_mutate_device_state() {
        let mut net = Network::new();
        let mut r = Device::new("r", DeviceRole::Router, 1);
        let mut tun = TunnelConfig::gre(
            1,
            "gre1",
            "1.1.1.1".parse().unwrap(),
            "2.2.2.2".parse().unwrap(),
        );
        tun.ikey = Some(1001);
        r.config.tunnels.insert(1, tun);
        r.config.rib.add_rule(crate::route::PolicyRule {
            priority: 100,
            selector: crate::route::RuleSelector::All,
            table: RouteTableId(200),
        });
        let r = net.add_device(r);

        apply_fault(
            &mut net,
            FaultKind::Misconfigure(Misconfiguration::CorruptGreKey {
                device: r,
                delta: 7,
            }),
        );
        assert_eq!(net.device(r).unwrap().config.tunnels[&1].ikey, Some(1008));

        apply_fault(
            &mut net,
            FaultKind::Misconfigure(Misconfiguration::FlushPolicyRouting { device: r }),
        );
        assert!(net.device(r).unwrap().config.rib.rules().is_empty());
    }

    #[test]
    fn flushing_a_table_range_only_hits_that_range() {
        use crate::route::{PolicyRule, Route, RouteTarget, RuleSelector};
        let mut net = Network::new();
        let mut r = Device::new("r", DeviceRole::Router, 1);
        // Two "goals": tables 1000..1003 and 1004..1007, one rule each,
        // plus a main-table route that must survive any flush.
        r.config.rib.add_main(Route {
            dest: "10.0.0.0/24".parse().unwrap(),
            target: RouteTarget::Port { port: 0, via: None },
        });
        for (table, priority) in [(1000u32, 100u32), (1004, 104)] {
            r.config.rib.table_mut(RouteTableId(table)).add(Route {
                dest: "10.9.0.0/24".parse().unwrap(),
                target: RouteTarget::Port { port: 0, via: None },
            });
            r.config.rib.add_rule(PolicyRule {
                priority,
                selector: RuleSelector::All,
                table: RouteTableId(table),
            });
        }
        let r = net.add_device(r);

        apply_fault(
            &mut net,
            FaultKind::Misconfigure(Misconfiguration::FlushRouteTables {
                device: r,
                first: RouteTableId(1000),
                last: RouteTableId(1003),
            }),
        );
        let rib = &net.device(r).unwrap().config.rib;
        assert!(rib.table(RouteTableId(1000)).is_none(), "range flushed");
        assert!(rib.table(RouteTableId(1004)).is_some(), "sibling survives");
        assert_eq!(rib.rules().len(), 1);
        assert_eq!(rib.rules()[0].table, RouteTableId(1004));
        assert!(
            rib.table(RouteTableId::MAIN).is_some(),
            "main is never dropped"
        );
    }
}
