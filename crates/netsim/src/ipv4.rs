//! IPv4 header codec, CIDR prefixes and the Internet checksum.

use crate::{CodecError, CodecResult};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// Minimum IPv4 header length (no options).
pub const IPV4_HEADER_LEN: usize = 20;

/// IP protocol numbers used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ipv4Proto {
    /// ICMP (1).
    Icmp,
    /// IP-in-IP encapsulation (4), used by the paper's IP-IP tunnel path.
    IpIp,
    /// UDP (17).
    Udp,
    /// GRE (47).
    Gre,
    /// Any other protocol number.
    Other(u8),
}

impl Ipv4Proto {
    /// Numeric protocol value.
    pub fn as_u8(self) -> u8 {
        match self {
            Ipv4Proto::Icmp => 1,
            Ipv4Proto::IpIp => 4,
            Ipv4Proto::Udp => 17,
            Ipv4Proto::Gre => 47,
            Ipv4Proto::Other(v) => v,
        }
    }

    /// Interpret a numeric protocol value.
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => Ipv4Proto::Icmp,
            4 => Ipv4Proto::IpIp,
            17 => Ipv4Proto::Udp,
            47 => Ipv4Proto::Gre,
            other => Ipv4Proto::Other(other),
        }
    }
}

impl fmt::Display for Ipv4Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ipv4Proto::Icmp => write!(f, "ICMP"),
            Ipv4Proto::IpIp => write!(f, "IPIP"),
            Ipv4Proto::Udp => write!(f, "UDP"),
            Ipv4Proto::Gre => write!(f, "GRE"),
            Ipv4Proto::Other(v) => write!(f, "proto({v})"),
        }
    }
}

/// Compute the 16-bit one's complement Internet checksum over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let Some(&last) = chunks.remainder().first() {
        sum += u32::from(u16::from_be_bytes([last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// A decoded IPv4 header (options are not supported, matching the simulator's
/// smoltcp-inspired scope).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// Differentiated services / TOS byte.
    pub tos: u8,
    /// Identification field.
    pub identification: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: Ipv4Proto,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Build a header with common defaults (TTL 64).
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: Ipv4Proto) -> Self {
        Ipv4Header {
            tos: 0,
            identification: 0,
            dont_fragment: true,
            ttl: 64,
            protocol,
            src,
            dst,
        }
    }

    /// Encode the header followed by `payload` into a full IPv4 packet.
    pub fn encode_packet(&self, payload: &[u8]) -> Vec<u8> {
        let total_len = (IPV4_HEADER_LEN + payload.len()) as u16;
        let mut hdr = [0u8; IPV4_HEADER_LEN];
        hdr[0] = 0x45; // version 4, IHL 5
        hdr[1] = self.tos;
        hdr[2..4].copy_from_slice(&total_len.to_be_bytes());
        hdr[4..6].copy_from_slice(&self.identification.to_be_bytes());
        let flags_frag: u16 = if self.dont_fragment { 0x4000 } else { 0 };
        hdr[6..8].copy_from_slice(&flags_frag.to_be_bytes());
        hdr[8] = self.ttl;
        hdr[9] = self.protocol.as_u8();
        // checksum bytes 10..12 left zero for computation
        hdr[12..16].copy_from_slice(&self.src.octets());
        hdr[16..20].copy_from_slice(&self.dst.octets());
        let csum = internet_checksum(&hdr);
        hdr[10..12].copy_from_slice(&csum.to_be_bytes());
        let mut out = Vec::with_capacity(IPV4_HEADER_LEN + payload.len());
        out.extend_from_slice(&hdr);
        out.extend_from_slice(payload);
        out
    }

    /// Decode a packet into header and payload, verifying version and
    /// header checksum.
    pub fn decode_packet(bytes: &[u8]) -> CodecResult<(Ipv4Header, Vec<u8>)> {
        if bytes.len() < IPV4_HEADER_LEN {
            return Err(CodecError::Truncated {
                what: "ipv4",
                needed: IPV4_HEADER_LEN,
                got: bytes.len(),
            });
        }
        let version = bytes[0] >> 4;
        if version != 4 {
            return Err(CodecError::BadVersion {
                what: "ipv4",
                version,
            });
        }
        let ihl = (bytes[0] & 0x0f) as usize * 4;
        if ihl < IPV4_HEADER_LEN || bytes.len() < ihl {
            return Err(CodecError::BadField {
                what: "ipv4 ihl",
                value: ihl as u64,
            });
        }
        if internet_checksum(&bytes[..ihl]) != 0 {
            return Err(CodecError::BadChecksum("ipv4"));
        }
        let total_len = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        if total_len < ihl || total_len > bytes.len() {
            return Err(CodecError::BadField {
                what: "ipv4 total_len",
                value: total_len as u64,
            });
        }
        let flags_frag = u16::from_be_bytes([bytes[6], bytes[7]]);
        let header = Ipv4Header {
            tos: bytes[1],
            identification: u16::from_be_bytes([bytes[4], bytes[5]]),
            dont_fragment: flags_frag & 0x4000 != 0,
            ttl: bytes[8],
            protocol: Ipv4Proto::from_u8(bytes[9]),
            src: Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]),
            dst: Ipv4Addr::new(bytes[16], bytes[17], bytes[18], bytes[19]),
        };
        Ok((header, bytes[ihl..total_len].to_vec()))
    }
}

/// An IPv4 CIDR prefix such as `10.0.1.0/24`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Cidr {
    /// Network address (host bits may be set; they are masked on match).
    pub addr: Ipv4Addr,
    /// Prefix length, 0..=32.
    pub prefix_len: u8,
}

impl Ipv4Cidr {
    /// Construct a prefix; panics if `prefix_len > 32`.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "prefix length must be <= 32");
        Ipv4Cidr { addr, prefix_len }
    }

    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Ipv4Cidr = Ipv4Cidr {
        addr: Ipv4Addr::UNSPECIFIED,
        prefix_len: 0,
    };

    /// The netmask as a u32.
    pub fn mask(&self) -> u32 {
        if self.prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - self.prefix_len)
        }
    }

    /// The network address (host bits cleared).
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(u32::from(self.addr) & self.mask())
    }

    /// Does this prefix contain `addr`?
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & self.mask()) == (u32::from(self.addr) & self.mask())
    }
}

impl fmt::Display for Ipv4Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.prefix_len)
    }
}

/// Error parsing a CIDR string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CidrParseError(String);

impl fmt::Display for CidrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CIDR: {}", self.0)
    }
}

impl std::error::Error for CidrParseError {}

impl FromStr for Ipv4Cidr {
    type Err = CidrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or_else(|| CidrParseError(s.into()))?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| CidrParseError(s.into()))?;
        let prefix_len: u8 = len.parse().map_err(|_| CidrParseError(s.into()))?;
        if prefix_len > 32 {
            return Err(CidrParseError(s.into()));
        }
        Ok(Ipv4Cidr::new(addr, prefix_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = Ipv4Header::new(
            Ipv4Addr::new(204, 9, 168, 1),
            Ipv4Addr::new(204, 9, 169, 1),
            Ipv4Proto::Gre,
        );
        let pkt = h.encode_packet(&[1, 2, 3, 4, 5]);
        let (g, payload) = Ipv4Header::decode_packet(&pkt).unwrap();
        assert_eq!(g, h);
        assert_eq!(payload, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let h = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 1, 1),
            Ipv4Addr::new(10, 0, 2, 1),
            Ipv4Proto::Udp,
        );
        let mut pkt = h.encode_packet(&[0u8; 8]);
        pkt[8] ^= 0xff; // mangle TTL without fixing checksum
        assert!(matches!(
            Ipv4Header::decode_packet(&pkt),
            Err(CodecError::BadChecksum("ipv4"))
        ));
    }

    #[test]
    fn rejects_v6_and_truncation() {
        assert!(Ipv4Header::decode_packet(&[0u8; 3]).is_err());
        let h = Ipv4Header::new(Ipv4Addr::LOCALHOST, Ipv4Addr::LOCALHOST, Ipv4Proto::Icmp);
        let mut pkt = h.encode_packet(&[]);
        pkt[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Header::decode_packet(&pkt),
            Err(CodecError::BadVersion { .. })
        ));
    }

    #[test]
    fn cidr_contains() {
        let c: Ipv4Cidr = "10.0.2.0/24".parse().unwrap();
        assert!(c.contains(Ipv4Addr::new(10, 0, 2, 77)));
        assert!(!c.contains(Ipv4Addr::new(10, 0, 3, 1)));
        assert!(Ipv4Cidr::DEFAULT.contains(Ipv4Addr::new(8, 8, 8, 8)));
        assert_eq!(c.to_string(), "10.0.2.0/24");
    }

    #[test]
    fn cidr_parse_errors() {
        assert!("10.0.0.0".parse::<Ipv4Cidr>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Cidr>().is_err());
        assert!("banana/8".parse::<Ipv4Cidr>().is_err());
    }

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 style check: checksum of a buffer plus its checksum is 0.
        let data = [0x45u8, 0x00, 0x00, 0x30, 0x44, 0x22, 0x40, 0x00, 0x80, 0x06];
        let c = internet_checksum(&data);
        let mut with = data.to_vec();
        with.extend_from_slice(&c.to_be_bytes());
        assert_eq!(internet_checksum(&with), 0);
    }
}
