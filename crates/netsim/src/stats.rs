//! Per-device and per-port packet counters.
//!
//! The paper's GRE module advertises only "number of received and transmitted
//! packets on each up and down pipe" as its performance reporting (Table III,
//! row x); these counters are the substrate for that reporting.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counters for one port or one logical interface (tunnel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IfaceCounters {
    /// Frames/packets received.
    pub rx_packets: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Frames/packets transmitted.
    pub tx_packets: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Packets dropped (filter, TTL, no route, bad checksum...).
    pub drops: u64,
}

impl IfaceCounters {
    /// Record a reception.
    pub fn rx(&mut self, bytes: usize) {
        self.rx_packets += 1;
        self.rx_bytes += bytes as u64;
    }

    /// Record a transmission.
    pub fn tx(&mut self, bytes: usize) {
        self.tx_packets += 1;
        self.tx_bytes += bytes as u64;
    }

    /// Record a drop.
    pub fn drop_packet(&mut self) {
        self.drops += 1;
    }
}

/// Why a packet was dropped; used by debugging tests and the CONMan
/// self-test reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DropReason {
    /// No route to the destination.
    NoRoute,
    /// TTL expired in transit.
    TtlExpired,
    /// A filter rule dropped the packet.
    Filtered,
    /// Header failed to parse or checksum failed.
    Malformed,
    /// GRE key or sequencing expectation not met.
    TunnelMismatch,
    /// No MPLS cross-connect for the incoming label.
    NoLabel,
    /// Destination MAC is not ours and the device does not forward at L2.
    NotForUs,
    /// Port is down or not attached to a link.
    PortDown,
    /// Forwarding is disabled on this device.
    ForwardingDisabled,
    /// Frame exceeded the egress MTU.
    MtuExceeded,
}

/// Per-flow counters: the slice of a device's activity attributed to one
/// tagged traffic flow (in the CONMan layers above, the flow tag is the
/// owning goal's id).
///
/// Flow attribution is window-based: the network snapshots the device
/// tallies when a tagged window opens and accumulates the deltas here when
/// it closes (see `Network::begin_flow_window`).  Because the simulator is
/// single-threaded and probe bursts run to quiescence, a window contains
/// exactly the tagged flow's traffic, so counter-delta localisation is not
/// confounded when several goals are active.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowCounters {
    /// Packets this device originated during the flow's windows.
    pub originated: u64,
    /// Packets forwarded through the device for the flow.
    pub forwarded: u64,
    /// Packets delivered to a local sink for the flow.
    pub local_delivered: u64,
    /// Packets dropped (all reasons) during the flow's windows.
    pub drops: u64,
}

impl FlowCounters {
    /// Accumulate another sample into this one.
    pub fn absorb(&mut self, other: &FlowCounters) {
        self.originated += other.originated;
        self.forwarded += other.forwarded;
        self.local_delivered += other.local_delivered;
        self.drops += other.drops;
    }

    /// Did the flow touch this device at all?
    pub fn is_empty(&self) -> bool {
        self.originated == 0 && self.forwarded == 0 && self.local_delivered == 0 && self.drops == 0
    }
}

/// Aggregated statistics of one device.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Counters per physical port index.
    pub ports: BTreeMap<u32, IfaceCounters>,
    /// Counters per tunnel id.
    pub tunnels: BTreeMap<u32, IfaceCounters>,
    /// Packets delivered to a local sink (applications, self-tests).
    pub local_delivered: u64,
    /// Packets this device originated.
    pub originated: u64,
    /// Packets forwarded through the device.
    pub forwarded: u64,
    /// Drop counts by reason.
    pub drops: BTreeMap<DropReason, u64>,
    /// Per-flow attribution, keyed by flow tag (a goal id in the management
    /// layers).  Filled by the network's flow windows.
    pub flows: BTreeMap<u64, FlowCounters>,
}

impl DeviceStats {
    /// Counters for a port, creating them on first use.
    pub fn port(&mut self, port: u32) -> &mut IfaceCounters {
        self.ports.entry(port).or_default()
    }

    /// Counters for a tunnel, creating them on first use.
    pub fn tunnel(&mut self, tunnel: u32) -> &mut IfaceCounters {
        self.tunnels.entry(tunnel).or_default()
    }

    /// Record a drop with its reason.
    pub fn record_drop(&mut self, reason: DropReason) {
        *self.drops.entry(reason).or_insert(0) += 1;
    }

    /// Total number of drops across all reasons.
    pub fn total_drops(&self) -> u64 {
        self.drops.values().sum()
    }

    /// The counters attributed to one flow tag (zero counters if the flow
    /// never touched this device).
    pub fn flow(&self, tag: u64) -> FlowCounters {
        self.flows.get(&tag).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = DeviceStats::default();
        s.port(0).rx(100);
        s.port(0).rx(200);
        s.port(1).tx(50);
        s.tunnel(1).tx(42);
        s.record_drop(DropReason::NoRoute);
        s.record_drop(DropReason::NoRoute);
        s.record_drop(DropReason::Filtered);
        assert_eq!(s.ports[&0].rx_packets, 2);
        assert_eq!(s.ports[&0].rx_bytes, 300);
        assert_eq!(s.ports[&1].tx_packets, 1);
        assert_eq!(s.tunnels[&1].tx_bytes, 42);
        assert_eq!(s.drops[&DropReason::NoRoute], 2);
        assert_eq!(s.total_drops(), 3);
    }
}
