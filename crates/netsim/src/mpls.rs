//! MPLS label-stack codec and the label-switching tables (ILM / NHLFE / XC)
//! mirroring the `mpls ilm add` / `mpls nhlfe add` / `mpls xc add` commands in
//! the paper's Figure 8(a) script.

use crate::{CodecError, CodecResult};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A 20-bit MPLS label value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Label(u32);

impl Label {
    /// Maximum label value (20 bits).
    pub const MAX: u32 = (1 << 20) - 1;

    /// Construct a label, returning `None` when out of range.
    pub fn new(v: u32) -> Option<Self> {
        if v <= Self::MAX {
            Some(Label(v))
        } else {
            None
        }
    }

    /// Numeric value.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One entry of an MPLS label stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelStackEntry {
    /// The label value.
    pub label: Label,
    /// Traffic class (3 bits, formerly EXP).
    pub tc: u8,
    /// Bottom-of-stack flag.
    pub bottom: bool,
    /// Time to live.
    pub ttl: u8,
}

impl LabelStackEntry {
    /// Build an entry with default TC and TTL 64.
    pub fn new(label: Label, bottom: bool) -> Self {
        LabelStackEntry {
            label,
            tc: 0,
            bottom,
            ttl: 64,
        }
    }

    /// Encode to 4 bytes.
    pub fn encode(&self) -> [u8; 4] {
        let word: u32 = (self.label.value() << 12)
            | ((self.tc as u32 & 0x7) << 9)
            | ((self.bottom as u32) << 8)
            | self.ttl as u32;
        word.to_be_bytes()
    }

    /// Decode from 4 bytes.
    pub fn decode(bytes: &[u8]) -> CodecResult<Self> {
        if bytes.len() < 4 {
            return Err(CodecError::Truncated {
                what: "mpls",
                needed: 4,
                got: bytes.len(),
            });
        }
        let word = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        Ok(LabelStackEntry {
            label: Label(word >> 12),
            tc: ((word >> 9) & 0x7) as u8,
            bottom: (word >> 8) & 1 == 1,
            ttl: (word & 0xff) as u8,
        })
    }
}

/// Encode a label stack (outermost first) followed by the payload.
pub fn encode_stack(stack: &[LabelStackEntry], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(stack.len() * 4 + payload.len());
    for entry in stack {
        out.extend_from_slice(&entry.encode());
    }
    out.extend_from_slice(payload);
    out
}

/// Decode a full label stack (until the bottom-of-stack bit) and return the
/// remaining payload.
pub fn decode_stack(bytes: &[u8]) -> CodecResult<(Vec<LabelStackEntry>, Vec<u8>)> {
    let mut stack = Vec::new();
    let mut offset = 0;
    loop {
        let entry = LabelStackEntry::decode(&bytes[offset..])?;
        offset += 4;
        let bottom = entry.bottom;
        stack.push(entry);
        if bottom {
            break;
        }
        if offset >= bytes.len() {
            return Err(CodecError::Truncated {
                what: "mpls stack",
                needed: offset + 4,
                got: bytes.len(),
            });
        }
    }
    Ok((stack, bytes[offset..].to_vec()))
}

/// Key identifying an NHLFE (next-hop label forwarding entry), mirroring the
/// opaque keys printed by the `mpls nhlfe add` command in Figure 8(a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NhlfeKey(pub u32);

/// The label operation an NHLFE applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LabelOp {
    /// Push a new label (LSP ingress).
    Push(Label),
    /// Swap the top label (LSP transit).
    Swap(Label),
    /// Pop the top label (LSP egress); the payload is delivered to IP.
    Pop,
}

/// A next-hop label forwarding entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Nhlfe {
    /// Key referenced by ILM cross-connects and IP routes.
    pub key: NhlfeKey,
    /// Label operation.
    pub op: LabelOp,
    /// IPv4 next hop to forward to (resolved via ARP on the egress port).
    pub nexthop: Ipv4Addr,
    /// Egress port index.
    pub out_port: u32,
    /// MTU configured for the entry (informational).
    pub mtu: u16,
}

/// An incoming-label-map entry: `(labelspace, label)` to be cross-connected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IlmEntry {
    /// Label space (per-interface label spaces are collapsed to one value,
    /// as in the paper's scripts which only use labelspace 0).
    pub labelspace: u16,
    /// Incoming label.
    pub label: Label,
}

/// The MPLS forwarding state of one device.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MplsTables {
    /// NHLFE entries keyed by their opaque key.
    pub nhlfe: HashMap<u32, Nhlfe>,
    /// Cross-connects: incoming (labelspace, label) -> NHLFE key.
    pub xc: HashMap<(u16, u32), NhlfeKey>,
    /// Label spaces assigned to ports (port -> labelspace).
    pub labelspace: HashMap<u32, u16>,
    next_key: u32,
}

impl MplsTables {
    /// Create empty tables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh NHLFE key (mirrors the kernel allocating opaque keys).
    pub fn alloc_key(&mut self) -> NhlfeKey {
        self.next_key += 1;
        NhlfeKey(self.next_key)
    }

    /// Install an NHLFE entry.
    pub fn add_nhlfe(&mut self, nhlfe: Nhlfe) {
        self.nhlfe.insert(nhlfe.key.0, nhlfe);
    }

    /// Install a cross-connect from an incoming label to an NHLFE.
    pub fn add_xc(&mut self, ilm: IlmEntry, nhlfe: NhlfeKey) {
        self.xc.insert((ilm.labelspace, ilm.label.value()), nhlfe);
    }

    /// Set the label space of a port.
    pub fn set_labelspace(&mut self, port: u32, labelspace: u16) {
        self.labelspace.insert(port, labelspace);
    }

    /// Look up the forwarding action for a label arriving on `port`.
    pub fn lookup(&self, port: u32, label: Label) -> Option<&Nhlfe> {
        let space = self.labelspace.get(&port).copied().unwrap_or(0);
        let key = self.xc.get(&(space, label.value()))?;
        self.nhlfe.get(&key.0)
    }

    /// Look up an NHLFE directly by key (used by IP routes that steer
    /// traffic into an LSP, like the last line of Figure 8(a)).
    pub fn nhlfe_by_key(&self, key: NhlfeKey) -> Option<&Nhlfe> {
        self.nhlfe.get(&key.0)
    }

    /// Remove an NHLFE entry (`mpls nhlfe del`).
    pub fn remove_nhlfe(&mut self, key: NhlfeKey) -> bool {
        self.nhlfe.remove(&key.0).is_some()
    }

    /// Remove a cross-connect (`mpls xc del`).
    pub fn remove_xc(&mut self, ilm: IlmEntry) -> bool {
        self.xc
            .remove(&(ilm.labelspace, ilm.label.value()))
            .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_range() {
        assert!(Label::new(Label::MAX).is_some());
        assert!(Label::new(Label::MAX + 1).is_none());
    }

    #[test]
    fn entry_roundtrip() {
        let e = LabelStackEntry {
            label: Label::new(10001).unwrap(),
            tc: 3,
            bottom: true,
            ttl: 62,
        };
        let dec = LabelStackEntry::decode(&e.encode()).unwrap();
        assert_eq!(e, dec);
    }

    #[test]
    fn stack_roundtrip() {
        let stack = vec![
            LabelStackEntry::new(Label::new(2001).unwrap(), false),
            LabelStackEntry::new(Label::new(10001).unwrap(), true),
        ];
        let bytes = encode_stack(&stack, &[7u8; 10]);
        let (dec, payload) = decode_stack(&bytes).unwrap();
        assert_eq!(dec, stack);
        assert_eq!(payload, vec![7u8; 10]);
    }

    #[test]
    fn stack_without_bottom_is_an_error() {
        let stack = vec![LabelStackEntry::new(Label::new(5).unwrap(), false)];
        let bytes = encode_stack(&stack, &[]);
        assert!(decode_stack(&bytes).is_err());
    }

    #[test]
    fn tables_lookup_respects_labelspace() {
        let mut t = MplsTables::new();
        let key = t.alloc_key();
        t.add_nhlfe(Nhlfe {
            key,
            op: LabelOp::Pop,
            nexthop: Ipv4Addr::new(192, 168, 0, 1),
            out_port: 1,
            mtu: 1500,
        });
        t.set_labelspace(2, 0);
        t.add_xc(
            IlmEntry {
                labelspace: 0,
                label: Label::new(10001).unwrap(),
            },
            key,
        );
        assert!(t.lookup(2, Label::new(10001).unwrap()).is_some());
        // A port in a different labelspace does not match.
        t.set_labelspace(3, 7);
        assert!(t.lookup(3, Label::new(10001).unwrap()).is_none());
        assert!(t.lookup(2, Label::new(9999).unwrap()).is_none());
        assert!(t.nhlfe_by_key(key).is_some());
    }
}
