//! Devices: hosts, routers and layer-2 switches.
//!
//! A device owns its ports, its configuration and its runtime state (ARP
//! cache, MAC learning table, tunnel sequence counters, statistics).  The
//! forwarding logic itself lives in [`crate::engine`].

use crate::arp::ArpCache;
use crate::config::DeviceConfig;
use crate::ipv4::Ipv4Proto;
use crate::mac::MacAddr;
use crate::nic::Nic;
use crate::stats::DeviceStats;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::net::Ipv4Addr;

/// Globally unique, topology-independent device identifier.
///
/// The paper suggests deriving it from a public key; here it is derived by
/// hashing the device name, which keeps it stable, unique and meaningless
/// with respect to topology — the properties the architecture needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(u64);

impl DeviceId {
    /// Derive a device-id from a name (stand-in for hashing a public key).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a, good enough for a stable non-cryptographic identifier.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        DeviceId(h)
    }

    /// Construct from a raw value (tests and benchmarks).
    pub const fn from_raw(v: u64) -> Self {
        DeviceId(v)
    }

    /// Raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev:{:016x}", self.0)
    }
}

/// Port index within a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortId(pub u32);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// Coarse role of a device, which decides how frames are processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceRole {
    /// An end host: terminates traffic, does not forward unless configured.
    Host,
    /// A router: forwards at layer 3 when `ip_forwarding` is enabled.
    Router,
    /// A layer-2 switch: forwards at layer 2 according to its bridge config.
    Switch,
}

/// A packet delivered to a local sink on a device (an application, or the
/// terminus of a self-test).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered {
    /// Source IP address.
    pub src: Ipv4Addr,
    /// Destination IP address.
    pub dst: Ipv4Addr,
    /// IP protocol.
    pub proto: Ipv4Proto,
    /// Destination UDP port, when applicable.
    pub dst_port: Option<u16>,
    /// Application payload bytes.
    pub payload: Vec<u8>,
}

/// A management-channel frame received by the device, waiting for its
/// management agent to collect it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MgmtFrame {
    /// Port the frame arrived on (`None` for locally injected frames).
    pub port: Option<PortId>,
    /// Source MAC of the frame.
    pub src_mac: MacAddr,
    /// Management payload.
    pub payload: Vec<u8>,
}

/// Frames a device wants to transmit as the result of processing input.
#[derive(Debug, Clone, Default)]
pub struct EngineOutput {
    /// `(egress port, raw Ethernet frame)` pairs.
    pub transmissions: Vec<(PortId, Vec<u8>)>,
}

impl EngineOutput {
    /// Merge another output into this one.
    pub fn extend(&mut self, other: EngineOutput) {
        self.transmissions.extend(other.transmissions);
    }
}

/// A simulated device.
#[derive(Debug)]
pub struct Device {
    /// Unique identifier.
    pub id: DeviceId,
    /// Human-readable name ("RouterA", "SwitchB", ...).
    pub name: String,
    /// Role.
    pub role: DeviceRole,
    /// Is the device powered on?  A crashed device neither forwards traffic
    /// nor answers the management channel (fault injection).
    pub up: bool,
    /// Ports.
    pub ports: Vec<Nic>,
    /// Configuration (written by CONMan modules or legacy scripts).
    pub config: DeviceConfig,
    /// ARP cache + pending queue.
    pub arp: ArpCache,
    /// MAC learning table: (vlan, mac) -> port.
    pub mac_table: HashMap<(u16, MacAddr), u32>,
    /// GRE transmit sequence number per tunnel.
    pub gre_tx_seq: HashMap<u32, u32>,
    /// Highest GRE receive sequence number seen per tunnel.
    pub gre_rx_seq: HashMap<u32, u32>,
    /// Statistics.
    pub stats: DeviceStats,
    /// Packets delivered locally, in arrival order.
    pub delivered: Vec<Delivered>,
    /// Received management-channel frames awaiting the management agent.
    pub mgmt_rx: VecDeque<MgmtFrame>,
}

impl Device {
    /// Create a device with `num_ports` ports and an empty configuration.
    pub fn new(name: impl Into<String>, role: DeviceRole, num_ports: u32) -> Self {
        let name = name.into();
        let id = DeviceId::from_name(&name);
        let ports = (0..num_ports)
            .map(|i| Nic::new(i, MacAddr::for_port((id.as_u64() & 0xffff) as u32, i)))
            .collect();
        Device {
            id,
            name,
            role,
            up: true,
            ports,
            config: DeviceConfig::new(),
            arp: ArpCache::new(),
            mac_table: HashMap::new(),
            gre_tx_seq: HashMap::new(),
            gre_rx_seq: HashMap::new(),
            stats: DeviceStats::default(),
            delivered: Vec::new(),
            mgmt_rx: VecDeque::new(),
        }
    }

    /// Access a port by id.
    pub fn port(&self, port: PortId) -> Option<&Nic> {
        self.ports.get(port.0 as usize)
    }

    /// Access a port mutably.
    pub fn port_mut(&mut self, port: PortId) -> Option<&mut Nic> {
        self.ports.get_mut(port.0 as usize)
    }

    /// The MAC address of a port (panics if the port does not exist; port
    /// indices are assigned by the topology builder and never dangle).
    pub fn port_mac(&self, port: PortId) -> MacAddr {
        self.ports[port.0 as usize].mac
    }

    /// Packets delivered locally since the last call, draining the buffer.
    pub fn take_delivered(&mut self) -> Vec<Delivered> {
        std::mem::take(&mut self.delivered)
    }

    /// Drain pending management frames.
    pub fn take_mgmt_frames(&mut self) -> Vec<MgmtFrame> {
        self.mgmt_rx.drain(..).collect()
    }

    /// Allocate the next free tunnel id on this device.
    pub fn next_tunnel_id(&self) -> u32 {
        self.config.tunnels.keys().max().copied().unwrap_or(0) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_ids_are_stable_and_distinct() {
        assert_eq!(
            DeviceId::from_name("RouterA"),
            DeviceId::from_name("RouterA")
        );
        assert_ne!(
            DeviceId::from_name("RouterA"),
            DeviceId::from_name("RouterB")
        );
        assert_eq!(DeviceId::from_raw(7).as_u64(), 7);
    }

    #[test]
    fn new_device_has_ports_with_distinct_macs() {
        let d = Device::new("RouterA", DeviceRole::Router, 3);
        assert_eq!(d.ports.len(), 3);
        assert_ne!(d.ports[0].mac, d.ports[1].mac);
        assert_eq!(d.port(PortId(1)).unwrap().index, 1);
        assert!(d.port(PortId(9)).is_none());
    }

    #[test]
    fn tunnel_id_allocation() {
        let mut d = Device::new("RouterA", DeviceRole::Router, 1);
        assert_eq!(d.next_tunnel_id(), 1);
        d.config.tunnels.insert(
            5,
            crate::config::TunnelConfig::gre(
                5,
                "gre5",
                Ipv4Addr::UNSPECIFIED,
                Ipv4Addr::UNSPECIFIED,
            ),
        );
        assert_eq!(d.next_tunnel_id(), 6);
    }

    #[test]
    fn take_delivered_drains() {
        let mut d = Device::new("HostX", DeviceRole::Host, 1);
        d.delivered.push(Delivered {
            src: Ipv4Addr::LOCALHOST,
            dst: Ipv4Addr::LOCALHOST,
            proto: Ipv4Proto::Udp,
            dst_port: Some(1),
            payload: vec![],
        });
        assert_eq!(d.take_delivered().len(), 1);
        assert!(d.take_delivered().is_empty());
    }
}
