//! The network: devices, links, the event loop and the packet trace.

use crate::clock::{SimDuration, SimTime};
use crate::device::{Device, DeviceId, EngineOutput, PortId};
use crate::ether::EthernetFrame;
use crate::event::{Event, EventQueue};
use crate::link::{Endpoint, Link, LinkId, LinkProperties};
use crate::trace::{PacketSummary, TraceEntry};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Errors raised by network construction and operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// Referenced device does not exist.
    UnknownDevice(DeviceId),
    /// Referenced device name does not exist.
    UnknownDeviceName(String),
    /// Referenced port does not exist on the device.
    UnknownPort(DeviceId, PortId),
    /// The port is already attached to a link.
    PortInUse(DeviceId, PortId),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            NetworkError::UnknownDeviceName(n) => write!(f, "unknown device name {n}"),
            NetworkError::UnknownPort(d, p) => write!(f, "unknown port {p} on {d}"),
            NetworkError::PortInUse(d, p) => write!(f, "port {p} on {d} already attached"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// The simulated network.
#[derive(Debug, Default)]
pub struct Network {
    devices: BTreeMap<DeviceId, Device>,
    names: BTreeMap<String, DeviceId>,
    links: Vec<Link>,
    queue: EventQueue,
    trace: Vec<TraceEntry>,
    /// Record a [`TraceEntry`] for every transmitted frame (on by default).
    pub trace_enabled: bool,
    frames_delivered: u64,
    frames_lost: u64,
    /// Monotonic counter feeding the deterministic per-link loss sampler.
    loss_sequence: u64,
    /// Open flow-attribution window: the tag plus the per-device tallies at
    /// the moment the window opened (see [`Network::begin_flow_window`]).
    flow_window: Option<(u64, BTreeMap<DeviceId, FlowSample>)>,
}

/// Snapshot of the device tallies a flow window diffs against.
#[derive(Debug, Clone, Copy, Default)]
struct FlowSample {
    originated: u64,
    forwarded: u64,
    local_delivered: u64,
    drops: u64,
}

impl FlowSample {
    fn of(stats: &crate::stats::DeviceStats) -> Self {
        FlowSample {
            originated: stats.originated,
            forwarded: stats.forwarded,
            local_delivered: stats.local_delivered,
            drops: stats.total_drops(),
        }
    }
}

impl Network {
    /// Create an empty network.
    pub fn new() -> Self {
        Network {
            trace_enabled: true,
            ..Default::default()
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total frames delivered across all links so far.
    pub fn frames_delivered(&self) -> u64 {
        self.frames_delivered
    }

    /// Total frames dropped by link loss (`loss_ppm`) so far.
    pub fn frames_lost(&self) -> u64 {
        self.frames_lost
    }

    /// Add a device, returning its id.
    pub fn add_device(&mut self, device: Device) -> DeviceId {
        let id = device.id;
        self.names.insert(device.name.clone(), id);
        self.devices.insert(id, device);
        id
    }

    /// Look up a device id by name.
    pub fn device_id(&self, name: &str) -> Result<DeviceId, NetworkError> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| NetworkError::UnknownDeviceName(name.to_string()))
    }

    /// Access a device.
    pub fn device(&self, id: DeviceId) -> Result<&Device, NetworkError> {
        self.devices.get(&id).ok_or(NetworkError::UnknownDevice(id))
    }

    /// Access a device mutably.
    pub fn device_mut(&mut self, id: DeviceId) -> Result<&mut Device, NetworkError> {
        self.devices
            .get_mut(&id)
            .ok_or(NetworkError::UnknownDevice(id))
    }

    /// Access a device by name.
    pub fn device_by_name(&self, name: &str) -> Result<&Device, NetworkError> {
        self.device(self.device_id(name)?)
    }

    /// Access a device by name, mutably.
    pub fn device_by_name_mut(&mut self, name: &str) -> Result<&mut Device, NetworkError> {
        let id = self.device_id(name)?;
        self.device_mut(id)
    }

    /// All device ids.
    pub fn device_ids(&self) -> Vec<DeviceId> {
        self.devices.keys().copied().collect()
    }

    /// All devices.
    pub fn devices(&self) -> impl Iterator<Item = &Device> {
        self.devices.values()
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Access a link.
    pub fn link(&self, id: LinkId) -> Option<&Link> {
        self.links.get(id.0 as usize)
    }

    /// Connect two ports with a point-to-point link.
    pub fn connect(
        &mut self,
        a: (DeviceId, PortId),
        b: (DeviceId, PortId),
        properties: LinkProperties,
    ) -> Result<LinkId, NetworkError> {
        self.connect_many(&[a, b], properties)
    }

    /// Connect several ports to one (broadcast) link segment.
    pub fn connect_many(
        &mut self,
        endpoints: &[(DeviceId, PortId)],
        properties: LinkProperties,
    ) -> Result<LinkId, NetworkError> {
        let id = LinkId(self.links.len() as u32);
        // Validate and attach every port first.
        for (dev, port) in endpoints {
            let device = self
                .devices
                .get_mut(dev)
                .ok_or(NetworkError::UnknownDevice(*dev))?;
            let nic = device
                .port_mut(*port)
                .ok_or(NetworkError::UnknownPort(*dev, *port))?;
            if nic.link.is_some() {
                return Err(NetworkError::PortInUse(*dev, *port));
            }
            nic.link = Some(id);
        }
        let link = Link {
            id,
            endpoints: endpoints
                .iter()
                .map(|(d, p)| Endpoint {
                    device: *d,
                    port: *p,
                })
                .collect(),
            properties,
        };
        self.links.push(link);
        Ok(id)
    }

    /// Enable or disable a link (models cutting a wire for fault-injection
    /// tests, or the NM "enabling" a discovered physical pipe).
    pub fn set_link_enabled(&mut self, id: LinkId, enabled: bool) {
        if let Some(link) = self.links.get_mut(id.0 as usize) {
            link.properties.enabled = enabled;
        }
    }

    /// Set a link's loss rate in parts per million.  Losses are sampled
    /// deterministically (a hash of a per-network sequence number), so runs
    /// replay exactly.
    pub fn set_link_loss(&mut self, id: LinkId, loss_ppm: u32) {
        if let Some(link) = self.links.get_mut(id.0 as usize) {
            link.properties.loss_ppm = loss_ppm;
        }
    }

    /// Power a device on or off.  Powering off models a crash: pending
    /// frames addressed to it are dropped on arrival and its management
    /// agent stops being reachable.  Powering back on flushes runtime caches
    /// (ARP, MAC learning, tunnel sequence state), as a reboot would.
    pub fn set_device_up(&mut self, id: DeviceId, up: bool) {
        if let Some(device) = self.devices.get_mut(&id) {
            device.up = up;
            if up {
                device.flush_runtime_state();
            }
        }
    }

    /// The point-to-point link connecting two devices, if any.
    pub fn link_between(&self, a: DeviceId, b: DeviceId) -> Option<LinkId> {
        self.links
            .iter()
            .find(|l| {
                l.endpoints.iter().any(|e| e.device == a)
                    && l.endpoints.iter().any(|e| e.device == b)
            })
            .map(|l| l.id)
    }

    /// The physical adjacency of a device: for every attached port, the set
    /// of `(neighbour device, neighbour port)` pairs on the same link.  This
    /// is what each device reports to the NM over the management channel.
    pub fn physical_neighbors(&self, id: DeviceId) -> Vec<(PortId, DeviceId, PortId)> {
        let mut out = Vec::new();
        for link in &self.links {
            for ep in &link.endpoints {
                if ep.device == id {
                    for other in link.other_endpoints(*ep) {
                        out.push((ep.port, other.device, other.port));
                    }
                }
            }
        }
        out.sort_by_key(|(p, d, dp)| (p.0, d.as_u64(), dp.0));
        out
    }

    // ------------------------------------------------------------------
    // Flow attribution windows
    // ------------------------------------------------------------------

    /// Open a flow-attribution window for `tag`.  Every change to the
    /// device-level tallies (originated / forwarded / delivered / drops)
    /// between now and the matching [`Self::end_flow_window`] is credited to
    /// `tag` in each device's [`stats.flows`](crate::stats::DeviceStats).
    ///
    /// The simulator is single-threaded and traffic bursts run to
    /// quiescence, so a window contains exactly the traffic injected inside
    /// it; the management layers use the owning goal id as the tag so probe
    /// bursts of concurrent goals attribute separately.  Opening a new
    /// window closes any window still open.
    pub fn begin_flow_window(&mut self, tag: u64) {
        self.end_flow_window();
        let samples = self
            .devices
            .iter()
            .map(|(id, d)| (*id, FlowSample::of(&d.stats)))
            .collect();
        self.flow_window = Some((tag, samples));
    }

    /// Close the open flow window (if any), crediting the per-device deltas
    /// to the window's tag.  Returns the tag that was closed.
    pub fn end_flow_window(&mut self) -> Option<u64> {
        let (tag, samples) = self.flow_window.take()?;
        for (id, before) in samples {
            let Some(device) = self.devices.get_mut(&id) else {
                continue;
            };
            let now = FlowSample::of(&device.stats);
            let delta = crate::stats::FlowCounters {
                originated: now.originated.saturating_sub(before.originated),
                forwarded: now.forwarded.saturating_sub(before.forwarded),
                local_delivered: now.local_delivered.saturating_sub(before.local_delivered),
                drops: now.drops.saturating_sub(before.drops),
            };
            if !delta.is_empty() {
                device.stats.flows.entry(tag).or_default().absorb(&delta);
            }
        }
        Some(tag)
    }

    /// The counters attributed to `tag` on one device (zero counters when
    /// the flow never touched it).
    pub fn flow_counters(&self, device: DeviceId, tag: u64) -> crate::stats::FlowCounters {
        self.devices
            .get(&device)
            .map(|d| d.stats.flow(tag))
            .unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Traffic injection
    // ------------------------------------------------------------------

    /// Have `device` originate a UDP datagram and dispatch whatever frames
    /// result.
    pub fn send_udp(
        &mut self,
        device: DeviceId,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
    ) -> Result<(), NetworkError> {
        let out = self
            .device_mut(device)?
            .originate_udp(dst, src_port, dst_port, payload);
        self.dispatch(device, out);
        Ok(())
    }

    /// Have `device` originate an ICMP echo request.
    pub fn send_ping(
        &mut self,
        device: DeviceId,
        dst: Ipv4Addr,
        identifier: u16,
        sequence: u16,
    ) -> Result<(), NetworkError> {
        let out = self
            .device_mut(device)?
            .originate_ping(dst, identifier, sequence);
        self.dispatch(device, out);
        Ok(())
    }

    /// Have `device` transmit a raw frame out of `port` (management channel).
    pub fn send_raw_frame(
        &mut self,
        device: DeviceId,
        port: PortId,
        frame: &EthernetFrame,
    ) -> Result<(), NetworkError> {
        let out = self.device_mut(device)?.originate_frame(port, frame);
        self.dispatch(device, out);
        Ok(())
    }

    /// Dispatch the transmissions a device produced: place each frame on the
    /// link attached to its egress port and schedule arrival at the far end.
    pub fn dispatch(&mut self, from: DeviceId, output: EngineOutput) {
        let now = self.queue.now();
        if !self.devices.get(&from).is_some_and(|d| d.up) {
            return; // crashed devices transmit nothing
        }
        for (port, bytes) in output.transmissions {
            let Some(link_id) = self
                .devices
                .get(&from)
                .and_then(|d| d.port(port))
                .and_then(|nic| nic.link)
            else {
                continue;
            };
            let Some(link) = self.links.get(link_id.0 as usize) else {
                continue;
            };
            if !link.properties.enabled {
                continue;
            }
            let loss_ppm = link.properties.loss_ppm;
            if loss_ppm > 0 && self.sample_loss(link_id, loss_ppm) {
                self.frames_lost += 1;
                continue;
            }
            let link = &self.links[link_id.0 as usize];
            if self.trace_enabled {
                self.trace.push(TraceEntry {
                    time: now,
                    from_device: from,
                    from_port: port,
                    link: link_id,
                    summary: PacketSummary::parse(&bytes),
                });
            }
            let arrival = now + link.transfer_time(bytes.len());
            let from_ep = Endpoint { device: from, port };
            for ep in link.other_endpoints(from_ep) {
                self.queue.schedule(
                    arrival,
                    Event::FrameArrival {
                        device: ep.device,
                        port: ep.port,
                        link: link_id,
                        frame: bytes.clone(),
                    },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Process events until the queue is empty or `max_events` have been
    /// handled.  Returns the number of events processed.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        let mut handled = 0;
        while handled < max_events {
            let Some((_, event)) = self.queue.pop() else {
                break;
            };
            self.handle_event(event);
            handled += 1;
        }
        handled
    }

    /// Process events until simulated time reaches `deadline` or the queue
    /// empties.  The clock always ends up at `deadline`, even when no events
    /// were pending — "run for 10ms" really advances 10ms of simulated time.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut handled = 0;
        while let Some((_, event)) = self.queue.pop_before(deadline) {
            self.handle_event(event);
            handled += 1;
        }
        self.queue.advance_to(deadline);
        handled
    }

    /// Process events for `duration` of simulated time.
    pub fn run_for(&mut self, duration: SimDuration) -> u64 {
        let deadline = self.now() + duration;
        self.run_until(deadline)
    }

    /// Deterministic loss decision: a splitmix64 hash of the per-network
    /// frame sequence and the link id, compared against the loss rate.
    fn sample_loss(&mut self, link: LinkId, loss_ppm: u32) -> bool {
        self.loss_sequence += 1;
        let z = crate::clock::splitmix64(self.loss_sequence.wrapping_add(u64::from(link.0) << 32));
        (z % 1_000_000) < u64::from(loss_ppm)
    }

    fn handle_event(&mut self, event: Event) {
        match event {
            Event::FrameArrival {
                device,
                port,
                frame,
                ..
            } => {
                self.frames_delivered += 1;
                let Some(dev) = self.devices.get_mut(&device) else {
                    return;
                };
                if !dev.up {
                    return; // crashed devices drop everything on the floor
                }
                let out = dev.handle_frame(port, &frame);
                self.dispatch(device, out);
            }
            Event::Timer { .. } => {
                // No device timers are used by the current engine; the event
                // variant exists for extensions (ARP timeouts, periodic
                // self-tests).
            }
        }
    }

    // ------------------------------------------------------------------
    // Trace access
    // ------------------------------------------------------------------

    /// The packet trace collected so far.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Clear the packet trace.
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }

    /// Convenience: the protocol paths (e.g. `ETH/IP/GRE/IP/payload`) of all
    /// frames transmitted by the named device.
    pub fn protocol_paths_from(&self, device: DeviceId) -> Vec<String> {
        self.trace
            .iter()
            .filter(|t| t.from_device == device)
            .map(|t| t.summary.protocol_path())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceRole;
    use crate::ipv4::Ipv4Cidr;
    use crate::route::{Route, RouteTarget};

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// Two hosts on one link exchange a UDP datagram (including ARP).
    #[test]
    fn two_hosts_exchange_udp() {
        let mut net = Network::new();
        let mut h1 = Device::new("h1", DeviceRole::Host, 1);
        h1.config.assign_address(0, cidr("10.0.0.1/24"));
        let mut h2 = Device::new("h2", DeviceRole::Host, 1);
        h2.config.assign_address(0, cidr("10.0.0.2/24"));
        let h1 = net.add_device(h1);
        let h2 = net.add_device(h2);
        net.connect((h1, PortId(0)), (h2, PortId(0)), LinkProperties::lan())
            .unwrap();

        net.send_udp(h1, ip("10.0.0.2"), 1234, 5678, b"hello")
            .unwrap();
        net.run_to_quiescence(1000);

        let delivered = net.device_mut(h2).unwrap().take_delivered();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].payload, b"hello");
        assert_eq!(delivered[0].dst_port, Some(5678));
        // ARP request + reply + data = at least 3 frames in the trace.
        assert!(net.trace().len() >= 3);
        assert!(net.now() > SimTime::ZERO);
    }

    /// A host pings a router one hop away through a forwarding router.
    #[test]
    fn ping_through_a_router() {
        let mut net = Network::new();
        let mut h1 = Device::new("h1", DeviceRole::Host, 1);
        h1.config.assign_address(0, cidr("10.0.1.5/24"));
        h1.config.rib.add_main(Route {
            dest: Ipv4Cidr::DEFAULT,
            target: RouteTarget::Port {
                port: 0,
                via: Some(ip("10.0.1.1")),
            },
        });
        let mut r = Device::new("r", DeviceRole::Router, 2);
        r.config.ip_forwarding = true;
        r.config.assign_address(0, cidr("10.0.1.1/24"));
        r.config.assign_address(1, cidr("10.0.2.1/24"));
        let mut h2 = Device::new("h2", DeviceRole::Host, 1);
        h2.config.assign_address(0, cidr("10.0.2.5/24"));
        h2.config.rib.add_main(Route {
            dest: Ipv4Cidr::DEFAULT,
            target: RouteTarget::Port {
                port: 0,
                via: Some(ip("10.0.2.1")),
            },
        });
        let h1 = net.add_device(h1);
        let r = net.add_device(r);
        let h2 = net.add_device(h2);
        net.connect((h1, PortId(0)), (r, PortId(0)), LinkProperties::lan())
            .unwrap();
        net.connect((h2, PortId(0)), (r, PortId(1)), LinkProperties::lan())
            .unwrap();

        net.send_ping(h1, ip("10.0.2.5"), 99, 1).unwrap();
        net.run_to_quiescence(1000);
        let delivered = net.device_mut(h1).unwrap().take_delivered();
        assert_eq!(delivered.len(), 1, "h1 should receive the echo reply");
        assert_eq!(delivered[0].proto, crate::ipv4::Ipv4Proto::Icmp);
    }

    #[test]
    fn disabled_link_blackholes_traffic() {
        let mut net = Network::new();
        let mut h1 = Device::new("h1", DeviceRole::Host, 1);
        h1.config.assign_address(0, cidr("10.0.0.1/24"));
        let mut h2 = Device::new("h2", DeviceRole::Host, 1);
        h2.config.assign_address(0, cidr("10.0.0.2/24"));
        let h1 = net.add_device(h1);
        let h2 = net.add_device(h2);
        let link = net
            .connect((h1, PortId(0)), (h2, PortId(0)), LinkProperties::lan())
            .unwrap();
        net.set_link_enabled(link, false);
        net.send_udp(h1, ip("10.0.0.2"), 1, 2, b"x").unwrap();
        net.run_to_quiescence(1000);
        assert!(net.device_mut(h2).unwrap().take_delivered().is_empty());
    }

    #[test]
    fn physical_neighbors_reports_adjacency() {
        let mut net = Network::new();
        let a = net.add_device(Device::new("a", DeviceRole::Router, 2));
        let b = net.add_device(Device::new("b", DeviceRole::Router, 2));
        let c = net.add_device(Device::new("c", DeviceRole::Router, 2));
        net.connect((a, PortId(1)), (b, PortId(0)), LinkProperties::lan())
            .unwrap();
        net.connect((b, PortId(1)), (c, PortId(0)), LinkProperties::lan())
            .unwrap();
        let nbrs = net.physical_neighbors(b);
        assert_eq!(nbrs.len(), 2);
        assert!(nbrs.contains(&(PortId(0), a, PortId(1))));
        assert!(nbrs.contains(&(PortId(1), c, PortId(0))));
        assert_eq!(net.physical_neighbors(a).len(), 1);
    }

    #[test]
    fn connect_errors() {
        let mut net = Network::new();
        let a = net.add_device(Device::new("a", DeviceRole::Host, 1));
        let b = net.add_device(Device::new("b", DeviceRole::Host, 1));
        assert!(matches!(
            net.connect((a, PortId(5)), (b, PortId(0)), LinkProperties::lan()),
            Err(NetworkError::UnknownPort(..))
        ));
        net.connect((a, PortId(0)), (b, PortId(0)), LinkProperties::lan())
            .unwrap();
        assert!(matches!(
            net.connect((a, PortId(0)), (b, PortId(0)), LinkProperties::lan()),
            Err(NetworkError::PortInUse(..))
        ));
        assert!(net.device_by_name("a").is_ok());
        assert!(net.device_by_name("zzz").is_err());
    }
}
