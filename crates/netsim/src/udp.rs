//! Minimal UDP codec.  The paper's out-of-band management channel carried
//! CONMan messages over UDP/IP on a dedicated management NIC; the simulator
//! provides the same encapsulation for parity, and applications in examples
//! use UDP as their transport.

use crate::{CodecError, CodecResult};
use serde::{Deserialize, Serialize};

/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;

/// A decoded UDP datagram header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl UdpHeader {
    /// Build a header.
    pub fn new(src_port: u16, dst_port: u16) -> Self {
        UdpHeader { src_port, dst_port }
    }

    /// Encode header + payload into a datagram (checksum left zero, which is
    /// legal for IPv4 UDP).
    pub fn encode_datagram(&self, payload: &[u8]) -> Vec<u8> {
        let len = (UDP_HEADER_LEN + payload.len()) as u16;
        let mut out = Vec::with_capacity(UDP_HEADER_LEN + payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Decode a datagram into header and payload.
    pub fn decode_datagram(bytes: &[u8]) -> CodecResult<(UdpHeader, Vec<u8>)> {
        if bytes.len() < UDP_HEADER_LEN {
            return Err(CodecError::Truncated {
                what: "udp",
                needed: UDP_HEADER_LEN,
                got: bytes.len(),
            });
        }
        let len = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
        if len < UDP_HEADER_LEN || len > bytes.len() {
            return Err(CodecError::BadField {
                what: "udp length",
                value: len as u64,
            });
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
                dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            },
            bytes[UDP_HEADER_LEN..len].to_vec(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = UdpHeader::new(5000, 592);
        let d = h.encode_datagram(b"conman");
        let (g, payload) = UdpHeader::decode_datagram(&d).unwrap();
        assert_eq!(g, h);
        assert_eq!(payload, b"conman");
    }

    #[test]
    fn length_field_is_validated() {
        let h = UdpHeader::new(1, 2);
        let mut d = h.encode_datagram(&[0u8; 4]);
        d[4] = 0;
        d[5] = 3; // shorter than the header itself
        assert!(UdpHeader::decode_datagram(&d).is_err());
        assert!(UdpHeader::decode_datagram(&[0u8; 3]).is_err());
    }
}
