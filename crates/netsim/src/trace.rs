//! Packet tracing.
//!
//! Every frame placed on a link is summarised and recorded.  Integration
//! tests use the trace to assert that, for example, a customer packet really
//! did cross the ISP core inside `ETH / IP / GRE / IP` after the NM
//! configured the GRE path, mirroring the end-to-end checks the authors did
//! on their testbed.

use crate::clock::SimTime;
use crate::device::{DeviceId, PortId};
use crate::ether::{EtherType, EthernetFrame};
use crate::gre::GreHeader;
use crate::ipv4::{Ipv4Header, Ipv4Proto};
use crate::link::LinkId;
use crate::mpls;
use crate::vlan;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One protocol layer observed in a frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layer {
    /// Ethernet header.
    Ethernet,
    /// 802.1Q VLAN tag with the given VLAN id.
    Vlan(u16),
    /// MPLS label.
    Mpls(u32),
    /// IPv4 header (src, dst as dotted strings to stay serde-friendly).
    Ipv4 {
        /// Source address.
        src: String,
        /// Destination address.
        dst: String,
        /// Payload protocol.
        proto: String,
    },
    /// GRE header (key if present).
    Gre {
        /// Key carried in the header.
        key: Option<u32>,
    },
    /// ARP packet.
    Arp,
    /// Management-channel frame.
    Management,
    /// Anything the summariser does not parse further.
    Payload(usize),
}

/// A compact, human-readable description of a frame's encapsulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketSummary {
    /// Layers from outermost to innermost.
    pub layers: Vec<Layer>,
    /// Total frame length in bytes.
    pub len: usize,
}

impl PacketSummary {
    /// Parse a raw Ethernet frame into a layer summary.  Parsing is
    /// best-effort: anything unrecognised is recorded as a payload layer.
    pub fn parse(bytes: &[u8]) -> PacketSummary {
        let mut layers = Vec::new();
        let len = bytes.len();
        match EthernetFrame::decode(bytes) {
            Ok(frame) => {
                layers.push(Layer::Ethernet);
                Self::parse_ether_payload(frame.ethertype, &frame.payload, &mut layers);
            }
            Err(_) => layers.push(Layer::Payload(len)),
        }
        PacketSummary { layers, len }
    }

    fn parse_ether_payload(ethertype: EtherType, payload: &[u8], layers: &mut Vec<Layer>) {
        match ethertype {
            EtherType::Vlan => match vlan::pop_tag(payload) {
                Ok((tag, inner)) => {
                    layers.push(Layer::Vlan(tag.vid.value()));
                    Self::parse_ether_payload(tag.inner_ethertype, &inner, layers);
                }
                Err(_) => layers.push(Layer::Payload(payload.len())),
            },
            EtherType::Mpls => match mpls::decode_stack(payload) {
                Ok((stack, inner)) => {
                    for entry in &stack {
                        layers.push(Layer::Mpls(entry.label.value()));
                    }
                    Self::parse_ipv4(&inner, layers);
                }
                Err(_) => layers.push(Layer::Payload(payload.len())),
            },
            EtherType::Ipv4 => Self::parse_ipv4(payload, layers),
            EtherType::Arp => layers.push(Layer::Arp),
            EtherType::Management => layers.push(Layer::Management),
            EtherType::Other(_) => layers.push(Layer::Payload(payload.len())),
        }
    }

    fn parse_ipv4(payload: &[u8], layers: &mut Vec<Layer>) {
        match Ipv4Header::decode_packet(payload) {
            Ok((h, inner)) => {
                layers.push(Layer::Ipv4 {
                    src: h.src.to_string(),
                    dst: h.dst.to_string(),
                    proto: h.protocol.to_string(),
                });
                match h.protocol {
                    Ipv4Proto::Gre => match GreHeader::decode_packet(&inner) {
                        Ok((g, gre_inner)) => {
                            layers.push(Layer::Gre { key: g.key });
                            Self::parse_ipv4(&gre_inner, layers);
                        }
                        Err(_) => layers.push(Layer::Payload(inner.len())),
                    },
                    Ipv4Proto::IpIp => Self::parse_ipv4(&inner, layers),
                    _ => layers.push(Layer::Payload(inner.len())),
                }
            }
            Err(_) => layers.push(Layer::Payload(payload.len())),
        }
    }

    /// Short textual form such as `ETH/IP(204.9.168.1->204.9.169.1 GRE)/GRE(key=2001)/IP(10.0.1.5->10.0.2.5 UDP)`.
    pub fn protocol_path(&self) -> String {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Ethernet => "ETH".to_string(),
                Layer::Vlan(v) => format!("VLAN({v})"),
                Layer::Mpls(l) => format!("MPLS({l})"),
                Layer::Ipv4 { src, dst, proto } => format!("IP({src}->{dst} {proto})"),
                Layer::Gre { key } => match key {
                    Some(k) => format!("GRE(key={k})"),
                    None => "GRE".to_string(),
                },
                Layer::Arp => "ARP".to_string(),
                Layer::Management => "MGMT".to_string(),
                Layer::Payload(n) => format!("payload[{n}]"),
            })
            .collect::<Vec<_>>()
            .join("/")
    }

    /// Names of the protocol layers only (no addresses), e.g.
    /// `["ETH", "IP", "GRE", "IP"]`.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Ethernet => "ETH",
                Layer::Vlan(_) => "VLAN",
                Layer::Mpls(_) => "MPLS",
                Layer::Ipv4 { .. } => "IP",
                Layer::Gre { .. } => "GRE",
                Layer::Arp => "ARP",
                Layer::Management => "MGMT",
                Layer::Payload(_) => "PAYLOAD",
            })
            .collect()
    }
}

impl fmt::Display for PacketSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} bytes)", self.protocol_path(), self.len)
    }
}

/// One record in the network packet trace: a frame transmitted onto a link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceEntry {
    /// When the frame was transmitted.
    pub time: SimTime,
    /// Transmitting device.
    pub from_device: DeviceId,
    /// Transmitting port.
    pub from_port: PortId,
    /// Link the frame was placed on.
    pub link: LinkId,
    /// Parsed summary of the frame.
    pub summary: PacketSummary,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::MacAddr;
    use std::net::Ipv4Addr;

    #[test]
    fn summarises_gre_in_ip() {
        let inner = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 1, 5),
            Ipv4Addr::new(10, 0, 2, 5),
            Ipv4Proto::Udp,
        )
        .encode_packet(&[0u8; 8]);
        let gre = GreHeader::ipv4(Some(2001), Some(1), false).encode_packet(&inner);
        let outer = Ipv4Header::new(
            Ipv4Addr::new(204, 9, 168, 1),
            Ipv4Addr::new(204, 9, 169, 1),
            Ipv4Proto::Gre,
        )
        .encode_packet(&gre);
        let frame = EthernetFrame::new(
            MacAddr::for_port(2, 0),
            MacAddr::for_port(1, 0),
            EtherType::Ipv4,
            outer,
        );
        let summary = PacketSummary::parse(&frame.encode());
        assert_eq!(
            summary.layer_names(),
            vec!["ETH", "IP", "GRE", "IP", "PAYLOAD"]
        );
        assert!(summary.protocol_path().contains("key=2001"));
    }

    #[test]
    fn summarises_mpls_and_vlan() {
        let ip = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 1, 1),
            Ipv4Addr::new(10, 0, 2, 1),
            Ipv4Proto::Icmp,
        )
        .encode_packet(&[]);
        let mpls_payload = mpls::encode_stack(
            &[mpls::LabelStackEntry::new(
                mpls::Label::new(10001).unwrap(),
                true,
            )],
            &ip,
        );
        let frame = EthernetFrame::new(
            MacAddr::BROADCAST,
            MacAddr::for_port(1, 0),
            EtherType::Mpls,
            mpls_payload,
        );
        let s = PacketSummary::parse(&frame.encode());
        assert_eq!(s.layer_names(), vec!["ETH", "MPLS", "IP", "PAYLOAD"]);

        let tagged = vlan::push_tag(crate::vlan::VlanId::new(22).unwrap(), EtherType::Ipv4, &ip);
        let frame = EthernetFrame::new(
            MacAddr::BROADCAST,
            MacAddr::for_port(1, 0),
            EtherType::Vlan,
            tagged,
        );
        let s = PacketSummary::parse(&frame.encode());
        assert_eq!(s.layer_names(), vec!["ETH", "VLAN", "IP", "PAYLOAD"]);
    }

    #[test]
    fn garbage_is_payload() {
        let s = PacketSummary::parse(&[1, 2, 3]);
        assert_eq!(s.layer_names(), vec!["PAYLOAD"]);
    }
}
