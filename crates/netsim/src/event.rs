//! Discrete-event scheduler.
//!
//! The network advances by popping the earliest pending event from a binary
//! heap.  Ties are broken by insertion sequence number so that event ordering
//! is fully deterministic.

use crate::clock::SimTime;
use crate::device::{DeviceId, PortId};
use crate::link::LinkId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled for execution at a simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A frame finishes arriving at `device` on `port`.
    FrameArrival {
        /// Receiving device.
        device: DeviceId,
        /// Receiving port on that device.
        port: PortId,
        /// Link the frame travelled over.
        link: LinkId,
        /// Raw frame bytes (Ethernet frame).
        frame: Vec<u8>,
    },
    /// A device timer fires (used for ARP retries, periodic self-tests, ...).
    Timer {
        /// Device whose timer fires.
        device: DeviceId,
        /// Opaque timer identifier interpreted by the device.
        token: u64,
    },
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest seq)
        // event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    now: SimTime,
    processed: u64,
}

impl EventQueue {
    /// Create an empty queue positioned at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `event` for execution at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to "now": the simulator never moves
    /// backwards.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pop the next event if one exists at or before `horizon`, advancing the
    /// clock to its timestamp.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, Event)> {
        if let Some(top) = self.heap.peek() {
            if top.at > horizon {
                return None;
            }
        }
        let s = self.heap.pop()?;
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.event))
    }

    /// Pop the next event regardless of time.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.pop_before(SimTime::MAX)
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Advance the clock to `t` (never backwards).  Used when simulated time
    /// must pass even though no events are pending — e.g. between telemetry
    /// sampling rounds or while waiting for a scheduled fault.
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimTime;

    fn timer(dev: u64, token: u64) -> Event {
        Event::Timer {
            device: DeviceId::from_raw(dev),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), timer(1, 5));
        q.schedule(SimTime::from_millis(1), timer(1, 1));
        q.schedule(SimTime::from_millis(3), timer(1, 3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_millis(7), timer(1, i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn horizon_is_respected() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), timer(1, 1));
        q.schedule(SimTime::from_millis(10), timer(1, 10));
        assert!(q.pop_before(SimTime::from_millis(5)).is_some());
        assert!(q.pop_before(SimTime::from_millis(5)).is_none());
        assert_eq!(q.pending(), 1);
    }

    #[test]
    fn scheduling_in_the_past_is_clamped() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), timer(1, 0));
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(10));
        q.schedule(SimTime::from_millis(1), timer(1, 1));
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, SimTime::from_millis(10));
    }
}
