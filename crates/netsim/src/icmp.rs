//! Minimal ICMP echo codec, used by the CONMan debugging primitives
//! (module self-tests send echo requests over the data plane, §II-D.2).

use crate::ipv4::internet_checksum;
use crate::{CodecError, CodecResult};
use serde::{Deserialize, Serialize};

/// ICMP header length for echo messages.
pub const ICMP_ECHO_LEN: usize = 8;

/// ICMP message kinds supported by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IcmpKind {
    /// Echo request (type 8).
    EchoRequest,
    /// Echo reply (type 0).
    EchoReply,
    /// Destination unreachable (type 3) with the given code.
    Unreachable(u8),
}

/// A decoded ICMP echo-style message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IcmpMessage {
    /// Message kind.
    pub kind: IcmpKind,
    /// Identifier (echo only; zero otherwise).
    pub identifier: u16,
    /// Sequence number (echo only; zero otherwise).
    pub sequence: u16,
    /// Payload carried in the echo.
    pub payload: Vec<u8>,
}

impl IcmpMessage {
    /// Build an echo request.
    pub fn echo_request(identifier: u16, sequence: u16, payload: Vec<u8>) -> Self {
        IcmpMessage {
            kind: IcmpKind::EchoRequest,
            identifier,
            sequence,
            payload,
        }
    }

    /// Build the matching echo reply.
    pub fn reply(&self) -> Self {
        IcmpMessage {
            kind: IcmpKind::EchoReply,
            identifier: self.identifier,
            sequence: self.sequence,
            payload: self.payload.clone(),
        }
    }

    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let (ty, code) = match self.kind {
            IcmpKind::EchoRequest => (8u8, 0u8),
            IcmpKind::EchoReply => (0u8, 0u8),
            IcmpKind::Unreachable(code) => (3u8, code),
        };
        let mut out = Vec::with_capacity(ICMP_ECHO_LEN + self.payload.len());
        out.push(ty);
        out.push(code);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.identifier.to_be_bytes());
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.extend_from_slice(&self.payload);
        let csum = internet_checksum(&out);
        out[2..4].copy_from_slice(&csum.to_be_bytes());
        out
    }

    /// Decode from wire bytes, verifying the checksum.
    pub fn decode(bytes: &[u8]) -> CodecResult<Self> {
        if bytes.len() < ICMP_ECHO_LEN {
            return Err(CodecError::Truncated {
                what: "icmp",
                needed: ICMP_ECHO_LEN,
                got: bytes.len(),
            });
        }
        if internet_checksum(bytes) != 0 {
            return Err(CodecError::BadChecksum("icmp"));
        }
        let kind = match (bytes[0], bytes[1]) {
            (8, 0) => IcmpKind::EchoRequest,
            (0, 0) => IcmpKind::EchoReply,
            (3, code) => IcmpKind::Unreachable(code),
            (ty, _) => {
                return Err(CodecError::BadField {
                    what: "icmp type",
                    value: ty as u64,
                })
            }
        };
        Ok(IcmpMessage {
            kind,
            identifier: u16::from_be_bytes([bytes[4], bytes[5]]),
            sequence: u16::from_be_bytes([bytes[6], bytes[7]]),
            payload: bytes[ICMP_ECHO_LEN..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let req = IcmpMessage::echo_request(0x1234, 7, vec![1, 2, 3]);
        let dec = IcmpMessage::decode(&req.encode()).unwrap();
        assert_eq!(req, dec);
        let rep = req.reply();
        assert_eq!(rep.kind, IcmpKind::EchoReply);
        assert_eq!(rep.identifier, 0x1234);
        assert_eq!(rep.sequence, 7);
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = IcmpMessage::echo_request(1, 1, vec![0u8; 16]).encode();
        bytes[10] ^= 0x55;
        assert!(IcmpMessage::decode(&bytes).is_err());
    }

    #[test]
    fn unreachable_roundtrip() {
        let msg = IcmpMessage {
            kind: IcmpKind::Unreachable(1),
            identifier: 0,
            sequence: 0,
            payload: vec![],
        };
        let dec = IcmpMessage::decode(&msg.encode()).unwrap();
        assert_eq!(dec.kind, IcmpKind::Unreachable(1));
    }
}
