//! Device configuration.
//!
//! Everything that the paper's scripts configure — IP addresses, forwarding,
//! tunnels, MPLS tables, VLANs, policy routes, filters — lives in a
//! [`DeviceConfig`].  Both the CONMan modules (via the NM primitives) and the
//! legacy "today" script interpreters write into this structure; the
//! forwarding engine reads it.

use crate::ipv4::{Ipv4Cidr, Ipv4Proto};
use crate::mpls::MplsTables;
use crate::route::Rib;
use crate::vlan::VlanId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Configuration of one GRE (or IP-IP) tunnel endpoint, mirroring the
/// arguments of `ip tunnel add` in Figure 7(a).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TunnelConfig {
    /// Device-local tunnel identifier.
    pub id: u32,
    /// Interface name shown in generated scripts (e.g. `greA`, `gre-P1-P2`).
    pub name: String,
    /// Tunnel mode.
    pub mode: TunnelMode,
    /// Local (outer source) address.
    pub local: Ipv4Addr,
    /// Remote (outer destination) address.
    pub remote: Ipv4Addr,
    /// GRE key expected on received packets (`ikey`).
    pub ikey: Option<u32>,
    /// GRE key stamped on transmitted packets (`okey`).
    pub okey: Option<u32>,
    /// Verify checksums on receive (`icsum`).
    pub icsum: bool,
    /// Add checksums on transmit (`ocsum`).
    pub ocsum: bool,
    /// Require in-order sequence numbers on receive (`iseq`).
    pub iseq: bool,
    /// Stamp sequence numbers on transmit (`oseq`).
    pub oseq: bool,
    /// Outer TTL.
    pub ttl: u8,
    /// Address assigned to the tunnel interface (`ifconfig greA ...`).
    pub address: Option<Ipv4Cidr>,
}

/// Tunnel encapsulation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TunnelMode {
    /// GRE over IPv4 (`mode gre`).
    Gre,
    /// Plain IP-in-IP (`mode ipip`).
    IpIp,
}

impl TunnelConfig {
    /// A plain GRE tunnel with no options, the starting point the CONMan GRE
    /// module then refines through peer negotiation.
    pub fn gre(id: u32, name: impl Into<String>, local: Ipv4Addr, remote: Ipv4Addr) -> Self {
        TunnelConfig {
            id,
            name: name.into(),
            mode: TunnelMode::Gre,
            local,
            remote,
            ikey: None,
            okey: None,
            icsum: false,
            ocsum: false,
            iseq: false,
            oseq: false,
            ttl: 64,
            address: None,
        }
    }

    /// A plain IP-IP tunnel.
    pub fn ipip(id: u32, name: impl Into<String>, local: Ipv4Addr, remote: Ipv4Addr) -> Self {
        TunnelConfig {
            mode: TunnelMode::IpIp,
            ..TunnelConfig::gre(id, name, local, remote)
        }
    }
}

/// How a switch port participates in VLANs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchPortMode {
    /// Untagged access port in a single VLAN.
    Access(VlanId),
    /// 802.1Q tunnel (Q-in-Q) access port: customer frames (tagged or not)
    /// get an additional provider tag — `switchport mode dot1q-tunnel`.
    Dot1qTunnel(VlanId),
    /// Trunk port carrying the listed VLANs with tags.
    Trunk(Vec<VlanId>),
}

/// Per-VLAN metadata (`set vlan 22 name C1 mtu 1504`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VlanConfig {
    /// VLAN name.
    pub name: String,
    /// MTU configured for the VLAN (needs 4 extra bytes for Q-in-Q).
    pub mtu: u16,
}

/// Layer-2 bridging configuration of a switch device.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BridgeConfig {
    /// Port modes keyed by port index.
    pub ports: BTreeMap<u32, SwitchPortMode>,
    /// Declared VLANs.
    pub vlans: BTreeMap<u16, VlanConfig>,
}

impl BridgeConfig {
    /// Declare a VLAN.
    pub fn declare_vlan(&mut self, vid: VlanId, name: impl Into<String>, mtu: u16) {
        self.vlans.insert(
            vid.value(),
            VlanConfig {
                name: name.into(),
                mtu,
            },
        );
    }

    /// Configure a port's mode.
    pub fn set_port(&mut self, port: u32, mode: SwitchPortMode) {
        self.ports.insert(port, mode);
    }
}

/// Action of a filter rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterAction {
    /// Silently drop matching packets.
    Drop,
    /// Explicitly allow matching packets (overrides later drops).
    Allow,
}

/// A low-level filter rule.  The CONMan filter abstraction ("drop packets
/// from module X to module Y") is resolved by modules into these concrete
/// field matches via `listFieldsAndValues` (§II-E).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterRule {
    /// Rule identifier (used for delete).
    pub id: u32,
    /// Drop or allow.
    pub action: FilterAction,
    /// Source prefix to match, if any.
    pub src: Option<Ipv4Cidr>,
    /// Destination prefix to match, if any.
    pub dst: Option<Ipv4Cidr>,
    /// Protocol to match, if any.
    pub proto: Option<Ipv4Proto>,
    /// Destination transport port to match, if any (UDP only).
    pub dst_port: Option<u16>,
}

impl FilterRule {
    /// Does this rule match the given packet fields?
    pub fn matches(
        &self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        proto: Ipv4Proto,
        dst_port: Option<u16>,
    ) -> bool {
        self.src.is_none_or(|p| p.contains(src))
            && self.dst.is_none_or(|p| p.contains(dst))
            && self.proto.is_none_or(|p| p == proto)
            && match (self.dst_port, dst_port) {
                (None, _) => true,
                (Some(want), Some(got)) => want == got,
                (Some(_), None) => false,
            }
    }
}

/// Complete configuration of a simulated device.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Is IPv4 forwarding enabled (`echo 1 > /proc/sys/net/ipv4/ip_forward`)?
    pub ip_forwarding: bool,
    /// IPv4 addresses assigned per port.
    pub port_addresses: BTreeMap<u32, Vec<Ipv4Cidr>>,
    /// Routing information base (tables + policy rules).
    pub rib: Rib,
    /// Configured tunnels keyed by tunnel id.
    pub tunnels: BTreeMap<u32, TunnelConfig>,
    /// MPLS label-switching state.
    pub mpls: MplsTables,
    /// Layer-2 bridge configuration (switches only).
    pub bridge: Option<BridgeConfig>,
    /// Packet filters evaluated on forwarding and local delivery.
    pub filters: Vec<FilterRule>,
    /// UDP ports delivered locally to an application sink.
    pub local_udp_ports: Vec<u16>,
}

impl DeviceConfig {
    /// A blank configuration with an empty main routing table.
    pub fn new() -> Self {
        DeviceConfig {
            rib: Rib::new(),
            ..Default::default()
        }
    }

    /// Assign an address to a port.
    pub fn add_port_address(&mut self, port: u32, addr: Ipv4Cidr) {
        self.port_addresses.entry(port).or_default().push(addr);
    }

    /// Assign an address to a port and install the corresponding connected
    /// route in the main table (what `ifconfig`/`ip addr add` does on Linux).
    pub fn assign_address(&mut self, port: u32, addr: Ipv4Cidr) {
        self.add_port_address(port, addr);
        self.rib.add_main(crate::route::Route {
            dest: Ipv4Cidr::new(addr.network(), addr.prefix_len),
            target: crate::route::RouteTarget::Port { port, via: None },
        });
    }

    /// All addresses assigned to the device (ports and tunnels).
    pub fn local_addresses(&self) -> Vec<Ipv4Addr> {
        let mut out: Vec<Ipv4Addr> = self
            .port_addresses
            .values()
            .flatten()
            .map(|c| c.addr)
            .collect();
        out.extend(
            self.tunnels
                .values()
                .filter_map(|t| t.address.map(|c| c.addr)),
        );
        out
    }

    /// Is `addr` one of this device's local addresses?
    pub fn is_local_address(&self, addr: Ipv4Addr) -> bool {
        self.local_addresses().contains(&addr)
    }

    /// The port (and its prefix) whose subnet contains `addr`, if any.
    pub fn port_for_subnet(&self, addr: Ipv4Addr) -> Option<(u32, Ipv4Cidr)> {
        for (port, cidrs) in &self.port_addresses {
            for c in cidrs {
                if c.contains(addr) {
                    return Some((*port, *c));
                }
            }
        }
        None
    }

    /// The address assigned to a port within the given subnet, used as the
    /// source of locally originated packets.
    pub fn address_on_port(&self, port: u32) -> Option<Ipv4Cidr> {
        self.port_addresses
            .get(&port)
            .and_then(|v| v.first())
            .copied()
    }

    /// Evaluate filters: `true` means the packet may proceed.
    pub fn filters_allow(
        &self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        proto: Ipv4Proto,
        dst_port: Option<u16>,
    ) -> bool {
        for rule in &self.filters {
            if rule.matches(src, dst, proto, dst_port) {
                return match rule.action {
                    FilterAction::Allow => true,
                    FilterAction::Drop => false,
                };
            }
        }
        true
    }

    /// Find a tunnel whose outer addresses match a received, decapsulatable
    /// packet (remote is the packet's source, local is its destination), and
    /// whose key expectation matches.
    pub fn tunnel_for_incoming(
        &self,
        outer_src: Ipv4Addr,
        outer_dst: Ipv4Addr,
        key: Option<u32>,
        mode: TunnelMode,
    ) -> Option<&TunnelConfig> {
        self.tunnels.values().find(|t| {
            t.mode == mode && t.remote == outer_src && t.local == outer_dst && t.ikey == key
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    #[test]
    fn local_addresses_include_tunnels() {
        let mut cfg = DeviceConfig::new();
        cfg.add_port_address(0, cidr("10.0.1.1/24"));
        let mut t = TunnelConfig::gre(
            1,
            "greA",
            "204.9.168.1".parse().unwrap(),
            "204.9.169.1".parse().unwrap(),
        );
        t.address = Some(cidr("192.168.3.1/24"));
        cfg.tunnels.insert(1, t);
        assert!(cfg.is_local_address("10.0.1.1".parse().unwrap()));
        assert!(cfg.is_local_address("192.168.3.1".parse().unwrap()));
        assert!(!cfg.is_local_address("10.0.1.2".parse().unwrap()));
        assert_eq!(
            cfg.port_for_subnet("10.0.1.200".parse().unwrap()),
            Some((0, cidr("10.0.1.1/24")))
        );
    }

    #[test]
    fn filter_rules_first_match_wins() {
        let mut cfg = DeviceConfig::new();
        cfg.filters.push(FilterRule {
            id: 1,
            action: FilterAction::Allow,
            src: Some(cidr("10.0.1.0/24")),
            dst: None,
            proto: None,
            dst_port: None,
        });
        cfg.filters.push(FilterRule {
            id: 2,
            action: FilterAction::Drop,
            src: None,
            dst: Some(cidr("10.0.2.0/24")),
            proto: None,
            dst_port: None,
        });
        // Allowed by rule 1 even though rule 2 would drop.
        assert!(cfg.filters_allow(
            "10.0.1.5".parse().unwrap(),
            "10.0.2.5".parse().unwrap(),
            Ipv4Proto::Udp,
            Some(592)
        ));
        // Dropped by rule 2.
        assert!(!cfg.filters_allow(
            "172.16.0.1".parse().unwrap(),
            "10.0.2.5".parse().unwrap(),
            Ipv4Proto::Udp,
            None
        ));
        // No rule matches: allowed.
        assert!(cfg.filters_allow(
            "172.16.0.1".parse().unwrap(),
            "172.16.0.2".parse().unwrap(),
            Ipv4Proto::Icmp,
            None
        ));
    }

    #[test]
    fn filter_port_matching() {
        let rule = FilterRule {
            id: 1,
            action: FilterAction::Drop,
            src: None,
            dst: None,
            proto: Some(Ipv4Proto::Udp),
            dst_port: Some(592),
        };
        assert!(rule.matches(
            "1.1.1.1".parse().unwrap(),
            "2.2.2.2".parse().unwrap(),
            Ipv4Proto::Udp,
            Some(592)
        ));
        assert!(!rule.matches(
            "1.1.1.1".parse().unwrap(),
            "2.2.2.2".parse().unwrap(),
            Ipv4Proto::Udp,
            Some(80)
        ));
        assert!(!rule.matches(
            "1.1.1.1".parse().unwrap(),
            "2.2.2.2".parse().unwrap(),
            Ipv4Proto::Udp,
            None
        ));
    }

    #[test]
    fn tunnel_matching_checks_keys() {
        let mut cfg = DeviceConfig::new();
        let mut t = TunnelConfig::gre(
            1,
            "greA",
            "204.9.169.1".parse().unwrap(),
            "204.9.168.1".parse().unwrap(),
        );
        t.ikey = Some(1001);
        cfg.tunnels.insert(1, t);
        // Incoming packet: outer src = remote end, outer dst = our local.
        assert!(cfg
            .tunnel_for_incoming(
                "204.9.168.1".parse().unwrap(),
                "204.9.169.1".parse().unwrap(),
                Some(1001),
                TunnelMode::Gre
            )
            .is_some());
        // Wrong key -> no match (the classic misconfiguration the paper cites).
        assert!(cfg
            .tunnel_for_incoming(
                "204.9.168.1".parse().unwrap(),
                "204.9.169.1".parse().unwrap(),
                Some(9999),
                TunnelMode::Gre
            )
            .is_none());
    }
}
