//! IEEE 802.1Q VLAN tagging, including the double-tagging (Q-in-Q /
//! "dot1q-tunnel") mode used by the paper's VLAN-tunnelling VPN scenario
//! (Figure 9).

use crate::ether::EtherType;
use crate::{CodecError, CodecResult};
use serde::{Deserialize, Serialize};

/// Length of an 802.1Q tag: TCI (2 bytes) + inner EtherType (2 bytes).
pub const VLAN_TAG_LEN: usize = 4;

/// A VLAN identifier (12 bits, 1..=4094 usable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VlanId(u16);

impl VlanId {
    /// Construct a VLAN id, returning `None` when out of the 1..=4094 range.
    pub fn new(id: u16) -> Option<Self> {
        if (1..=4094).contains(&id) {
            Some(VlanId(id))
        } else {
            None
        }
    }

    /// The numeric identifier.
    pub fn value(self) -> u16 {
        self.0
    }
}

impl std::fmt::Display for VlanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A decoded 802.1Q tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VlanTag {
    /// Priority code point (0..=7).
    pub pcp: u8,
    /// Drop eligible indicator.
    pub dei: bool,
    /// VLAN identifier.
    pub vid: VlanId,
    /// EtherType of the encapsulated payload.
    pub inner_ethertype: EtherType,
}

impl VlanTag {
    /// Build a tag with default priority.
    pub fn new(vid: VlanId, inner_ethertype: EtherType) -> Self {
        VlanTag {
            pcp: 0,
            dei: false,
            vid,
            inner_ethertype,
        }
    }

    /// Encode the 4-byte tag (TCI + inner EtherType).
    pub fn encode(&self) -> [u8; VLAN_TAG_LEN] {
        let tci: u16 =
            ((self.pcp as u16) << 13) | ((self.dei as u16) << 12) | (self.vid.value() & 0x0fff);
        let et = self.inner_ethertype.as_u16();
        [
            (tci >> 8) as u8,
            (tci & 0xff) as u8,
            (et >> 8) as u8,
            (et & 0xff) as u8,
        ]
    }

    /// Decode a tag from the first 4 bytes of `bytes`.
    pub fn decode(bytes: &[u8]) -> CodecResult<Self> {
        if bytes.len() < VLAN_TAG_LEN {
            return Err(CodecError::Truncated {
                what: "802.1Q",
                needed: VLAN_TAG_LEN,
                got: bytes.len(),
            });
        }
        let tci = u16::from_be_bytes([bytes[0], bytes[1]]);
        let vid_raw = tci & 0x0fff;
        let vid = VlanId::new(vid_raw).ok_or(CodecError::BadField {
            what: "802.1Q vid",
            value: vid_raw as u64,
        })?;
        Ok(VlanTag {
            pcp: (tci >> 13) as u8,
            dei: (tci >> 12) & 1 == 1,
            vid,
            inner_ethertype: EtherType::from_u16(u16::from_be_bytes([bytes[2], bytes[3]])),
        })
    }
}

/// Push a VLAN tag onto an Ethernet payload: returns the new payload for an
/// outer frame whose EtherType must be [`EtherType::Vlan`].
///
/// `inner_ethertype` is the EtherType the untagged frame carried, and
/// `payload` its payload.
pub fn push_tag(vid: VlanId, inner_ethertype: EtherType, payload: &[u8]) -> Vec<u8> {
    let tag = VlanTag::new(vid, inner_ethertype);
    let mut out = Vec::with_capacity(VLAN_TAG_LEN + payload.len());
    out.extend_from_slice(&tag.encode());
    out.extend_from_slice(payload);
    out
}

/// Pop a VLAN tag from the payload of a frame whose EtherType was
/// [`EtherType::Vlan`]: returns the tag and the inner payload.
pub fn pop_tag(payload: &[u8]) -> CodecResult<(VlanTag, Vec<u8>)> {
    let tag = VlanTag::decode(payload)?;
    Ok((tag, payload[VLAN_TAG_LEN..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vid_range() {
        assert!(VlanId::new(0).is_none());
        assert!(VlanId::new(4095).is_none());
        assert_eq!(VlanId::new(22).unwrap().value(), 22);
    }

    #[test]
    fn tag_roundtrip() {
        let tag = VlanTag {
            pcp: 5,
            dei: true,
            vid: VlanId::new(22).unwrap(),
            inner_ethertype: EtherType::Ipv4,
        };
        let enc = tag.encode();
        let dec = VlanTag::decode(&enc).unwrap();
        assert_eq!(tag, dec);
    }

    #[test]
    fn push_pop_roundtrip() {
        let payload = vec![9u8; 40];
        let tagged = push_tag(VlanId::new(100).unwrap(), EtherType::Ipv4, &payload);
        assert_eq!(tagged.len(), payload.len() + VLAN_TAG_LEN);
        let (tag, inner) = pop_tag(&tagged).unwrap();
        assert_eq!(tag.vid.value(), 100);
        assert_eq!(tag.inner_ethertype, EtherType::Ipv4);
        assert_eq!(inner, payload);
    }

    #[test]
    fn double_tagging_qinq() {
        // Customer frame tagged with VLAN 7, provider adds outer VLAN 22.
        let customer = push_tag(VlanId::new(7).unwrap(), EtherType::Ipv4, &[1, 2, 3]);
        let provider = push_tag(VlanId::new(22).unwrap(), EtherType::Vlan, &customer);
        let (outer, rest) = pop_tag(&provider).unwrap();
        assert_eq!(outer.vid.value(), 22);
        assert_eq!(outer.inner_ethertype, EtherType::Vlan);
        let (inner, payload) = pop_tag(&rest).unwrap();
        assert_eq!(inner.vid.value(), 7);
        assert_eq!(payload, vec![1, 2, 3]);
    }

    #[test]
    fn decode_truncated() {
        assert!(VlanTag::decode(&[0, 1]).is_err());
    }
}
