//! Routing state: longest-prefix-match tables plus iproute2-style policy
//! rules (`ip rule add ... table ...`), which the paper's Figure 7(a) script
//! uses to steer customer traffic into tunnels.

use crate::ipv4::Ipv4Cidr;
use crate::mpls::NhlfeKey;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Identifier of a routing table.  Table 254 is "main", as on Linux.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RouteTableId(pub u32);

impl RouteTableId {
    /// The main routing table.
    pub const MAIN: RouteTableId = RouteTableId(254);
}

/// Where a route sends matching packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteTarget {
    /// Send out a physical port, optionally via a gateway.
    Port {
        /// Egress port index.
        port: u32,
        /// Next-hop gateway; `None` means the destination is on-link.
        via: Option<Ipv4Addr>,
    },
    /// Send into a locally configured GRE (or IP-IP) tunnel device.
    Tunnel {
        /// Tunnel identifier in the device configuration.
        tunnel: u32,
    },
    /// Push the packet into an MPLS LSP described by an NHLFE.
    Mpls {
        /// NHLFE key holding the label operation and next hop.
        nhlfe: NhlfeKey,
    },
}

/// A single route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Destination prefix.
    pub dest: Ipv4Cidr,
    /// Forwarding target.
    pub target: RouteTarget,
}

/// One routing table with longest-prefix-match lookup.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteTable {
    routes: Vec<Route>,
}

impl RouteTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a route (duplicates by prefix replace the earlier entry).
    pub fn add(&mut self, route: Route) {
        if let Some(existing) = self.routes.iter_mut().find(|r| {
            r.dest.network() == route.dest.network() && r.dest.prefix_len == route.dest.prefix_len
        }) {
            *existing = route;
        } else {
            self.routes.push(route);
        }
    }

    /// Remove routes for an exact prefix, returning how many were removed.
    pub fn remove(&mut self, dest: Ipv4Cidr) -> usize {
        let before = self.routes.len();
        self.routes.retain(|r| {
            !(r.dest.network() == dest.network() && r.dest.prefix_len == dest.prefix_len)
        });
        before - self.routes.len()
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<&Route> {
        self.routes
            .iter()
            .filter(|r| r.dest.contains(dst))
            .max_by_key(|r| r.dest.prefix_len)
    }

    /// All routes (for showActual-style reporting).
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Number of routes in the table.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

/// What a policy rule matches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuleSelector {
    /// `ip rule add to <prefix>`.
    ToPrefix(Ipv4Cidr),
    /// `ip rule add from <prefix>`.
    FromPrefix(Ipv4Cidr),
    /// `ip rule add iif <tunnel>` — packets that arrived from a tunnel.
    FromTunnel(u32),
    /// `ip rule add iif <port>` — packets that arrived on a physical port.
    FromPort(u32),
    /// Match everything.
    All,
}

/// A policy-routing rule selecting which table to consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyRule {
    /// Lower priorities are evaluated first.
    pub priority: u32,
    /// Match condition.
    pub selector: RuleSelector,
    /// Table to look up when the rule matches.
    pub table: RouteTableId,
}

/// The interface a packet arrived on, for rule matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IncomingIf {
    /// Originated locally.
    Local,
    /// Arrived on a physical port.
    Port(u32),
    /// Arrived decapsulated from a tunnel.
    Tunnel(u32),
}

/// The complete routing information base of a device: named tables plus
/// policy rules, with the main table consulted last (as Linux does with its
/// implicit priority-32766 rule).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rib {
    tables: BTreeMap<RouteTableId, RouteTable>,
    rules: Vec<PolicyRule>,
    /// Human-readable table names (`echo 202 tun-1-2 >> rt_tables`).
    pub table_names: BTreeMap<RouteTableId, String>,
}

impl Rib {
    /// Create an empty RIB with an empty main table.
    pub fn new() -> Self {
        let mut rib = Rib::default();
        rib.tables.insert(RouteTableId::MAIN, RouteTable::new());
        rib
    }

    /// Access (creating if needed) a table.
    pub fn table_mut(&mut self, id: RouteTableId) -> &mut RouteTable {
        self.tables.entry(id).or_default()
    }

    /// Access a table read-only.
    pub fn table(&self, id: RouteTableId) -> Option<&RouteTable> {
        self.tables.get(&id)
    }

    /// Add a route to the main table.
    pub fn add_main(&mut self, route: Route) {
        self.table_mut(RouteTableId::MAIN).add(route);
    }

    /// Register a named table.
    pub fn name_table(&mut self, id: RouteTableId, name: impl Into<String>) {
        self.table_names.insert(id, name.into());
        self.tables.entry(id).or_default();
    }

    /// Add a policy rule.
    pub fn add_rule(&mut self, rule: PolicyRule) {
        self.rules.push(rule);
        self.rules.sort_by_key(|r| r.priority);
    }

    /// Remove every policy rule pointing at `table` with the given priority
    /// (the inverse of `add_rule`; used by module `delete` handlers).
    /// Returns how many rules were removed.
    pub fn remove_rule(&mut self, priority: u32, table: RouteTableId) -> usize {
        let before = self.rules.len();
        self.rules
            .retain(|r| !(r.priority == priority && r.table == table));
        before - self.rules.len()
    }

    /// Drop a whole table (and its name).  The main table is never dropped.
    pub fn drop_table(&mut self, id: RouteTableId) {
        if id != RouteTableId::MAIN {
            self.tables.remove(&id);
            self.table_names.remove(&id);
        }
    }

    /// All rules in priority order.
    pub fn rules(&self) -> &[PolicyRule] {
        &self.rules
    }

    /// All tables.
    pub fn tables(&self) -> impl Iterator<Item = (RouteTableId, &RouteTable)> {
        self.tables.iter().map(|(id, t)| (*id, t))
    }

    /// Route a packet: evaluate policy rules in priority order, falling back
    /// to the main table.
    pub fn lookup(&self, dst: Ipv4Addr, src: Ipv4Addr, iif: IncomingIf) -> Option<&Route> {
        for rule in &self.rules {
            let matches = match rule.selector {
                RuleSelector::ToPrefix(p) => p.contains(dst),
                RuleSelector::FromPrefix(p) => p.contains(src),
                RuleSelector::FromTunnel(t) => iif == IncomingIf::Tunnel(t),
                RuleSelector::FromPort(p) => iif == IncomingIf::Port(p),
                RuleSelector::All => true,
            };
            if matches {
                if let Some(route) = self.tables.get(&rule.table).and_then(|t| t.lookup(dst)) {
                    return Some(route);
                }
            }
        }
        self.tables
            .get(&RouteTableId::MAIN)
            .and_then(|t| t.lookup(dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    #[test]
    fn lpm_prefers_longer_prefix() {
        let mut t = RouteTable::new();
        t.add(Route {
            dest: cidr("10.0.0.0/8"),
            target: RouteTarget::Port { port: 1, via: None },
        });
        t.add(Route {
            dest: cidr("10.0.2.0/24"),
            target: RouteTarget::Port { port: 2, via: None },
        });
        let r = t.lookup(Ipv4Addr::new(10, 0, 2, 9)).unwrap();
        assert!(matches!(r.target, RouteTarget::Port { port: 2, .. }));
        let r = t.lookup(Ipv4Addr::new(10, 9, 9, 9)).unwrap();
        assert!(matches!(r.target, RouteTarget::Port { port: 1, .. }));
        assert!(t.lookup(Ipv4Addr::new(192, 168, 1, 1)).is_none());
    }

    #[test]
    fn add_replaces_same_prefix() {
        let mut t = RouteTable::new();
        t.add(Route {
            dest: cidr("0.0.0.0/0"),
            target: RouteTarget::Port { port: 1, via: None },
        });
        t.add(Route {
            dest: cidr("0.0.0.0/0"),
            target: RouteTarget::Tunnel { tunnel: 3 },
        });
        assert_eq!(t.len(), 1);
        assert!(matches!(
            t.lookup(Ipv4Addr::new(1, 1, 1, 1)).unwrap().target,
            RouteTarget::Tunnel { tunnel: 3 }
        ));
        assert_eq!(t.remove(cidr("0.0.0.0/0")), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn policy_rules_mirror_figure7() {
        // Figure 7(a): traffic to 10.0.2.0/24 goes to table tun-1-2 whose
        // default route is the GRE tunnel; traffic arriving from the tunnel
        // uses table tun-2-1 whose default route is the customer port.
        let mut rib = Rib::new();
        let t12 = RouteTableId(202);
        let t21 = RouteTableId(203);
        rib.name_table(t12, "tun-1-2");
        rib.name_table(t21, "tun-2-1");
        rib.table_mut(t12).add(Route {
            dest: Ipv4Cidr::DEFAULT,
            target: RouteTarget::Tunnel { tunnel: 1 },
        });
        rib.table_mut(t21).add(Route {
            dest: Ipv4Cidr::DEFAULT,
            target: RouteTarget::Port { port: 0, via: None },
        });
        rib.add_rule(PolicyRule {
            priority: 100,
            selector: RuleSelector::ToPrefix(cidr("10.0.2.0/24")),
            table: t12,
        });
        rib.add_rule(PolicyRule {
            priority: 101,
            selector: RuleSelector::FromTunnel(1),
            table: t21,
        });
        rib.add_main(Route {
            dest: cidr("204.9.169.1/32"),
            target: RouteTarget::Port {
                port: 2,
                via: Some(Ipv4Addr::new(204, 9, 168, 2)),
            },
        });

        // Customer packet to site 2 -> tunnel.
        let r = rib
            .lookup(
                Ipv4Addr::new(10, 0, 2, 5),
                Ipv4Addr::new(10, 0, 1, 5),
                IncomingIf::Port(0),
            )
            .unwrap();
        assert!(matches!(r.target, RouteTarget::Tunnel { tunnel: 1 }));

        // Decapsulated packet from the tunnel -> customer port.
        let r = rib
            .lookup(
                Ipv4Addr::new(10, 0, 1, 5),
                Ipv4Addr::new(10, 0, 2, 5),
                IncomingIf::Tunnel(1),
            )
            .unwrap();
        assert!(matches!(r.target, RouteTarget::Port { port: 0, .. }));

        // The tunnel endpoint itself resolves via the main table.
        let r = rib
            .lookup(
                Ipv4Addr::new(204, 9, 169, 1),
                Ipv4Addr::new(204, 9, 168, 1),
                IncomingIf::Local,
            )
            .unwrap();
        assert!(matches!(r.target, RouteTarget::Port { port: 2, .. }));
    }

    #[test]
    fn rule_priority_order_matters() {
        let mut rib = Rib::new();
        let a = RouteTableId(10);
        let b = RouteTableId(20);
        rib.table_mut(a).add(Route {
            dest: Ipv4Cidr::DEFAULT,
            target: RouteTarget::Port { port: 1, via: None },
        });
        rib.table_mut(b).add(Route {
            dest: Ipv4Cidr::DEFAULT,
            target: RouteTarget::Port { port: 2, via: None },
        });
        rib.add_rule(PolicyRule {
            priority: 200,
            selector: RuleSelector::All,
            table: b,
        });
        rib.add_rule(PolicyRule {
            priority: 100,
            selector: RuleSelector::All,
            table: a,
        });
        let r = rib
            .lookup(
                Ipv4Addr::new(1, 2, 3, 4),
                Ipv4Addr::new(5, 6, 7, 8),
                IncomingIf::Local,
            )
            .unwrap();
        assert!(matches!(r.target, RouteTarget::Port { port: 1, .. }));
    }
}
