//! # conman-analyze — static analysis for the CONMan NM
//!
//! CONMan's module abstraction exists so the NM can reason about
//! configuration *before* it touches devices: an invalid plan should be
//! rejected by analysis, not discovered by an outage.  This crate holds the
//! two pure analysis passes that make that claim checkable:
//!
//! * **Pre-flight plan/batch verifier** ([`plan`]) — given a neutral model
//!   of a planned batch ([`BatchModel`]), statically check the invariants
//!   the runtime otherwise only discovers dynamically: pipe-id blocks
//!   pairwise disjoint and under the derived-identifier cap, every script
//!   mirrored by a complete reverse-order teardown, per-device commit order
//!   acyclic across the batch, module refcount claims consistent with the
//!   module → goal index, and no plan crossing its own goal's exclusions.
//! * **Journal conformance checker** ([`conformance`]) — a protocol state
//!   machine over `conman-obs` trace events: spans properly nested and
//!   closed, every accepted stage resolved by a commit or abort in its
//!   pass, no verification probe before its pass committed anything,
//!   simulated timestamps monotone, repair epochs strictly increasing.
//!
//! Both passes return a typed [`Vec<Violation>`] carrying goal / device /
//! pipe provenance, ranked by [`Severity`].  Like the journal format, the
//! input model uses raw integer identifiers and display-string module keys,
//! so this crate sits *below* the management layers (it depends only on
//! `conman-obs`): `conman-core` builds the models and asserts on the
//! verdicts under `debug_assertions`, CI replays recorded journals through
//! the checker, and dumped artefacts can be validated with no live state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod plan;
pub mod violation;

pub use conformance::check_journal;
pub use plan::{verify_batch, BatchModel, DeviceOps, GoalModel};
pub use violation::{Severity, Violation};

/// Do any of the violations break an invariant (severity
/// [`Severity::Fatal`]), as opposed to merely predicting a runtime
/// fallback?
pub fn has_fatal(violations: &[Violation]) -> bool {
    violations.iter().any(|v| v.severity() == Severity::Fatal)
}

/// The fatal subset of `violations`, cloned in order.
pub fn fatal_only(violations: &[Violation]) -> Vec<Violation> {
    violations
        .iter()
        .filter(|v| v.severity() == Severity::Fatal)
        .cloned()
        .collect()
}
