//! The journal conformance checker: a protocol state machine over
//! `conman-obs` trace events.
//!
//! The autonomic loop writes its journal through span enter/exit calls
//! that never appear in the dump — only each event's `parent` pointer
//! survives.  The checker rebuilds the span stack from those pointers and
//! enforces the protocol the runtime promises:
//!
//! * sequence numbers dense and 1-based, simulated timestamps monotone,
//! * every event parented to an open span ([`Violation::BadParent`]),
//! * spans properly closed — `TickStart` by a final `TickEnd`,
//!   `DiagnoseStart` by a `Diagnosed` for the same goal, `RepairStart` by
//!   a `RepairEnd` of the same epoch — with nothing recorded in a span
//!   after its closing event ([`Violation::UnbalancedSpan`]),
//! * tick ordinals and repair epochs strictly increasing,
//! * every accepted `StageDevice` resolved by at least one `CommitDevice`
//!   or `AbortDevice` before its repair pass ends (or the journal does),
//!   with at most one commit per `(txn, device)`,
//! * no `Verify` probe before its pass committed anything.
//!
//! A standalone `Diagnosed` (no opening `DiagnoseStart`) is legal: the
//! runtime records one when a diagnosis concludes without a frontier walk,
//! and hand-built journals use the same shorthand.

use crate::violation::Violation;
use conman_obs::{TraceEvent, TraceKind};
use std::collections::BTreeMap;

/// What kind of span a stack frame tracks.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FrameKind {
    Tick,
    Diagnose { goal: u64 },
    Repair { epoch: u64 },
}

/// One open span on the reconstructed stack.
#[derive(Debug)]
struct Frame {
    seq: u64,
    kind: FrameKind,
    /// Sequence number of the closing event, once seen.
    closed_by: Option<u64>,
    /// `CommitDevice { ok: true }` events recorded while this frame was
    /// open — the scope the verify-ordering rule reads.
    commits_ok: u64,
}

/// Lifecycle of one `(txn, device)` staging.
#[derive(Debug, Default)]
struct StageState {
    staged_ok: bool,
    commits: u64,
    aborts: u64,
    /// The repair frame (by opener seq) the stage belongs to, if any.
    repair: Option<u64>,
}

/// Check a journal event list against the loop/transaction protocol.
/// Returns every violation found; an empty vector means the journal
/// conforms.
pub fn check_journal(events: &[TraceEvent]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();
    let mut stages: BTreeMap<(u64, u64), StageState> = BTreeMap::new();
    let mut prev_ns = 0u64;
    let mut last_tick = 0u64;
    let mut last_epoch = 0u64;
    let mut global_commits_ok = 0u64;

    // Close one popped frame: flag never-closed spans and, for repair
    // frames, settle the resolution of every stage the pass made.
    let close_frame = |frame: Frame,
                       stages: &mut BTreeMap<(u64, u64), StageState>,
                       out: &mut Vec<Violation>| {
        if frame.closed_by.is_none() {
            let what = match frame.kind {
                FrameKind::Tick => "TickStart span never closed by a TickEnd",
                FrameKind::Diagnose { .. } => "DiagnoseStart span never concluded by a Diagnosed",
                FrameKind::Repair { .. } => "RepairStart span never closed by a RepairEnd",
            };
            out.push(Violation::UnbalancedSpan {
                seq: frame.seq,
                detail: what.into(),
            });
        }
        if matches!(frame.kind, FrameKind::Repair { .. }) {
            let done: Vec<(u64, u64)> = stages
                .iter()
                .filter(|(_, s)| s.repair == Some(frame.seq))
                .map(|(k, _)| *k)
                .collect();
            for key in done {
                let s = stages.remove(&key).expect("key just listed");
                if s.staged_ok && s.commits + s.aborts == 0 {
                    out.push(Violation::UnresolvedStage {
                        txn: key.0,
                        device: key.1,
                    });
                }
            }
        }
    };

    for (i, e) in events.iter().enumerate() {
        if e.seq != i as u64 + 1 {
            out.push(Violation::BadSequence {
                index: i,
                seq: e.seq,
            });
        }
        if e.at_ns < prev_ns {
            out.push(Violation::TimeRegression {
                seq: e.seq,
                at_ns: e.at_ns,
                prev_ns,
            });
        }
        prev_ns = prev_ns.max(e.at_ns);

        // Unwind the stack to the event's parent: spans between the top
        // and the parent closed implicitly (their exit calls left no
        // event), so settle them now.
        if e.parent == 0 {
            while let Some(f) = stack.pop() {
                close_frame(f, &mut stages, &mut out);
            }
        } else if let Some(pos) = stack.iter().position(|f| f.seq == e.parent) {
            while stack.len() > pos + 1 {
                let f = stack.pop().expect("len checked");
                close_frame(f, &mut stages, &mut out);
            }
        } else {
            out.push(Violation::BadParent {
                seq: e.seq,
                parent: e.parent,
            });
            // Leave the stack as-is and interpret the event against the
            // current top, so one bad pointer doesn't cascade.
        }
        if let Some(top) = stack.last() {
            if top.seq == e.parent {
                if let Some(closer) = top.closed_by {
                    out.push(Violation::UnbalancedSpan {
                        seq: e.seq,
                        detail: format!("recorded in a span already closed by event {closer}"),
                    });
                }
            }
        }

        let enclosing_repair = stack
            .iter()
            .rev()
            .find(|f| matches!(f.kind, FrameKind::Repair { .. }));

        match &e.kind {
            TraceKind::TickStart { tick, .. } => {
                if *tick <= last_tick {
                    out.push(Violation::TickOrder {
                        seq: e.seq,
                        tick: *tick,
                        prev: last_tick,
                    });
                }
                last_tick = last_tick.max(*tick);
                if !stack.is_empty() {
                    out.push(Violation::UnbalancedSpan {
                        seq: e.seq,
                        detail: "tick started inside another open span".into(),
                    });
                }
                stack.push(Frame {
                    seq: e.seq,
                    kind: FrameKind::Tick,
                    closed_by: None,
                    commits_ok: 0,
                });
            }
            TraceKind::TickEnd { .. } => match stack.last_mut() {
                Some(top) if top.kind == FrameKind::Tick => top.closed_by = Some(e.seq),
                _ => out.push(Violation::UnbalancedSpan {
                    seq: e.seq,
                    detail: "TickEnd outside an open tick span".into(),
                }),
            },
            TraceKind::DiagnoseStart { goal } => {
                stack.push(Frame {
                    seq: e.seq,
                    kind: FrameKind::Diagnose { goal: *goal },
                    closed_by: None,
                    commits_ok: 0,
                });
            }
            TraceKind::Diagnosed { goal, .. } => {
                // Closes an open diagnose span if one is on top; a leaf
                // `Diagnosed` anywhere else is legal shorthand.
                if let Some(top) = stack.last_mut() {
                    if let FrameKind::Diagnose { goal: opened } = top.kind {
                        if opened == *goal {
                            top.closed_by = Some(e.seq);
                        } else {
                            out.push(Violation::UnbalancedSpan {
                                seq: e.seq,
                                detail: format!(
                                    "Diagnosed for goal {goal} concludes a span opened for \
                                     goal {opened}"
                                ),
                            });
                        }
                    }
                }
            }
            TraceKind::RepairStart { epoch, .. } => {
                if *epoch <= last_epoch {
                    out.push(Violation::EpochViolation {
                        seq: e.seq,
                        epoch: *epoch,
                        detail: format!(
                            "repair epoch must strictly increase (previous was {last_epoch})"
                        ),
                    });
                }
                last_epoch = last_epoch.max(*epoch);
                stack.push(Frame {
                    seq: e.seq,
                    kind: FrameKind::Repair { epoch: *epoch },
                    closed_by: None,
                    commits_ok: 0,
                });
            }
            TraceKind::RepairEnd { epoch, .. } => match stack.last_mut() {
                Some(top) => {
                    if let FrameKind::Repair { epoch: opened } = top.kind {
                        top.closed_by = Some(e.seq);
                        if opened != *epoch {
                            out.push(Violation::EpochViolation {
                                seq: e.seq,
                                epoch: *epoch,
                                detail: format!(
                                    "RepairEnd closes a pass opened under epoch {opened}"
                                ),
                            });
                        }
                    } else {
                        out.push(Violation::UnbalancedSpan {
                            seq: e.seq,
                            detail: "RepairEnd outside an open repair span".into(),
                        });
                    }
                }
                None => out.push(Violation::UnbalancedSpan {
                    seq: e.seq,
                    detail: "RepairEnd outside an open repair span".into(),
                }),
            },
            TraceKind::StageDevice {
                txn, device, ok, ..
            } => {
                let repair = enclosing_repair.map(|f| f.seq);
                stages.insert(
                    (*txn, *device),
                    StageState {
                        staged_ok: *ok,
                        commits: 0,
                        aborts: 0,
                        repair,
                    },
                );
            }
            TraceKind::CommitDevice { txn, device, ok } => {
                match stages.get_mut(&(*txn, *device)) {
                    Some(s) => {
                        s.commits += 1;
                        if s.commits > 1 {
                            out.push(Violation::DuplicateCommit {
                                seq: e.seq,
                                txn: *txn,
                                device: *device,
                            });
                        }
                    }
                    None => out.push(Violation::UnstagedResolution {
                        seq: e.seq,
                        txn: *txn,
                        device: *device,
                    }),
                }
                if *ok {
                    global_commits_ok += 1;
                    for f in stack.iter_mut() {
                        f.commits_ok += 1;
                    }
                }
            }
            TraceKind::AbortDevice { txn, device } => match stages.get_mut(&(*txn, *device)) {
                Some(s) => s.aborts += 1,
                None => out.push(Violation::UnstagedResolution {
                    seq: e.seq,
                    txn: *txn,
                    device: *device,
                }),
            },
            TraceKind::Verify { goal, .. } => {
                // Scope: the enclosing repair pass if any, else the
                // enclosing tick, else the whole journal so far.
                let scope_commits = enclosing_repair
                    .map(|f| f.commits_ok)
                    .or_else(|| {
                        stack
                            .iter()
                            .rev()
                            .find(|f| f.kind == FrameKind::Tick)
                            .map(|f| f.commits_ok)
                    })
                    .unwrap_or(global_commits_ok);
                if scope_commits == 0 {
                    out.push(Violation::VerifyBeforeCommit {
                        seq: e.seq,
                        goal: *goal,
                    });
                }
            }
            _ => {}
        }
    }

    while let Some(f) = stack.pop() {
        close_frame(f, &mut stages, &mut out);
    }
    for (key, s) in &stages {
        if s.staged_ok && s.commits + s.aborts == 0 {
            out.push(Violation::UnresolvedStage {
                txn: key.0,
                device: key.1,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use conman_obs::Journal;

    /// A minimal well-formed journal: one tick with a diagnosis and a
    /// repair pass that stages, commits, verifies and closes.
    fn clean_journal() -> Journal {
        let mut j = Journal::default();
        j.enter(10, TraceKind::TickStart { tick: 1, epoch: 0 });
        j.record(
            10,
            TraceKind::HealthProbe {
                goal: 5,
                sent: 2,
                delivered: 0,
                healthy: false,
            },
        );
        j.enter(11, TraceKind::DiagnoseStart { goal: 5 });
        j.record(
            11,
            TraceKind::Diagnosed {
                goal: 5,
                blamed_device: Some(2),
                blamed_link: None,
                exclusions: 1,
                summary: "device 2".into(),
            },
        );
        j.exit();
        j.enter(12, TraceKind::RepairStart { epoch: 1, goals: 1 });
        j.record(
            12,
            TraceKind::PlanChosen {
                goal: 5,
                path_len: 3,
                excluded: 1,
            },
        );
        for d in [1, 2, 3] {
            j.record(
                12,
                TraceKind::StageDevice {
                    txn: 7,
                    device: d,
                    segments: 1,
                    ok: true,
                },
            );
        }
        for d in [3, 2, 1] {
            j.record(
                13,
                TraceKind::CommitDevice {
                    txn: 7,
                    device: d,
                    ok: true,
                },
            );
        }
        j.record(13, TraceKind::Verify { goal: 5, ok: true });
        j.record(
            13,
            TraceKind::RepairEnd {
                epoch: 1,
                transactions: 1,
            },
        );
        j.exit();
        j.record(
            14,
            TraceKind::TickEnd {
                events: 0,
                nm_sent: 9,
                nm_received: 9,
                frames: 4,
            },
        );
        j.exit();
        j
    }

    fn corrupt(j: &Journal, f: impl Fn(&mut Vec<TraceEvent>)) -> Vec<TraceEvent> {
        let mut events = j.events().to_vec();
        f(&mut events);
        events
    }

    #[test]
    fn a_well_formed_journal_conforms() {
        assert_eq!(check_journal(clean_journal().events()), vec![]);
    }

    #[test]
    fn an_empty_journal_conforms() {
        assert_eq!(check_journal(&[]), vec![]);
    }

    #[test]
    fn a_gap_in_sequence_numbers_fires_bad_sequence() {
        let events = corrupt(&clean_journal(), |ev| ev[3].seq = 99);
        let vs = check_journal(&events);
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::BadSequence { index: 3, seq: 99 })),
            "expected a BadSequence, got {vs:?}"
        );
    }

    #[test]
    fn a_backwards_timestamp_fires_time_regression() {
        let events = corrupt(&clean_journal(), |ev| ev[5].at_ns = 1);
        let vs = check_journal(&events);
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::TimeRegression { at_ns: 1, .. })),
            "expected a TimeRegression, got {vs:?}"
        );
    }

    #[test]
    fn a_dangling_parent_pointer_fires_bad_parent() {
        let events = corrupt(&clean_journal(), |ev| ev[2].parent = 77);
        let vs = check_journal(&events);
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::BadParent { parent: 77, .. })),
            "expected a BadParent, got {vs:?}"
        );
    }

    #[test]
    fn a_tick_without_tick_end_fires_unbalanced_span() {
        let events = corrupt(&clean_journal(), |ev| {
            let n = ev.len();
            ev.remove(n - 1); // drop the TickEnd
        });
        let vs = check_journal(&events);
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::UnbalancedSpan { .. })),
            "expected an UnbalancedSpan, got {vs:?}"
        );
    }

    #[test]
    fn a_diagnosis_that_never_concludes_fires_unbalanced_span() {
        // Remove the Diagnosed event: its DiagnoseStart span implicitly
        // closes when the RepairStart shows up parented to the tick.
        let events = corrupt(&clean_journal(), |ev| {
            let pos = ev
                .iter()
                .position(|e| matches!(e.kind, TraceKind::Diagnosed { .. }))
                .unwrap();
            ev.remove(pos);
        });
        let vs = check_journal(&events);
        assert!(vs.iter().any(|v| matches!(
            v,
            Violation::UnbalancedSpan { .. } | Violation::BadSequence { .. }
        )));
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::UnbalancedSpan { .. })));
    }

    #[test]
    fn a_stale_tick_ordinal_fires_tick_order() {
        let mut j = clean_journal();
        // A second tick reusing ordinal 1.
        j.enter(20, TraceKind::TickStart { tick: 1, epoch: 1 });
        j.record(
            20,
            TraceKind::TickEnd {
                events: 0,
                nm_sent: 0,
                nm_received: 0,
                frames: 0,
            },
        );
        j.exit();
        let vs = check_journal(j.events());
        assert!(
            vs.iter().any(|v| matches!(
                v,
                Violation::TickOrder {
                    tick: 1,
                    prev: 1,
                    ..
                }
            )),
            "expected a TickOrder, got {vs:?}"
        );
    }

    #[test]
    fn a_non_increasing_repair_epoch_fires_epoch_violation() {
        let mut j = clean_journal();
        j.enter(20, TraceKind::TickStart { tick: 2, epoch: 1 });
        j.enter(20, TraceKind::RepairStart { epoch: 1, goals: 1 }); // epoch 1 again
        j.record(
            21,
            TraceKind::RepairEnd {
                epoch: 1,
                transactions: 0,
            },
        );
        j.exit();
        j.record(
            21,
            TraceKind::TickEnd {
                events: 0,
                nm_sent: 0,
                nm_received: 0,
                frames: 0,
            },
        );
        j.exit();
        let vs = check_journal(j.events());
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::EpochViolation { epoch: 1, .. })),
            "expected an EpochViolation, got {vs:?}"
        );
    }

    #[test]
    fn a_mismatched_repair_end_epoch_fires_epoch_violation() {
        let events = corrupt(&clean_journal(), |ev| {
            for e in ev.iter_mut() {
                if let TraceKind::RepairEnd { epoch, .. } = &mut e.kind {
                    *epoch = 9;
                }
            }
        });
        let vs = check_journal(&events);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::EpochViolation { epoch: 9, .. })));
    }

    #[test]
    fn an_unresolved_stage_fires_when_its_pass_ends() {
        let events = corrupt(&clean_journal(), |ev| {
            // Drop device 2's commit: its accepted stage is never resolved.
            let pos = ev
                .iter()
                .position(|e| matches!(e.kind, TraceKind::CommitDevice { device: 2, .. }))
                .unwrap();
            ev.remove(pos);
        });
        let vs = check_journal(&events);
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::UnresolvedStage { txn: 7, device: 2 })),
            "expected an UnresolvedStage, got {vs:?}"
        );
    }

    #[test]
    fn a_commit_for_an_unstaged_device_fires_unstaged_resolution() {
        let events = corrupt(&clean_journal(), |ev| {
            for e in ev.iter_mut() {
                if let TraceKind::StageDevice { device, .. } = &mut e.kind {
                    if *device == 3 {
                        *device = 9; // the commit for device 3 now dangles
                    }
                }
            }
        });
        let vs = check_journal(&events);
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::UnstagedResolution { device: 3, .. })),
            "expected an UnstagedResolution, got {vs:?}"
        );
    }

    #[test]
    fn a_double_commit_fires_duplicate_commit() {
        let events = corrupt(&clean_journal(), |ev| {
            for e in ev.iter_mut() {
                if let TraceKind::CommitDevice { device, .. } = &mut e.kind {
                    if *device == 1 {
                        *device = 3; // device 3 now commits twice
                    }
                }
            }
        });
        let vs = check_journal(&events);
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::DuplicateCommit { device: 3, .. })),
            "expected a DuplicateCommit, got {vs:?}"
        );
    }

    #[test]
    fn a_verify_before_any_commit_fires_verify_before_commit() {
        let events = corrupt(&clean_journal(), |ev| {
            // Move the Verify to just after the stages, before any commit.
            let vpos = ev
                .iter()
                .position(|e| matches!(e.kind, TraceKind::Verify { .. }))
                .unwrap();
            let verify = ev.remove(vpos);
            let cpos = ev
                .iter()
                .position(|e| matches!(e.kind, TraceKind::CommitDevice { .. }))
                .unwrap();
            ev.insert(cpos, verify);
            for (i, e) in ev.iter_mut().enumerate() {
                e.seq = i as u64 + 1; // renumber so only the ordering is corrupt
            }
        });
        let vs = check_journal(&events);
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::VerifyBeforeCommit { goal: 5, .. })),
            "expected a VerifyBeforeCommit, got {vs:?}"
        );
    }

    #[test]
    fn an_event_after_its_spans_closing_event_fires_unbalanced_span() {
        let j = clean_journal();
        // The tick span was closed by TickEnd; splice another child in
        // after it (the journal API itself would never produce this).
        let tick_seq = j.events()[0].seq;
        let mut events = j.events().to_vec();
        let n = events.len();
        events.push(TraceEvent {
            seq: n as u64 + 1,
            parent: tick_seq,
            at_ns: 15,
            kind: TraceKind::Note {
                text: "late".into(),
            },
        });
        let vs = check_journal(&events);
        assert!(
            vs.iter().any(|v| matches!(
                v,
                Violation::UnbalancedSpan { detail, .. } if detail.contains("already closed")
            )),
            "expected an UnbalancedSpan for the late event, got {vs:?}"
        );
    }

    /// Journals recorded outside the loop (direct `reconcile` calls) have
    /// no spans at all — everything is top-level.  They still conform.
    #[test]
    fn a_flat_reconcile_journal_conforms() {
        let mut j = Journal::default();
        j.record(
            5,
            TraceKind::PlanChosen {
                goal: 1,
                path_len: 2,
                excluded: 0,
            },
        );
        j.record(
            5,
            TraceKind::StageDevice {
                txn: 1,
                device: 4,
                segments: 1,
                ok: true,
            },
        );
        j.record(
            6,
            TraceKind::CommitDevice {
                txn: 1,
                device: 4,
                ok: true,
            },
        );
        j.record(6, TraceKind::Verify { goal: 1, ok: true });
        j.record(
            6,
            TraceKind::GoalOutcome {
                goal: 1,
                action: "Applied".into(),
                status: "Active".into(),
            },
        );
        assert_eq!(check_journal(j.events()), vec![]);
    }

    /// A stage rejected by the device (`ok: false`) needs no resolution.
    #[test]
    fn a_rejected_stage_needs_no_resolution() {
        let mut j = Journal::default();
        j.record(
            5,
            TraceKind::StageDevice {
                txn: 1,
                device: 4,
                segments: 1,
                ok: false,
            },
        );
        assert_eq!(check_journal(j.events()), vec![]);
    }
}
