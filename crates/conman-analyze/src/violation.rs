//! The typed findings both analysis passes return.
//!
//! Every variant carries enough provenance (goal / device / pipe /
//! sequence number) to point at the offending artefact without re-running
//! anything.  [`Violation::severity`] separates hard invariant breaks from
//! advisories that merely predict a runtime fallback.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Legal but costly: the runtime will handle it by falling back to a
    /// slower path (today: demoting a goal from the batched transaction to
    /// a strict per-goal one).
    Advisory,
    /// Breaks an invariant the runtime relies on; executing or accepting
    /// the artefact as-is is a bug.
    Fatal,
}

/// One finding of the plan verifier or the journal conformance checker.
///
/// Goal and device identifiers are raw integers (`GoalId.0`,
/// `DeviceId::as_u64()`), module keys are display strings — the same
/// neutral vocabulary the trace journal uses, so findings are meaningful
/// without the management layers loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    // ---- pre-flight plan/batch verifier -----------------------------
    /// Two goals' pipe-id blocks overlap: their derived identifiers
    /// (route tables, policy priorities) would collide on shared devices.
    PipeOverlap {
        /// First goal of the overlapping pair.
        goal_a: u64,
        /// Second goal of the overlapping pair.
        goal_b: u64,
    },
    /// A goal's pipe block crosses the derived-identifier cap: the u32
    /// spaces derived from pipe ids would wrap.
    PipeSpaceExceeded {
        /// The goal whose block crosses the cap.
        goal: u64,
        /// Largest pipe id the block would use.
        last_pipe: u32,
        /// The cap (`GoalStore::MAX_PIPE_ID`).
        max: u32,
    },
    /// A script's teardown is not the exact reverse-order mirror of its
    /// creates: withdrawing the goal would leak or mis-delete state.
    TeardownMismatch {
        /// The goal whose script is unbalanced.
        goal: u64,
        /// The device whose create/delete footprints disagree (0 when the
        /// mismatch is in the device order itself).
        device: u64,
        /// What disagrees.
        detail: String,
    },
    /// The goal's script visits devices in an order incompatible with the
    /// batch's single per-device commit sequence (the opposite-direction
    /// paths case).  Advisory: the batch executor detects this too and
    /// demotes the goal to a strict per-goal transaction.
    CommitOrderConflict {
        /// The goal the batch executor would demote.
        goal: u64,
    },
    /// A plan's created/reused module classification disagrees with the
    /// module → goal index: refcount bookkeeping would corrupt on
    /// apply or withdraw.
    RefcountMismatch {
        /// The goal whose classification is wrong.
        goal: u64,
        /// The module key (its display string).
        module: String,
        /// What disagrees.
        detail: String,
    },
    /// A plan traverses a module or link its own goal excluded: the
    /// re-planner routed straight through the component diagnosis blamed.
    ExclusionCrossed {
        /// The goal whose exclusion is crossed.
        goal: u64,
        /// The excluded component the path traverses.
        target: String,
    },

    // ---- journal conformance checker --------------------------------
    /// An event's sequence number breaks the 1-based dense numbering.
    BadSequence {
        /// Zero-based position of the event in the dump.
        index: usize,
        /// The sequence number found there (expected `index + 1`).
        seq: u64,
    },
    /// Simulated time went backwards between consecutive events.
    TimeRegression {
        /// The event recorded before its predecessor's timestamp.
        seq: u64,
        /// Its timestamp.
        at_ns: u64,
        /// The latest timestamp seen before it.
        prev_ns: u64,
    },
    /// An event's parent is not an open span (unknown, already closed, or
    /// not yet recorded).
    BadParent {
        /// The mis-parented event.
        seq: u64,
        /// The parent it claims.
        parent: u64,
    },
    /// A span opened or closed out of protocol: a closing event outside
    /// its span kind, events after a span's closing event, or a span
    /// never closed (`TickStart` without `TickEnd`, `DiagnoseStart`
    /// without `Diagnosed`, `RepairStart` without `RepairEnd`).
    UnbalancedSpan {
        /// The event (or span opener) at fault.
        seq: u64,
        /// What went wrong.
        detail: String,
    },
    /// Tick ordinals did not strictly increase across the journal.
    TickOrder {
        /// The offending `TickStart`.
        seq: u64,
        /// Its tick ordinal.
        tick: u64,
        /// The highest ordinal seen before it.
        prev: u64,
    },
    /// Repair epochs broke monotonicity, or a `RepairEnd` closed a pass
    /// under a different epoch than its `RepairStart` opened.
    EpochViolation {
        /// The offending event.
        seq: u64,
        /// The epoch it carries.
        epoch: u64,
        /// What went wrong.
        detail: String,
    },
    /// A commit or abort arrived for a `(txn, device)` pair that was never
    /// staged.
    UnstagedResolution {
        /// The offending commit/abort event.
        seq: u64,
        /// Its transaction id.
        txn: u64,
        /// Its device.
        device: u64,
    },
    /// A device accepted a stage but its pass ended without a commit or
    /// abort resolving it: staged state leaked.
    UnresolvedStage {
        /// The transaction that staged it.
        txn: u64,
        /// The device left holding staged state.
        device: u64,
    },
    /// A `(txn, device)` pair was committed more than once.
    DuplicateCommit {
        /// The second (or later) commit event.
        seq: u64,
        /// Its transaction id.
        txn: u64,
        /// Its device.
        device: u64,
    },
    /// A verification probe ran before its pass committed anything: the
    /// probe could only have measured the pre-repair configuration.
    VerifyBeforeCommit {
        /// The premature `Verify` event.
        seq: u64,
        /// The goal it probed.
        goal: u64,
    },
}

impl Violation {
    /// How serious the finding is.  Only [`Violation::CommitOrderConflict`]
    /// is advisory — the batch executor legitimately resolves it at runtime
    /// by demoting the goal to a strict transaction; everything else breaks
    /// an invariant.
    pub fn severity(&self) -> Severity {
        match self {
            Violation::CommitOrderConflict { .. } => Severity::Advisory,
            _ => Severity::Fatal,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::PipeOverlap { goal_a, goal_b } => {
                write!(f, "pipe blocks of goals {goal_a} and {goal_b} overlap")
            }
            Violation::PipeSpaceExceeded {
                goal,
                last_pipe,
                max,
            } => write!(
                f,
                "goal {goal}'s pipe block reaches id {last_pipe}, past the cap {max}"
            ),
            Violation::TeardownMismatch {
                goal,
                device,
                detail,
            } => write!(
                f,
                "goal {goal}'s teardown does not mirror its script on device {device}: {detail}"
            ),
            Violation::CommitOrderConflict { goal } => write!(
                f,
                "goal {goal}'s device order conflicts with the batch commit order \
                 (the executor will fall back to a strict transaction)"
            ),
            Violation::RefcountMismatch {
                goal,
                module,
                detail,
            } => write!(
                f,
                "goal {goal}'s classification of module {module} is inconsistent: {detail}"
            ),
            Violation::ExclusionCrossed { goal, target } => {
                write!(f, "goal {goal}'s plan crosses its own exclusion {target}")
            }
            Violation::BadSequence { index, seq } => write!(
                f,
                "event at position {index} carries seq {seq} (expected {})",
                index + 1
            ),
            Violation::TimeRegression {
                seq,
                at_ns,
                prev_ns,
            } => write!(
                f,
                "event {seq} at {at_ns}ns is earlier than its predecessor ({prev_ns}ns)"
            ),
            Violation::BadParent { seq, parent } => {
                write!(f, "event {seq}'s parent {parent} is not an open span")
            }
            Violation::UnbalancedSpan { seq, detail } => {
                write!(f, "span protocol broken at event {seq}: {detail}")
            }
            Violation::TickOrder { seq, tick, prev } => write!(
                f,
                "tick ordinal {tick} at event {seq} does not exceed the previous tick {prev}"
            ),
            Violation::EpochViolation { seq, epoch, detail } => {
                write!(f, "epoch {epoch} at event {seq}: {detail}")
            }
            Violation::UnstagedResolution { seq, txn, device } => write!(
                f,
                "event {seq} resolves txn {txn} on device {device}, which was never staged"
            ),
            Violation::UnresolvedStage { txn, device } => write!(
                f,
                "txn {txn} staged device {device} but no commit or abort resolved it"
            ),
            Violation::DuplicateCommit { seq, txn, device } => write!(
                f,
                "event {seq} commits txn {txn} on device {device} a second time"
            ),
            Violation::VerifyBeforeCommit { seq, goal } => write!(
                f,
                "goal {goal} verified at event {seq} before its pass committed anything"
            ),
        }
    }
}
