//! The pre-flight plan/batch verifier.
//!
//! Input is a **neutral model** of a planned batch — raw integer goal and
//! device ids, display-string module keys, explicit pipe blocks — so the
//! pass has no dependency on the management layers that produce plans.
//! `conman-core` builds [`BatchModel`]s from its `GoalStore` + `Plan`s
//! (see `ManagedNetwork::verify_plans`) and asserts the verdict under
//! `debug_assertions`; tests hand-build broken models to prove each
//! [`Violation`] variant fires.
//!
//! The checks mirror what the runtime otherwise discovers dynamically:
//!
//! * pipe-id blocks pairwise disjoint and below the derived-identifier cap
//!   ([`check_pipes`]),
//! * every script mirrored by an exact reverse-order teardown
//!   ([`check_teardowns`]),
//! * per-device commit order satisfiable across the batch — the
//!   opposite-direction-paths conflict the batch executor demotes to a
//!   strict transaction ([`check_commit_order`]),
//! * created/reused module claims consistent with the module → goal index
//!   ([`check_refcounts`]),
//! * no plan crossing its own goal's excluded modules or links
//!   ([`check_exclusions`]).

use crate::violation::Violation;
use std::collections::{BTreeMap, BTreeSet};

/// One device's create/delete footprint within a goal's script.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceOps {
    /// The device the script segment configures.
    pub device: u64,
    /// Keys of the components the configure script creates, in script
    /// order.
    pub creates: Vec<String>,
    /// Keys of the components the teardown script deletes on this device,
    /// in teardown-script order.
    pub deletes: Vec<String>,
}

/// The neutral model of one goal's plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GoalModel {
    /// The goal (`GoalId.0`).
    pub goal: u64,
    /// First pipe id of the plan's reserved block.
    pub pipe_base: u32,
    /// Number of pipe ids the block spans (`script::slot_count`).
    pub pipe_slots: u32,
    /// Per-device scripts in configure order (the order the batch
    /// executor's commit-sequence constraint applies to).
    pub scripts: Vec<DeviceOps>,
    /// Device order of the teardown script (must be the reverse of
    /// `scripts`' device order).
    pub teardown_devices: Vec<u64>,
    /// Module keys the plan's path traverses (deduplicated).
    pub path_modules: BTreeSet<String>,
    /// Physical links the path crosses, smaller device id first.
    pub path_links: BTreeSet<(u64, u64)>,
    /// Module keys the goal's diagnosis excluded.
    pub excluded_modules: BTreeSet<String>,
    /// Links the goal's diagnosis excluded, smaller device id first.
    pub excluded_links: BTreeSet<(u64, u64)>,
    /// Module keys the plan claims it will create (first use).
    pub modules_created: BTreeSet<String>,
    /// Module keys the plan claims it will reuse (already applied by
    /// another goal).
    pub modules_reused: BTreeSet<String>,
}

/// The neutral model of an assembled batch: every goal's plan plus the
/// store-level context the checks need.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchModel {
    /// Largest pipe id the allocator may hand out
    /// (`GoalStore::MAX_PIPE_ID`).
    pub max_pipe_id: u32,
    /// One model per planned goal.
    pub goals: Vec<GoalModel>,
    /// The module → goal index at classification time: which goals'
    /// *applied* plans traverse each module.
    pub module_users: BTreeMap<String, BTreeSet<u64>>,
}

/// Run every plan/batch check; empty means the batch is safe to execute.
pub fn verify_batch(batch: &BatchModel) -> Vec<Violation> {
    let mut out = check_pipes(batch);
    out.extend(check_teardowns(batch));
    out.extend(check_commit_order(batch));
    out.extend(check_refcounts(batch));
    out.extend(check_exclusions(batch));
    out
}

/// Pipe-id accounting: every block below the cap, all blocks pairwise
/// disjoint.
pub fn check_pipes(batch: &BatchModel) -> Vec<Violation> {
    let mut out = Vec::new();
    let blocks: Vec<(u64, u64, u64)> = batch
        .goals
        .iter()
        .filter(|g| g.pipe_slots > 0)
        .map(|g| {
            (
                g.goal,
                g.pipe_base as u64,
                g.pipe_base as u64 + g.pipe_slots as u64,
            )
        })
        .collect();
    for &(goal, _lo, hi) in &blocks {
        if hi > batch.max_pipe_id as u64 {
            out.push(Violation::PipeSpaceExceeded {
                goal,
                last_pipe: (hi - 1).min(u32::MAX as u64) as u32,
                max: batch.max_pipe_id,
            });
        }
    }
    for (i, &(goal_a, lo_a, hi_a)) in blocks.iter().enumerate() {
        for &(goal_b, lo_b, hi_b) in &blocks[i + 1..] {
            if lo_a < hi_b && lo_b < hi_a {
                out.push(Violation::PipeOverlap { goal_a, goal_b });
            }
        }
    }
    out
}

/// Teardown mirroring: per device, the deletes must undo the creates in
/// exact reverse order, and the teardown must visit devices in reverse
/// script order.
pub fn check_teardowns(batch: &BatchModel) -> Vec<Violation> {
    let mut out = Vec::new();
    for g in &batch.goals {
        let forward: Vec<u64> = g.scripts.iter().map(|d| d.device).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        if g.teardown_devices != reversed {
            out.push(Violation::TeardownMismatch {
                goal: g.goal,
                device: 0,
                detail: format!(
                    "teardown visits devices {:?}, expected reverse script order {:?}",
                    g.teardown_devices, reversed
                ),
            });
        }
        for d in &g.scripts {
            let mirrored: Vec<&String> = d.creates.iter().rev().collect();
            let deletes: Vec<&String> = d.deletes.iter().collect();
            if mirrored != deletes {
                let missing = d
                    .creates
                    .iter()
                    .find(|c| !d.deletes.contains(c))
                    .cloned()
                    .unwrap_or_else(|| "(order)".into());
                out.push(Violation::TeardownMismatch {
                    goal: g.goal,
                    device: d.device,
                    detail: format!(
                        "creates are not mirrored in reverse (first divergence near {missing})"
                    ),
                });
            }
        }
    }
    out
}

/// Commit-order satisfiability: replays the batch executor's fixed-point
/// partition.  Each pass derives one commit order over the batch's devices
/// (descending maximum script position, ties by device id) and evicts every
/// goal whose script would have a later device commit *before* an earlier
/// one; evicted goals are reported as advisory
/// [`Violation::CommitOrderConflict`]s, exactly the goals the executor
/// would demote to strict per-goal transactions.
pub fn check_commit_order(batch: &BatchModel) -> Vec<Violation> {
    let mut batchable: Vec<&GoalModel> = batch.goals.iter().collect();
    let mut out = Vec::new();
    loop {
        let mut position: BTreeMap<u64, usize> = BTreeMap::new();
        for g in &batchable {
            for (i, d) in g.scripts.iter().enumerate() {
                let p = position.entry(d.device).or_insert(0);
                *p = (*p).max(i);
            }
        }
        let mut order: Vec<u64> = position.keys().copied().collect();
        order.sort_by(|a, b| position[b].cmp(&position[a]).then(a.cmp(b)));
        let commit_index: BTreeMap<u64, usize> =
            order.iter().enumerate().map(|(i, d)| (*d, i)).collect();
        let violators: Vec<usize> = batchable
            .iter()
            .enumerate()
            .filter(|(_, g)| {
                g.scripts
                    .windows(2)
                    .any(|w| commit_index[&w[0].device] < commit_index[&w[1].device])
            })
            .map(|(k, _)| k)
            .collect();
        if violators.is_empty() {
            break;
        }
        for k in violators.into_iter().rev() {
            out.push(Violation::CommitOrderConflict {
                goal: batchable.remove(k).goal,
            });
        }
    }
    out.reverse();
    out
}

/// Module refcount claims: the created/reused split must cover the path's
/// modules exactly, and each claim must agree with the module → goal index
/// (a *created* module has no other user; a *reused* one has at least one).
pub fn check_refcounts(batch: &BatchModel) -> Vec<Violation> {
    let mut out = Vec::new();
    for g in &batch.goals {
        out.extend(check_goal_refcounts(g, &batch.module_users));
    }
    out
}

/// [`check_refcounts`] for a single goal against an explicit index
/// snapshot — the form the in-loop `debug_assertions` hook uses, where the
/// index mutates between goals as stale plans are taken out.
pub fn check_goal_refcounts(
    g: &GoalModel,
    module_users: &BTreeMap<String, BTreeSet<u64>>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let other_users = |m: &String| {
        module_users
            .get(m)
            .is_some_and(|users| users.iter().any(|u| *u != g.goal))
    };
    for m in &g.modules_created {
        if g.modules_reused.contains(m) {
            out.push(Violation::RefcountMismatch {
                goal: g.goal,
                module: m.clone(),
                detail: "claimed both created and reused".into(),
            });
        }
        if other_users(m) {
            out.push(Violation::RefcountMismatch {
                goal: g.goal,
                module: m.clone(),
                detail: "claimed as first use, but the index lists other users".into(),
            });
        }
    }
    for m in &g.modules_reused {
        if !other_users(m) {
            out.push(Violation::RefcountMismatch {
                goal: g.goal,
                module: m.clone(),
                detail: "claimed as shared, but the index lists no other user".into(),
            });
        }
    }
    let claimed: BTreeSet<&String> = g.modules_created.union(&g.modules_reused).collect();
    for m in &g.path_modules {
        if !claimed.contains(m) {
            out.push(Violation::RefcountMismatch {
                goal: g.goal,
                module: m.clone(),
                detail: "on the path but in neither the created nor the reused set".into(),
            });
        }
    }
    for m in claimed {
        if !g.path_modules.contains(m) {
            out.push(Violation::RefcountMismatch {
                goal: g.goal,
                module: m.clone(),
                detail: "classified but not on the path".into(),
            });
        }
    }
    out
}

/// Exclusion satisfiability: a plan must never traverse a module or cross
/// a link its own goal's diagnosis excluded.
pub fn check_exclusions(batch: &BatchModel) -> Vec<Violation> {
    let mut out = Vec::new();
    for g in &batch.goals {
        for m in g.path_modules.intersection(&g.excluded_modules) {
            out.push(Violation::ExclusionCrossed {
                goal: g.goal,
                target: format!("module {m}"),
            });
        }
        for (a, b) in g.path_links.intersection(&g.excluded_links) {
            out.push(Violation::ExclusionCrossed {
                goal: g.goal,
                target: format!("link ({a},{b})"),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::violation::Severity;

    /// A well-formed single-goal model over three devices.
    fn clean_goal(goal: u64, base: u32) -> GoalModel {
        let dev = |device: u64, creates: Vec<&str>| DeviceOps {
            device,
            creates: creates.iter().map(|s| s.to_string()).collect(),
            deletes: creates.iter().rev().map(|s| s.to_string()).collect(),
        };
        GoalModel {
            goal,
            pipe_base: base,
            pipe_slots: 4,
            scripts: vec![
                dev(1, vec!["pipe:a", "switch:x"]),
                dev(2, vec!["pipe:b"]),
                dev(3, vec!["pipe:c", "filter:y"]),
            ],
            teardown_devices: vec![3, 2, 1],
            path_modules: BTreeSet::from(["m1".into(), "m2".into()]),
            path_links: BTreeSet::from([(1, 2), (2, 3)]),
            excluded_modules: BTreeSet::new(),
            excluded_links: BTreeSet::new(),
            modules_created: BTreeSet::from(["m1".into(), "m2".into()]),
            modules_reused: BTreeSet::new(),
        }
    }

    fn batch_of(goals: Vec<GoalModel>) -> BatchModel {
        BatchModel {
            max_pipe_id: 1000,
            goals,
            module_users: BTreeMap::new(),
        }
    }

    #[test]
    fn a_clean_batch_verifies_with_zero_violations() {
        let batch = batch_of(vec![clean_goal(1, 0), clean_goal(2, 4)]);
        assert_eq!(verify_batch(&batch), vec![]);
    }

    #[test]
    fn overlapping_pipe_blocks_fire_pipe_overlap() {
        let batch = batch_of(vec![clean_goal(1, 0), clean_goal(2, 2)]);
        let vs = verify_batch(&batch);
        assert!(
            vs.iter().any(|v| matches!(
                v,
                Violation::PipeOverlap {
                    goal_a: 1,
                    goal_b: 2
                }
            )),
            "expected a PipeOverlap, got {vs:?}"
        );
        assert!(crate::has_fatal(&vs));
    }

    #[test]
    fn a_block_past_the_cap_fires_pipe_space_exceeded() {
        let mut g = clean_goal(1, 998);
        g.pipe_slots = 4; // block [998, 1002) crosses max_pipe_id = 1000
        let vs = verify_batch(&batch_of(vec![g]));
        assert!(
            vs.iter().any(|v| matches!(
                v,
                Violation::PipeSpaceExceeded {
                    goal: 1,
                    last_pipe: 1001,
                    max: 1000
                }
            )),
            "expected a PipeSpaceExceeded, got {vs:?}"
        );
    }

    #[test]
    fn a_missing_delete_fires_teardown_mismatch() {
        let mut g = clean_goal(1, 0);
        g.scripts[0].deletes.pop(); // drop the mirror of the first create
        let vs = verify_batch(&batch_of(vec![g]));
        assert!(
            vs.iter().any(|v| matches!(
                v,
                Violation::TeardownMismatch {
                    goal: 1,
                    device: 1,
                    ..
                }
            )),
            "expected a TeardownMismatch, got {vs:?}"
        );
    }

    #[test]
    fn out_of_order_deletes_fire_teardown_mismatch() {
        let mut g = clean_goal(1, 0);
        g.scripts[0].deletes.reverse(); // right set, wrong (forward) order
        let vs = verify_batch(&batch_of(vec![g]));
        assert!(vs.iter().any(|v| matches!(
            v,
            Violation::TeardownMismatch {
                goal: 1,
                device: 1,
                ..
            }
        )));
    }

    #[test]
    fn a_forward_teardown_device_order_fires_teardown_mismatch() {
        let mut g = clean_goal(1, 0);
        g.teardown_devices = vec![1, 2, 3]; // forward, not mirrored
        let vs = verify_batch(&batch_of(vec![g]));
        assert!(vs.iter().any(|v| matches!(
            v,
            Violation::TeardownMismatch {
                goal: 1,
                device: 0,
                ..
            }
        )));
    }

    #[test]
    fn opposite_direction_paths_fire_an_advisory_commit_order_conflict() {
        let mut a = clean_goal(1, 0);
        let mut b = clean_goal(2, 4);
        // Goal 1 configures 1 → 2 → 3; goal 2 walks the same devices in the
        // opposite direction.  No single per-device commit order can put
        // each goal's later devices before its earlier ones for both.
        a.scripts.sort_by_key(|d| d.device);
        b.scripts.sort_by_key(|d| std::cmp::Reverse(d.device));
        b.teardown_devices = vec![1, 2, 3];
        let vs = check_commit_order(&batch_of(vec![a, b]));
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::CommitOrderConflict { .. })),
            "expected a CommitOrderConflict, got {vs:?}"
        );
        assert!(
            vs.iter().all(|v| v.severity() == Severity::Advisory),
            "commit-order conflicts are advisory (the executor falls back)"
        );
        assert!(!crate::has_fatal(&vs));
    }

    #[test]
    fn a_false_first_use_claim_fires_refcount_mismatch() {
        let g = clean_goal(1, 0);
        let mut batch = batch_of(vec![g]);
        // The index says goal 9's applied plan already traverses m1, so
        // claiming it as "created" is wrong.
        batch
            .module_users
            .insert("m1".into(), BTreeSet::from([9u64]));
        let vs = verify_batch(&batch);
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::RefcountMismatch { goal: 1, .. })),
            "expected a RefcountMismatch, got {vs:?}"
        );
    }

    #[test]
    fn a_false_shared_claim_fires_refcount_mismatch() {
        let mut g = clean_goal(1, 0);
        g.modules_created.remove("m2");
        g.modules_reused.insert("m2".into()); // nobody else uses m2
        let vs = verify_batch(&batch_of(vec![g]));
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::RefcountMismatch { goal: 1, .. })));
    }

    #[test]
    fn an_unclassified_path_module_fires_refcount_mismatch() {
        let mut g = clean_goal(1, 0);
        g.path_modules.insert("m3".into()); // on the path, never classified
        let vs = verify_batch(&batch_of(vec![g]));
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::RefcountMismatch { goal: 1, .. })));
    }

    #[test]
    fn crossing_an_excluded_link_fires_exclusion_crossed() {
        let mut g = clean_goal(1, 0);
        g.excluded_links.insert((2, 3)); // the path crosses (2,3)
        let vs = verify_batch(&batch_of(vec![g]));
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::ExclusionCrossed { goal: 1, .. })),
            "expected an ExclusionCrossed, got {vs:?}"
        );
    }

    #[test]
    fn traversing_an_excluded_module_fires_exclusion_crossed() {
        let mut g = clean_goal(1, 0);
        g.excluded_modules.insert("m2".into());
        let vs = verify_batch(&batch_of(vec![g]));
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::ExclusionCrossed { goal: 1, .. })));
    }

    #[test]
    fn same_direction_goals_share_one_commit_order() {
        // Both goals walk 1 → 2 → 3: one commit order (3, 2, 1) satisfies
        // both, so nothing is demoted.
        let batch = batch_of(vec![clean_goal(1, 0), clean_goal(2, 4)]);
        assert_eq!(check_commit_order(&batch), vec![]);
    }
}
