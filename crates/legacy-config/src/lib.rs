//! # legacy-config — the "today" configuration baseline
//!
//! The comparison target of the paper's evaluation: the device-level scripts
//! a human administrator (or a conventional management application that
//! merely adds syntactic sugar) has to produce to configure the same VPNs the
//! CONMan NM configures with generic primitives.
//!
//! * [`linux`] — the Figure 7(a) GRE and Figure 8(a) MPLS Linux scripts,
//!   including an interpreter that applies the GRE configuration to the
//!   simulated data plane so the baseline is functionally checkable.
//! * [`catos`] — the Figure 9(a) Cisco CatOS VLAN-tunnel script.
//! * [`classify`] — the Table V metric: generic vs protocol-specific commands
//!   and state variables, for both the legacy and the CONMan scripts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catos;
pub mod classify;
pub mod linux;

pub use catos::vlan_script_today;
pub use classify::{classify_conman_script, ClassifiedScript, TableVCounts, TokenKind};
pub use linux::{apply_gre_today, gre_script_today, mpls_script_today, GreVpnParams};
