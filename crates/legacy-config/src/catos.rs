//! "Today's" VLAN tunnelling configuration: the Cisco CatOS script of
//! Figure 9(a).

use crate::classify::{ClassifiedScript, TokenKind};

/// Generate the Figure 9(a) CatOS script for the ingress provider switch.
pub fn vlan_script_today() -> ClassifiedScript {
    use TokenKind::*;
    let mut s = ClassifiedScript::new("VLAN today (CatOS)");
    s.line(vec![
        ("set vlan", SpecificCommand),
        ("22", SpecificVariable),
        ("name", Syntax),
        ("C1", GenericVariable),
        ("mtu", Syntax),
        ("1504", SpecificVariable),
    ]);
    s.line(vec![
        ("set vlan", SpecificCommand),
        ("22", SpecificVariable),
        ("gigabitethernet0/9", GenericVariable),
    ]);
    s.line(vec![
        ("interface", GenericCommand),
        ("gigabitethernet0/7", GenericVariable),
    ]);
    s.line(vec![
        ("switchport access vlan", SpecificCommand),
        ("22", SpecificVariable),
    ]);
    s.line(vec![("switchport mode dot1q-tunnel", SpecificCommand)]);
    s.line(vec![("exit", GenericCommand)]);
    s.line(vec![("vlan dot1q tag native", SpecificCommand)]);
    s.line(vec![("end", GenericCommand)]);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vlan_today_counts() {
        let s = vlan_script_today();
        let c = s.counts();
        // Table V (T, VLAN): 3 generic / 4 specific commands,
        // 3 generic / 5 specific state variables.
        assert_eq!(c.generic_commands, 3);
        assert_eq!(c.specific_commands, 4);
        assert!(c.specific_variables >= 2);
        assert!(s.text().contains("dot1q-tunnel"));
    }
}
