//! "Today's" configuration: the Linux scripts of Figures 7(a) and 8(a).
//!
//! These generators produce the same command sequences a human administrator
//! (or a conventional management application) would have to write, with each
//! token classified for the Table V comparison, and they can also apply the
//! GRE configuration directly to the simulated data plane so the baseline is
//! functionally checkable.

use crate::classify::{ClassifiedScript, TokenKind};
use netsim::config::TunnelConfig;
use netsim::device::Device;
use netsim::ipv4::Ipv4Cidr;
use netsim::route::{PolicyRule, Route, RouteTableId, RouteTarget, RuleSelector};
use std::net::Ipv4Addr;

/// Parameters of the GRE VPN the ISP wants to configure at one edge router
/// (router A of Figure 4 in the forward direction).
#[derive(Debug, Clone)]
pub struct GreVpnParams {
    /// Local tunnel endpoint (204.9.168.1).
    pub local: Ipv4Addr,
    /// Remote tunnel endpoint (204.9.169.1).
    pub remote: Ipv4Addr,
    /// Next hop towards the remote endpoint (204.9.168.2).
    pub nexthop: Ipv4Addr,
    /// Remote customer site prefix (10.0.2.0/24).
    pub remote_site: Ipv4Cidr,
    /// Local customer site prefix (10.0.1.0/24).
    pub local_site: Ipv4Cidr,
    /// Gateway of the local customer site (192.168.0.1).
    pub local_gateway: Ipv4Addr,
    /// GRE key for received packets.
    pub ikey: u32,
    /// GRE key for transmitted packets.
    pub okey: u32,
    /// Customer-facing port index.
    pub customer_port: u32,
    /// Core-facing port index.
    pub core_port: u32,
}

impl GreVpnParams {
    /// The exact values of Figure 7(a) (router A of the Figure 4 testbed).
    pub fn figure7_router_a() -> Self {
        GreVpnParams {
            local: "204.9.168.1".parse().unwrap(),
            remote: "204.9.169.1".parse().unwrap(),
            nexthop: "204.9.168.2".parse().unwrap(),
            remote_site: "10.0.2.0/24".parse().unwrap(),
            local_site: "10.0.1.0/24".parse().unwrap(),
            local_gateway: "192.168.0.1".parse().unwrap(),
            ikey: 1001,
            okey: 2001,
            customer_port: 0,
            core_port: 2,
        }
    }

    /// The mirror configuration at the far edge router (router C).
    pub fn mirrored(&self, local: Ipv4Addr, nexthop: Ipv4Addr, gateway: Ipv4Addr) -> Self {
        GreVpnParams {
            local,
            remote: self.local,
            nexthop,
            remote_site: self.local_site,
            local_site: self.remote_site,
            local_gateway: gateway,
            ikey: self.okey,
            okey: self.ikey,
            customer_port: self.customer_port,
            core_port: self.core_port,
        }
    }
}

/// Generate the Figure 7(a) script for one edge router.
pub fn gre_script_today(p: &GreVpnParams) -> ClassifiedScript {
    use TokenKind::*;
    let mut s = ClassifiedScript::new("GRE today");
    let remote = p.remote.to_string();
    let local = p.local.to_string();
    let nexthop = p.nexthop.to_string();
    let remote_site = p.remote_site.to_string();
    let gw = p.local_gateway.to_string();
    let ikey = p.ikey.to_string();
    let okey = p.okey.to_string();
    let core_if = format!("eth{}", p.core_port);
    let cust_if = format!("eth{}", p.customer_port);

    s.line(vec![
        ("insmod", GenericCommand),
        ("/lib/modules/2.6.14-2/ip_gre.ko", SpecificVariable),
    ]);
    s.line(vec![
        ("ip tunnel add", SpecificCommand),
        ("name", Syntax),
        ("greA", GenericVariable),
        ("mode gre", SpecificCommand),
        ("remote", Syntax),
        (&remote, SpecificVariable),
        ("local", Syntax),
        (&local, SpecificVariable),
        ("ikey", Syntax),
        (&ikey, SpecificVariable),
        ("okey", Syntax),
        (&okey, SpecificVariable),
        ("icsum ocsum iseq oseq", SpecificCommand),
    ]);
    s.line(vec![
        ("ifconfig", SpecificCommand),
        ("greA", GenericVariable),
        ("192.168.3.1", SpecificVariable),
    ]);
    s.line(vec![
        ("echo 1 >", GenericCommand),
        ("/proc/sys/net/ipv4/ip_forward", SpecificVariable),
    ]);
    s.line(vec![
        ("echo 202 >>", GenericCommand),
        ("tun-1-2", GenericVariable),
        ("/etc/iproute2/rt_tables", GenericVariable),
    ]);
    s.line(vec![
        ("ip rule add", SpecificCommand),
        ("to", Syntax),
        (&remote_site, SpecificVariable),
        ("table", Syntax),
        ("tun-1-2", GenericVariable),
    ]);
    s.line(vec![
        ("ip route add", SpecificCommand),
        ("default", GenericVariable),
        ("dev", Syntax),
        ("greA", GenericVariable),
        ("table", Syntax),
        ("tun-1-2", GenericVariable),
    ]);
    s.line(vec![
        ("echo 203 >>", GenericCommand),
        ("tun-2-1", GenericVariable),
        ("/etc/iproute2/rt_tables", GenericVariable),
    ]);
    s.line(vec![
        ("ip rule add", SpecificCommand),
        ("iif", Syntax),
        ("greA", GenericVariable),
        ("table", Syntax),
        ("tun-2-1", GenericVariable),
    ]);
    s.line(vec![
        ("ip route add", SpecificCommand),
        ("default", GenericVariable),
        ("via", Syntax),
        (&gw, SpecificVariable),
        ("dev", Syntax),
        (&cust_if, GenericVariable),
        ("table", Syntax),
        ("tun-2-1", GenericVariable),
    ]);
    s.line(vec![
        ("ip route add", SpecificCommand),
        ("to", Syntax),
        (&remote, SpecificVariable),
        ("via", Syntax),
        (&nexthop, SpecificVariable),
        ("dev", Syntax),
        (&core_if, GenericVariable),
    ]);
    s
}

/// Apply the Figure 7(a) configuration directly to a simulated edge router —
/// what "today's" management plane ultimately does to the device.
pub fn apply_gre_today(device: &mut Device, p: &GreVpnParams) {
    device.config.ip_forwarding = true;
    let tunnel_id = device.next_tunnel_id();
    let mut t = TunnelConfig::gre(tunnel_id, "greA", p.local, p.remote);
    t.ikey = Some(p.ikey);
    t.okey = Some(p.okey);
    t.icsum = true;
    t.ocsum = true;
    t.iseq = true;
    t.oseq = true;
    device.config.tunnels.insert(tunnel_id, t);

    let t12 = RouteTableId(202);
    let t21 = RouteTableId(203);
    device.config.rib.name_table(t12, "tun-1-2");
    device.config.rib.name_table(t21, "tun-2-1");
    device.config.rib.table_mut(t12).add(Route {
        dest: Ipv4Cidr::DEFAULT,
        target: RouteTarget::Tunnel { tunnel: tunnel_id },
    });
    device.config.rib.add_rule(PolicyRule {
        priority: 100,
        selector: RuleSelector::ToPrefix(p.remote_site),
        table: t12,
    });
    device.config.rib.table_mut(t21).add(Route {
        dest: Ipv4Cidr::DEFAULT,
        target: RouteTarget::Port {
            port: p.customer_port,
            via: Some(p.local_gateway),
        },
    });
    device.config.rib.add_rule(PolicyRule {
        priority: 101,
        selector: RuleSelector::FromTunnel(tunnel_id),
        table: t21,
    });
    device.config.rib.add_main(Route {
        dest: Ipv4Cidr::new(p.remote, 32),
        target: RouteTarget::Port {
            port: p.core_port,
            via: Some(p.nexthop),
        },
    });
    // Local site reachability for decapsulated reverse traffic.
    device.config.rib.add_main(Route {
        dest: p.local_site,
        target: RouteTarget::Port {
            port: p.customer_port,
            via: Some(p.local_gateway),
        },
    });
}

/// Generate the Figure 8(a) MPLS script for the ingress router.
pub fn mpls_script_today() -> ClassifiedScript {
    use TokenKind::*;
    let mut s = ClassifiedScript::new("MPLS today");
    s.line(vec![
        ("modprobe", GenericCommand),
        ("mpls", SpecificVariable),
    ]);
    s.line(vec![
        ("modprobe", GenericCommand),
        ("mpls4", SpecificVariable),
    ]);
    s.line(vec![
        ("mpls labelspace set", SpecificCommand),
        ("dev", Syntax),
        ("eth2", GenericVariable),
        ("labelspace", Syntax),
        ("0", SpecificVariable),
    ]);
    s.line(vec![
        ("mpls ilm add", SpecificCommand),
        ("label gen", Syntax),
        ("10001", SpecificVariable),
        ("labelspace", Syntax),
        ("0", SpecificVariable),
    ]);
    s.line(vec![
        ("KEY-S2-S1=", GenericVariable),
        ("mpls nhlfe add", SpecificCommand),
        ("key 0 mtu", Syntax),
        ("1500", SpecificVariable),
        ("instructions nexthop", Syntax),
        ("eth1", GenericVariable),
        ("ipv4", Syntax),
        ("192.168.0.1", SpecificVariable),
    ]);
    s.line(vec![
        ("mpls xc add", SpecificCommand),
        ("ilm label gen", Syntax),
        ("10001", SpecificVariable),
        ("ilm labelspace", Syntax),
        ("0", SpecificVariable),
        ("nhlfe key", Syntax),
        ("KEY-S2-S1", GenericVariable),
    ]);
    s.line(vec![
        ("KEY-S1-S2=", GenericVariable),
        ("mpls nhlfe add", SpecificCommand),
        ("key 0 mtu", Syntax),
        ("1500", SpecificVariable),
        ("instructions push gen", Syntax),
        ("2001", SpecificVariable),
        ("nexthop", Syntax),
        ("eth2", GenericVariable),
        ("ipv4", Syntax),
        ("204.9.168.2", SpecificVariable),
    ]);
    s.line(vec![
        ("echo 1 >", GenericCommand),
        ("/proc/sys/net/ipv4/ip_forward", SpecificVariable),
    ]);
    s.line(vec![
        ("ip route add", SpecificCommand),
        ("10.0.2.0/24", SpecificVariable),
        ("via", Syntax),
        ("204.9.168.2", SpecificVariable),
        ("mpls", Syntax),
        ("KEY-S1-S2", GenericVariable),
    ]);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gre_today_counts_are_close_to_table5() {
        let s = gre_script_today(&GreVpnParams::figure7_router_a());
        let c = s.counts();
        // Table V reports (T, GRE): 1 generic / 6 specific commands,
        // 9 generic / 11 specific state variables.  Our mechanical counting
        // of the same script lands in the same regime: far more
        // protocol-specific items than CONMan's (0 specific commands).
        assert!(c.specific_commands >= 4, "{c:?}");
        assert!(c.specific_variables >= 8, "{c:?}");
        assert!(c.generic_commands <= 4, "{c:?}");
        assert!(s.text().contains("ikey 1001"));
    }

    #[test]
    fn mpls_today_counts() {
        let c = mpls_script_today().counts();
        assert!(c.specific_commands >= 4);
        assert!(c.specific_variables >= 6);
    }

    #[test]
    fn apply_gre_today_installs_tunnel_and_routes() {
        use netsim::device::DeviceRole;
        let mut d = Device::new("RouterA", DeviceRole::Router, 3);
        d.config
            .assign_address(0, "192.168.0.2/24".parse().unwrap());
        d.config
            .assign_address(2, "204.9.168.1/24".parse().unwrap());
        apply_gre_today(&mut d, &GreVpnParams::figure7_router_a());
        assert!(d.config.ip_forwarding);
        assert_eq!(d.config.tunnels.len(), 1);
        let t = d.config.tunnels.values().next().unwrap();
        assert_eq!(t.okey, Some(2001));
        assert_eq!(t.remote, "204.9.169.1".parse::<Ipv4Addr>().unwrap());
        assert!(d.config.rib.rules().len() >= 2);
    }
}
