//! The Table V metric: counting generic vs protocol-specific commands and
//! state variables in configuration scripts.
//!
//! The paper colour-codes each script and counts four quantities per
//! scenario: generic commands, protocol-specific commands, generic state
//! variables and protocol-specific state variables, for "today's" scripts
//! (T) and the CONMan scripts (C).  Here every script line is built from
//! tagged tokens so the counting is mechanical and auditable.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// How a token of a configuration script is classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TokenKind {
    /// A command that exists independent of any specific protocol
    /// (`create pipe`, `ip route`, `echo ... > file`).
    GenericCommand,
    /// A command that only makes sense for one protocol
    /// (`ip tunnel add`, `mpls nhlfe add`, `switchport mode dot1q-tunnel`).
    SpecificCommand,
    /// A state variable with protocol-independent meaning (interface names,
    /// module or pipe identifiers, table names, device names).
    GenericVariable,
    /// A protocol-specific state variable (addresses, keys, labels, VLAN
    /// identifiers).
    SpecificVariable,
    /// Punctuation / fixed syntax that the paper does not count.
    Syntax,
}

/// One token of a script line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// The literal text.
    pub text: String,
    /// Its classification.
    pub kind: TokenKind,
}

impl Token {
    /// Build a token.
    pub fn new(text: impl Into<String>, kind: TokenKind) -> Self {
        Token {
            text: text.into(),
            kind,
        }
    }
}

/// A script line made of classified tokens.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ScriptLine {
    /// The tokens, in order.
    pub tokens: Vec<Token>,
}

impl ScriptLine {
    /// Render the line as plain text.
    pub fn text(&self) -> String {
        self.tokens
            .iter()
            .map(|t| t.text.clone())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// A complete classified script (one device's configuration).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ClassifiedScript {
    /// Scenario label ("GRE today", "MPLS CONMan", ...).
    pub label: String,
    /// The lines.
    pub lines: Vec<ScriptLine>,
}

/// The four counts of Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TableVCounts {
    /// Distinct generic commands.
    pub generic_commands: usize,
    /// Distinct protocol-specific commands.
    pub specific_commands: usize,
    /// Distinct generic state variables.
    pub generic_variables: usize,
    /// Distinct protocol-specific state variables.
    pub specific_variables: usize,
}

impl ClassifiedScript {
    /// Create an empty script.
    pub fn new(label: impl Into<String>) -> Self {
        ClassifiedScript {
            label: label.into(),
            lines: Vec::new(),
        }
    }

    /// Append a line built from `(text, kind)` pairs.
    pub fn line(&mut self, tokens: Vec<(&str, TokenKind)>) -> &mut Self {
        self.lines.push(ScriptLine {
            tokens: tokens.into_iter().map(|(t, k)| Token::new(t, k)).collect(),
        });
        self
    }

    /// Render the whole script as plain text.
    pub fn text(&self) -> String {
        self.lines
            .iter()
            .map(|l| l.text())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Count the Table V quantities.  Commands and variables are counted as
    /// *distinct* occurrences (the paper's colour-coding marks the first
    /// occurrence of each).
    pub fn counts(&self) -> TableVCounts {
        let mut seen: BTreeSet<(&str, TokenKind)> = BTreeSet::new();
        let mut c = TableVCounts::default();
        for line in &self.lines {
            for token in &line.tokens {
                if token.kind == TokenKind::Syntax {
                    continue;
                }
                if !seen.insert((token.text.as_str(), token.kind)) {
                    continue;
                }
                match token.kind {
                    TokenKind::GenericCommand => c.generic_commands += 1,
                    TokenKind::SpecificCommand => c.specific_commands += 1,
                    TokenKind::GenericVariable => c.generic_variables += 1,
                    TokenKind::SpecificVariable => c.specific_variables += 1,
                    TokenKind::Syntax => {}
                }
            }
        }
        c
    }
}

/// Classify a rendered CONMan script (the output of the NM's script
/// generator) into Table V counts.
///
/// CONMan scripts only ever contain the two generic commands (`create pipe`
/// and `create switch`); module references, pipe identifiers and trade-off
/// keywords are generic state variables; the named traffic classes and
/// gateways that the NM resolved on the manager's behalf (e.g. `C1-S2`,
/// `S2-gateway`) are counted as protocol-specific, exactly as the paper does.
pub fn classify_conman_script(rendered: &[String]) -> ClassifiedScript {
    let mut script = ClassifiedScript::new("CONMan");
    for line in rendered {
        let mut tokens = Vec::new();
        let cmd = if line.contains("create (pipe") {
            "create pipe"
        } else if line.contains("create (switch") {
            "create switch"
        } else {
            "create"
        };
        tokens.push(Token::new(cmd, TokenKind::GenericCommand));
        // Module references <KIND,dev,mN>.
        let mut rest = line.as_str();
        while let Some(start) = rest.find('<') {
            if let Some(end) = rest[start..].find('>') {
                tokens.push(Token::new(
                    &rest[start..start + end + 1],
                    TokenKind::GenericVariable,
                ));
                rest = &rest[start + end + 1..];
            } else {
                break;
            }
        }
        // Pipe identifiers.
        for word in line
            .split(|c: char| !c.is_alphanumeric() && c != '-' && c != ':')
            .filter(|w| !w.is_empty())
        {
            if word.starts_with('P') && word[1..].chars().all(|c| c.is_ascii_digit()) {
                tokens.push(Token::new(word, TokenKind::GenericVariable));
            }
        }
        // Trade-offs and the None placeholder are generic.
        for key in ["in-order delivery", "error-rate", "low-delay", "None"] {
            if line.contains(key) {
                tokens.push(Token::new(key, TokenKind::GenericVariable));
            }
        }
        // Named classes and gateways the NM resolved: protocol-specific.
        for key in ["C1-S1", "C1-S2", "S1-gateway", "S2-gateway", "Tagged"] {
            if line.contains(key) {
                tokens.push(Token::new(key, TokenKind::SpecificVariable));
            }
        }
        script.lines.push(ScriptLine { tokens });
    }
    script
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_counting() {
        let mut s = ClassifiedScript::new("test");
        s.line(vec![
            ("ip route add", TokenKind::GenericCommand),
            ("10.0.2.0/24", TokenKind::SpecificVariable),
            ("via", TokenKind::Syntax),
            ("204.9.168.2", TokenKind::SpecificVariable),
            ("eth2", TokenKind::GenericVariable),
        ]);
        s.line(vec![
            ("ip route add", TokenKind::GenericCommand),
            ("204.9.169.1", TokenKind::SpecificVariable),
            ("eth2", TokenKind::GenericVariable),
        ]);
        let c = s.counts();
        assert_eq!(c.generic_commands, 1);
        assert_eq!(c.specific_commands, 0);
        assert_eq!(c.generic_variables, 1);
        assert_eq!(c.specific_variables, 3);
        assert!(s.text().contains("ip route add"));
    }

    #[test]
    fn conman_scripts_have_no_specific_commands() {
        let rendered = vec![
            "P0 = create (pipe, <IP,A,m3>, <ETH,A,m1>, None, None, None)".to_string(),
            "P1 = create (pipe, <IP,A,m3>, <GRE,A,m5>, <IP,C,m4>, <GRE,C,m5>, trade-off: in-order delivery, trade-off: error-rate)".to_string(),
            "create (switch, <IP,A,m3>, [P0, dst:C1-S2 => P1])".to_string(),
        ];
        let s = classify_conman_script(&rendered);
        let c = s.counts();
        assert_eq!(c.specific_commands, 0);
        assert_eq!(c.generic_commands, 2); // create pipe, create switch
        assert!(c.generic_variables >= 7);
        assert_eq!(c.specific_variables, 1); // C1-S2
    }
}
