//! Management messages.

use netsim::device::DeviceId;
use serde::{Deserialize, Serialize};

/// Coarse category of a management message, used only for accounting
/// (Table VI breaks the NM's overhead down by what kind of exchange caused
/// the messages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MessageCategory {
    /// A device announcing itself / its physical connectivity to the NM.
    Announcement,
    /// A CONMan primitive invocation sent by the NM to a device
    /// (showPotential, showActual, create, delete).
    Command,
    /// The response to a command.
    Response,
    /// A module-to-module message relayed through the NM (`conveyMessage`).
    ConveyMessage,
    /// A module-to-module field query relayed through the NM
    /// (`listFieldsAndValues`).
    FieldQuery,
    /// An unsolicited notification from a module to the NM (dependency
    /// triggers, completion notices).
    Notification,
    /// Periodic counter-snapshot traffic: the NM's `pollCounters` requests
    /// and the per-module snapshot reports they elicit.  Accounted
    /// separately so diagnosis overhead never pollutes the Table VI
    /// configuration counts.
    Telemetry,
}

impl MessageCategory {
    /// Stable name, used as the metrics key of the channel's recorder tap
    /// (`msg.sent.<name>` / `msg.received.<name>`).
    pub fn name(self) -> &'static str {
        match self {
            MessageCategory::Announcement => "Announcement",
            MessageCategory::Command => "Command",
            MessageCategory::Response => "Response",
            MessageCategory::ConveyMessage => "ConveyMessage",
            MessageCategory::FieldQuery => "FieldQuery",
            MessageCategory::Notification => "Notification",
            MessageCategory::Telemetry => "Telemetry",
        }
    }
}

/// One management message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MgmtMessage {
    /// Sending device (the NM is itself hosted on a device).
    pub from: DeviceId,
    /// Destination device.
    pub to: DeviceId,
    /// Accounting category.
    pub category: MessageCategory,
    /// Opaque payload (serialized CONMan message).
    pub payload: Vec<u8>,
    /// Per-sender sequence number, assigned by the channel on send.
    pub seq: u64,
}

impl MgmtMessage {
    /// Build a message (the sequence number is filled in by the channel).
    pub fn new(from: DeviceId, to: DeviceId, category: MessageCategory, payload: Vec<u8>) -> Self {
        MgmtMessage {
            from,
            to,
            category,
            payload,
            seq: 0,
        }
    }

    /// Encoded size of the payload in bytes (for overhead reporting).
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_roundtrip() {
        let m = MgmtMessage::new(
            DeviceId::from_raw(1),
            DeviceId::from_raw(2),
            MessageCategory::ConveyMessage,
            vec![1, 2, 3],
        );
        let s = serde_json::to_string(&m).unwrap();
        let back: MgmtMessage = serde_json::from_str(&s).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.payload_len(), 3);
    }
}
