//! Periodic counter-snapshot scheduling.
//!
//! The diagnosis layer samples per-module pipe counters at a fixed period of
//! *simulated* time.  [`TelemetrySchedule`] tracks when the next sample is
//! due against the deterministic simulation clock, so telemetry collection —
//! like everything else in the reproduction — replays identically from run
//! to run, over either channel variant.

use netsim::clock::{SimDuration, SimTime};

/// Tracks when periodic counter polls are due.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySchedule {
    period: SimDuration,
    next: SimTime,
}

impl TelemetrySchedule {
    /// A schedule firing every `period`, with the first round due
    /// immediately.
    pub fn new(period: SimDuration) -> Self {
        assert!(period.as_nanos() > 0, "telemetry period must be non-zero");
        TelemetrySchedule {
            period,
            next: SimTime::ZERO,
        }
    }

    /// The sampling period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// When the next round is due.
    pub fn next_due(&self) -> SimTime {
        self.next
    }

    /// How many rounds are due at time `now`, advancing the schedule past
    /// them.  Callers typically collect one snapshot per due round (or one
    /// snapshot total, treating a backlog as a missed-round gap).
    pub fn due_rounds(&mut self, now: SimTime) -> u32 {
        let mut due = 0;
        while self.next <= now {
            self.next += self.period;
            due += 1;
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_fire_per_period() {
        let mut s = TelemetrySchedule::new(SimDuration::from_millis(100));
        assert_eq!(s.period(), SimDuration::from_millis(100));
        // First round is due at t = 0.
        assert_eq!(s.due_rounds(SimTime::ZERO), 1);
        assert_eq!(s.due_rounds(SimTime::from_millis(50)), 0);
        assert_eq!(s.due_rounds(SimTime::from_millis(100)), 1);
        // A long gap yields the backlog.
        assert_eq!(s.due_rounds(SimTime::from_millis(450)), 3);
        assert_eq!(s.next_due(), SimTime::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_is_rejected() {
        let _ = TelemetrySchedule::new(SimDuration::ZERO);
    }
}
