//! Periodic counter-snapshot scheduling.
//!
//! The diagnosis layer samples per-module pipe counters at a fixed period of
//! *simulated* time.  [`TelemetrySchedule`] tracks when the next sample is
//! due against the deterministic simulation clock, so telemetry collection —
//! like everything else in the reproduction — replays identically from run
//! to run, over either channel variant.
//!
//! Beyond the original pull-style `due_rounds` count, the schedule now acts
//! as an **event source** for the autonomic control loop: [`take_due`]
//! returns the due instants themselves, which the loop turns into telemetry
//! events on its unified event stream instead of polling a counter.
//!
//! [`take_due`]: TelemetrySchedule::take_due

use netsim::clock::{SimDuration, SimTime};

/// Tracks when periodic counter polls are due.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySchedule {
    period: SimDuration,
    next: SimTime,
}

impl TelemetrySchedule {
    /// A schedule firing every `period`, with the first round due
    /// immediately.
    pub fn new(period: SimDuration) -> Self {
        assert!(period.as_nanos() > 0, "telemetry period must be non-zero");
        TelemetrySchedule {
            period,
            next: SimTime::ZERO,
        }
    }

    /// The sampling period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// When the next round is due.
    pub fn next_due(&self) -> SimTime {
        self.next
    }

    /// How many rounds are due at time `now`, advancing the schedule past
    /// them.  Callers typically collect one snapshot per due round (or one
    /// snapshot total, treating a backlog as a missed-round gap).
    pub fn due_rounds(&mut self, now: SimTime) -> u32 {
        self.take_due(now).len() as u32
    }

    /// The due instants at time `now`, advancing the schedule past them —
    /// the event-source form of [`Self::due_rounds`]: each returned instant
    /// becomes one telemetry event on the control loop's event stream, so a
    /// backlog after a long quiet stretch is visible as distinct (time
    /// stamped) events rather than a bare count.
    pub fn take_due(&mut self, now: SimTime) -> Vec<SimTime> {
        let mut due = Vec::new();
        while self.next <= now {
            due.push(self.next);
            self.next += self.period;
        }
        due
    }

    /// Re-anchor the schedule so the next round is due at `next` (used when
    /// a control loop adopts the schedule mid-run: rounds then land on the
    /// loop's tick boundaries instead of the schedule's original phase).
    pub fn align_to(&mut self, next: SimTime) {
        self.next = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_fire_per_period() {
        let mut s = TelemetrySchedule::new(SimDuration::from_millis(100));
        assert_eq!(s.period(), SimDuration::from_millis(100));
        // First round is due at t = 0.
        assert_eq!(s.due_rounds(SimTime::ZERO), 1);
        assert_eq!(s.due_rounds(SimTime::from_millis(50)), 0);
        assert_eq!(s.due_rounds(SimTime::from_millis(100)), 1);
        // A long gap yields the backlog.
        assert_eq!(s.due_rounds(SimTime::from_millis(450)), 3);
        assert_eq!(s.next_due(), SimTime::from_millis(500));
    }

    #[test]
    fn take_due_yields_the_due_instants_and_align_rephases() {
        let mut s = TelemetrySchedule::new(SimDuration::from_millis(100));
        assert_eq!(
            s.take_due(SimTime::from_millis(250)),
            vec![
                SimTime::ZERO,
                SimTime::from_millis(100),
                SimTime::from_millis(200)
            ]
        );
        assert!(s.take_due(SimTime::from_millis(250)).is_empty());
        s.align_to(SimTime::from_millis(333));
        assert_eq!(s.next_due(), SimTime::from_millis(333));
        assert_eq!(s.take_due(SimTime::from_millis(333)).len(), 1);
        assert_eq!(s.next_due(), SimTime::from_millis(433));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_is_rejected() {
        let _ = TelemetrySchedule::new(SimDuration::ZERO);
    }
}
