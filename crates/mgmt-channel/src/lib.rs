//! # mgmt-channel — the CONMan management channel
//!
//! CONMan assumes a management channel that is independent of the data plane,
//! requires no pre-configuration and lets every device talk to the Network
//! Manager (§II-A).  The paper's implementation had two variants and so does
//! this crate:
//!
//! * [`OutOfBandChannel`] — the dedicated management network (each testbed PC
//!   had a separate management NIC); modelled as direct in-memory mailboxes.
//! * [`InBandChannel`] — the straw-man 4D-style discovery/dissemination
//!   channel: management messages are encapsulated in raw Ethernet frames
//!   (EtherType 0x88B5) and flooded hop-by-hop over the same physical links
//!   the data plane uses, with no pre-configuration at all.
//!
//! Both variants count messages sent and received per device, which is how
//! Table VI (NM messaging overhead) is regenerated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod counters;
pub mod inband;
pub mod message;
pub mod oob;
pub mod telemetry;

pub use counters::{ChannelCounters, CounterBoard};
pub use inband::InBandChannel;
pub use message::{MessageCategory, MgmtMessage};
pub use oob::OutOfBandChannel;
pub use telemetry::TelemetrySchedule;

use netsim::device::DeviceId;
use netsim::network::Network;

/// A transport for management messages between devices (their management
/// agents) and the NM.
///
/// The channel is deliberately dumb: it moves opaque payload bytes and counts
/// them.  What the bytes mean (CONMan primitives, module-to-module
/// conveyMessage relays, ...) is the business of `conman-core`.
pub trait ManagementChannel {
    /// Queue a message for delivery.
    fn send(&mut self, net: &mut Network, msg: MgmtMessage);

    /// Let queued traffic propagate (a no-op for the out-of-band channel;
    /// drives flooding and the simulator event loop for the in-band one).
    fn run(&mut self, net: &mut Network);

    /// Drain messages addressed to `device`.
    fn recv(&mut self, net: &mut Network, device: DeviceId) -> Vec<MgmtMessage>;

    /// Counters for one device.
    fn counters(&self, device: DeviceId) -> ChannelCounters;

    /// Reset all counters (used between experiment runs).
    fn reset_counters(&mut self);

    /// Human-readable name of the channel variant (for experiment output).
    fn variant(&self) -> &'static str;

    /// Attach a flight recorder whose message tap accounts every message
    /// the channel moves (by direction and wire category).  Channels that
    /// do not implement the tap silently ignore the recorder.
    fn attach_recorder(&mut self, _recorder: conman_obs::Recorder) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::device::{Device, DeviceRole, PortId};
    use netsim::link::LinkProperties;

    /// Both channel variants deliver a message end to end and count it.
    #[test]
    fn both_variants_deliver_and_count() {
        // Line of three devices so in-band flooding has to cross a hop.
        let mut net = Network::new();
        let a = net.add_device(Device::new("a", DeviceRole::Router, 2));
        let b = net.add_device(Device::new("b", DeviceRole::Router, 2));
        let c = net.add_device(Device::new("c", DeviceRole::Router, 2));
        net.connect((a, PortId(0)), (b, PortId(1)), LinkProperties::lan())
            .unwrap();
        net.connect((b, PortId(0)), (c, PortId(1)), LinkProperties::lan())
            .unwrap();

        let channels: Vec<Box<dyn ManagementChannel>> = vec![
            Box::new(OutOfBandChannel::new()),
            Box::new(InBandChannel::new()),
        ];
        for mut ch in channels {
            let msg = MgmtMessage::new(a, c, MessageCategory::Command, b"showPotential".to_vec());
            ch.send(&mut net, msg);
            ch.run(&mut net);
            let got = ch.recv(&mut net, c);
            assert_eq!(got.len(), 1, "{} should deliver", ch.variant());
            assert_eq!(got[0].payload, b"showPotential");
            assert_eq!(ch.counters(a).sent, 1);
            assert_eq!(ch.counters(c).received, 1);
            assert_eq!(ch.counters(b).received, 0, "transit devices do not consume");
            ch.reset_counters();
            assert_eq!(ch.counters(a).sent, 0);
        }
    }
}
