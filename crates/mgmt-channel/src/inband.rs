//! The in-band, self-bootstrapping management channel.
//!
//! Management messages are wrapped in raw Ethernet frames with the
//! experimental EtherType 0x88B5 and flooded hop by hop: every device that
//! receives a management frame it has not seen before re-emits it on all its
//! other ports, and additionally delivers it locally if it is the
//! destination.  No addresses, routes or spanning trees need to be configured
//! beforehand — this is the 4D-style discovery/dissemination plane the paper
//! built with `SOCK_PACKET` sockets (§III-A).

use crate::counters::{ChannelCounters, CounterBoard};
use crate::message::MgmtMessage;
use crate::ManagementChannel;
use conman_obs::{MessageDirection, Recorder};
use netsim::clock::SimDuration;
use netsim::device::{DeviceId, PortId};
use netsim::ether::{EtherType, EthernetFrame};
use netsim::mac::MacAddr;
use netsim::network::Network;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Hop budget for flooded frames, bounding loops on redundant topologies.
const DEFAULT_TTL: u8 = 32;

/// The flooded wire format: a management message plus flooding metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FloodFrame {
    /// Device that originated the flood.
    origin: DeviceId,
    /// Origin-assigned identifier used for duplicate suppression.
    flood_id: u64,
    /// Remaining hop budget.
    ttl: u8,
    /// The management message being carried.
    msg: MgmtMessage,
}

/// Flooding in-band management channel.
#[derive(Debug, Default)]
pub struct InBandChannel {
    mailboxes: BTreeMap<DeviceId, VecDeque<MgmtMessage>>,
    /// (origin, flood_id) pairs each device has already processed.
    seen: BTreeMap<DeviceId, HashSet<(DeviceId, u64)>>,
    counters: CounterBoard,
    next_flood_id: u64,
    /// Total frames placed on links by the flooding protocol (a measure of
    /// the overhead of not having any configuration, reported by the channel
    /// benchmarks).
    pub frames_flooded: u64,
    /// Flight-recorder message tap (disabled by default).
    recorder: Recorder,
}

impl InBandChannel {
    /// Create an empty channel.
    pub fn new() -> Self {
        Self::default()
    }

    fn encode(frame: &FloodFrame) -> Vec<u8> {
        serde_json::to_vec(frame).expect("flood frames always serialize")
    }

    fn decode(bytes: &[u8]) -> Option<FloodFrame> {
        serde_json::from_slice(bytes).ok()
    }

    /// Emit `frame` out of every usable port of `device` except `skip`.
    fn flood_from(
        &mut self,
        net: &mut Network,
        device: DeviceId,
        skip: Option<PortId>,
        frame: &FloodFrame,
    ) {
        let payload = Self::encode(frame);
        let ports: Vec<PortId> = match net.device(device) {
            Ok(d) => d
                .ports
                .iter()
                .filter(|nic| nic.is_usable())
                .map(|nic| PortId(nic.index))
                .filter(|p| Some(*p) != skip)
                .collect(),
            Err(_) => return,
        };
        for port in ports {
            let src_mac = net
                .device(device)
                .map(|d| d.port_mac(port))
                .unwrap_or(MacAddr::ZERO);
            let eth = EthernetFrame::new(
                MacAddr::BROADCAST,
                src_mac,
                EtherType::Management,
                payload.clone(),
            );
            let _ = net.send_raw_frame(device, port, &eth);
            self.frames_flooded += 1;
            self.recorder.inc("inband.frames_flooded", 1);
        }
    }

    /// Process management frames queued at every device, re-flooding and
    /// delivering as needed.  Returns `true` if any frame was processed.
    fn pump(&mut self, net: &mut Network) -> bool {
        let mut progressed = false;
        let device_ids = net.device_ids();
        for id in device_ids {
            let frames = match net.device_mut(id) {
                Ok(d) => d.take_mgmt_frames(),
                Err(_) => continue,
            };
            for f in frames {
                progressed = true;
                let Some(mut flood) = Self::decode(&f.payload) else {
                    continue;
                };
                let seen = self.seen.entry(id).or_default();
                if !seen.insert((flood.origin, flood.flood_id)) {
                    continue; // duplicate
                }
                if flood.msg.to == id {
                    self.counters
                        .record_received(id, flood.msg.category, flood.msg.payload_len());
                    self.recorder.on_message(
                        MessageDirection::Received,
                        flood.msg.category.name(),
                        flood.msg.payload_len(),
                    );
                    self.mailboxes
                        .entry(id)
                        .or_default()
                        .push_back(flood.msg.clone());
                    continue;
                }
                if flood.ttl == 0 {
                    continue;
                }
                flood.ttl -= 1;
                self.flood_from(net, id, f.port, &flood);
            }
        }
        progressed
    }
}

impl ManagementChannel for InBandChannel {
    fn send(&mut self, net: &mut Network, mut msg: MgmtMessage) {
        self.next_flood_id += 1;
        msg.seq = self.next_flood_id;
        self.counters
            .record_sent(msg.from, msg.category, msg.payload_len());
        self.recorder.on_message(
            MessageDirection::Sent,
            msg.category.name(),
            msg.payload_len(),
        );
        let origin = msg.from;
        // Local delivery without touching the wire when a device messages
        // itself (the NM talking to modules on its own host).
        if msg.to == origin {
            self.counters
                .record_received(origin, msg.category, msg.payload_len());
            self.recorder.on_message(
                MessageDirection::Received,
                msg.category.name(),
                msg.payload_len(),
            );
            self.mailboxes.entry(origin).or_default().push_back(msg);
            return;
        }
        let flood = FloodFrame {
            origin,
            flood_id: self.next_flood_id,
            ttl: DEFAULT_TTL,
            msg,
        };
        self.seen
            .entry(origin)
            .or_default()
            .insert((origin, flood.flood_id));
        self.flood_from(net, origin, None, &flood);
    }

    fn run(&mut self, net: &mut Network) {
        // Alternate between letting frames propagate over links and
        // processing what arrived, until the flood dies out.
        loop {
            net.run_for(SimDuration::from_millis(10));
            let progressed = self.pump(net);
            if !progressed && net.run_for(SimDuration::from_millis(10)) == 0 {
                break;
            }
        }
    }

    fn recv(&mut self, net: &mut Network, device: DeviceId) -> Vec<MgmtMessage> {
        self.run(net);
        self.mailboxes
            .get_mut(&device)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default()
    }

    fn counters(&self, device: DeviceId) -> ChannelCounters {
        self.counters.get(device)
    }

    fn reset_counters(&mut self) {
        self.counters.reset();
    }

    fn variant(&self) -> &'static str {
        "in-band-flooding"
    }

    fn attach_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageCategory;
    use netsim::device::{Device, DeviceRole};
    use netsim::link::LinkProperties;
    use netsim::topology;

    /// Build a small ring so flooding has redundant paths (duplicates must
    /// be suppressed and the flood must still terminate).
    fn ring(n: usize) -> (Network, Vec<DeviceId>) {
        let mut net = Network::new();
        let ids: Vec<DeviceId> = (0..n)
            .map(|i| net.add_device(Device::new(format!("d{i}"), DeviceRole::Router, 2)))
            .collect();
        for i in 0..n {
            let j = (i + 1) % n;
            net.connect(
                (ids[i], PortId(0)),
                (ids[j], PortId(1)),
                LinkProperties::lan(),
            )
            .unwrap();
        }
        (net, ids)
    }

    #[test]
    fn flooding_works_on_rings_without_looping_forever() {
        let (mut net, ids) = ring(6);
        let mut ch = InBandChannel::new();
        ch.send(
            &mut net,
            MgmtMessage::new(ids[0], ids[3], MessageCategory::Command, b"hello".to_vec()),
        );
        let got = ch.recv(&mut net, ids[3]);
        assert_eq!(got.len(), 1);
        // The flood terminates: total frames is finite and bounded by
        // (devices * ports).
        assert!(ch.frames_flooded <= 24);
        // Duplicate suppression: the destination got the message exactly once.
        assert_eq!(ch.counters(ids[3]).received, 1);
    }

    #[test]
    fn no_preconfiguration_needed_on_the_vpn_testbed() {
        // The Figure 4 testbed has no routes for the management traffic at
        // all; the in-band channel still reaches every device from the NM
        // host (Router B, the core router, hosts the NM in our experiments).
        let mut t = topology::figure4();
        let mut ch = InBandChannel::new();
        let nm_host = t.core[1];
        for target in [t.core[0], t.core[2], t.customer1, t.customer2] {
            ch.send(
                net_ref(&mut t),
                MgmtMessage::new(
                    nm_host,
                    target,
                    MessageCategory::Command,
                    b"showPotential".to_vec(),
                ),
            );
        }
        for target in [t.core[0], t.core[2], t.customer1, t.customer2] {
            let got = ch.recv(&mut t.net, target);
            assert_eq!(got.len(), 1, "device should receive exactly one command");
        }
        // Data-plane state was not needed nor created: no ARP entries were
        // added anywhere by the management flood.
        for id in t.net.device_ids() {
            assert!(t.net.device(id).unwrap().arp.is_empty());
        }
    }

    fn net_ref(t: &mut topology::ChainTopology) -> &mut Network {
        &mut t.net
    }

    #[test]
    fn self_addressed_messages_short_circuit() {
        let (mut net, ids) = ring(3);
        let mut ch = InBandChannel::new();
        ch.send(
            &mut net,
            MgmtMessage::new(ids[0], ids[0], MessageCategory::Notification, vec![1]),
        );
        assert_eq!(ch.frames_flooded, 0);
        assert_eq!(ch.recv(&mut net, ids[0]).len(), 1);
    }
}
