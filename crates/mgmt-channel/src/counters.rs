//! Per-device message accounting.

use crate::message::MessageCategory;
use netsim::device::DeviceId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counters for one device's use of the management channel.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelCounters {
    /// Messages this device originated.
    pub sent: u64,
    /// Messages delivered to this device.
    pub received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Sent messages broken down by category.
    pub sent_by_category: BTreeMap<MessageCategory, u64>,
    /// Received messages broken down by category.
    pub received_by_category: BTreeMap<MessageCategory, u64>,
}

/// Counters for every device on a channel.
#[derive(Debug, Clone, Default)]
pub struct CounterBoard {
    per_device: BTreeMap<DeviceId, ChannelCounters>,
}

impl CounterBoard {
    /// Create an empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a send.
    pub fn record_sent(&mut self, device: DeviceId, category: MessageCategory, bytes: usize) {
        let c = self.per_device.entry(device).or_default();
        c.sent += 1;
        c.bytes_sent += bytes as u64;
        *c.sent_by_category.entry(category).or_insert(0) += 1;
    }

    /// Record a delivery.
    pub fn record_received(&mut self, device: DeviceId, category: MessageCategory, bytes: usize) {
        let c = self.per_device.entry(device).or_default();
        c.received += 1;
        c.bytes_received += bytes as u64;
        *c.received_by_category.entry(category).or_insert(0) += 1;
    }

    /// Counters for a device (zeroes if it never used the channel).
    pub fn get(&self, device: DeviceId) -> ChannelCounters {
        self.per_device.get(&device).cloned().unwrap_or_default()
    }

    /// Reset everything.
    pub fn reset(&mut self) {
        self.per_device.clear();
    }

    /// Total messages sent across all devices.
    pub fn total_sent(&self) -> u64 {
        self.per_device.values().map(|c| c.sent).sum()
    }

    /// Total messages received across all devices.
    pub fn total_received(&self) -> u64 {
        self.per_device.values().map(|c| c.received).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut b = CounterBoard::new();
        let nm = DeviceId::from_raw(1);
        let dev = DeviceId::from_raw(2);
        b.record_sent(nm, MessageCategory::Command, 10);
        b.record_sent(nm, MessageCategory::ConveyMessage, 20);
        b.record_received(dev, MessageCategory::Command, 10);
        let c = b.get(nm);
        assert_eq!(c.sent, 2);
        assert_eq!(c.bytes_sent, 30);
        assert_eq!(c.sent_by_category[&MessageCategory::Command], 1);
        assert_eq!(b.get(dev).received, 1);
        assert_eq!(b.get(DeviceId::from_raw(99)), ChannelCounters::default());
        assert_eq!(b.total_sent(), 2);
        assert_eq!(b.total_received(), 1);
        b.reset();
        assert_eq!(b.total_sent(), 0);
    }
}
