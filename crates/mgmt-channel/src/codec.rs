//! Byte-level reader/writer helpers for the binary wire codec.
//!
//! The management channel moves opaque payload bytes; historically every
//! payload was a vendored-JSON document.  The batched-transaction hot path
//! (StageBatch / CommitBatch and friends) now supports a compact binary
//! framing built from the primitives in this module: fixed-width
//! little-endian integers and `u32`-length-prefixed byte slices.  The codec
//! is deliberately boring — no compression, no varints — so the agent can
//! validate length-prefixed segment slices *in place* without first
//! materialising a message tree.
//!
//! Binary payloads are distinguished from JSON by their first byte: every
//! binary message starts with a magic tag in `0x81..=0x86`, while a JSON
//! document always starts with `{` (`0x7B`).  The tags themselves are owned
//! by `conman-core`'s `wire` module; this module only fixes their values so
//! the channel layer can recognise (and count) binary frames without
//! depending on the message schema.

/// Magic first byte of a binary `StageBatch` payload.
pub const TAG_STAGE_BATCH: u8 = 0x81;
/// Magic first byte of a binary `StageBatchResult` payload.
pub const TAG_STAGE_BATCH_RESULT: u8 = 0x82;
/// Magic first byte of a binary `CommitBatch` payload.
pub const TAG_COMMIT_BATCH: u8 = 0x83;
/// Magic first byte of a binary `CommitBatchResult` payload.
pub const TAG_COMMIT_BATCH_RESULT: u8 = 0x84;
/// Magic first byte of a binary `AbortBatch` payload.
pub const TAG_ABORT_BATCH: u8 = 0x85;
/// Magic first byte of a binary `RelayBatch` payload.
pub const TAG_RELAY_BATCH: u8 = 0x86;

/// Does this payload start with one of the binary magic tags?  JSON payloads
/// start with `{` (0x7B), so the first byte alone separates the codecs.
pub fn is_binary(payload: &[u8]) -> bool {
    payload
        .first()
        .is_some_and(|b| (TAG_STAGE_BATCH..=TAG_RELAY_BATCH).contains(b))
}

/// An append-only byte writer for the binary codec: fixed-width
/// little-endian integers and `u32`-length-prefixed slices.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Start a payload with its magic tag byte.
    pub fn with_tag(tag: u8) -> Self {
        Writer { buf: vec![tag] }
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`-length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Append a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Current length of the payload so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the payload empty (it never is once a tag was written)?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Patch a previously written little-endian `u32` at `at` (used for
    /// back-filling a length prefix once the content size is known).
    pub fn patch_u32(&mut self, at: usize, v: u32) {
        self.buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Finish and take the payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A checked, `Option`-returning reader over a binary payload (or a slice of
/// one).  Every accessor returns `None` instead of panicking on truncated
/// input, so malformed payloads are rejected exactly like malformed JSON.
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has every byte been consumed?
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }

    /// Read a `u32`-length-prefixed byte slice, borrowed from the payload.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        let v = self.buf.get(self.pos..self.pos + len)?;
        self.pos += len;
        Some(v)
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<&'a str> {
        std::str::from_utf8(self.bytes()?).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_slices() {
        let mut w = Writer::with_tag(TAG_STAGE_BATCH);
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_str("hello");
        w.put_bytes(&[1, 2, 3]);
        let buf = w.finish();
        assert!(is_binary(&buf));

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8(), Some(TAG_STAGE_BATCH));
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(u64::MAX - 1));
        assert_eq!(r.str(), Some("hello"));
        assert_eq!(r.bytes(), Some(&[1u8, 2, 3][..]));
        assert!(r.is_exhausted());
        assert_eq!(r.u8(), None, "reads past the end fail cleanly");
    }

    #[test]
    fn truncated_input_is_rejected_not_panicked_on() {
        let mut w = Writer::default();
        w.put_str("truncate me");
        let buf = w.finish();
        let mut r = Reader::new(&buf[..buf.len() - 1]);
        assert_eq!(r.str(), None);
    }

    #[test]
    fn length_prefix_backpatching() {
        let mut w = Writer::default();
        let at = w.len();
        w.put_u32(0); // placeholder
        w.put_str("abc");
        let body = w.len() - at - 4;
        w.patch_u32(at, body as u32);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32(), Some(body as u32));
    }

    #[test]
    fn json_is_never_mistaken_for_binary() {
        assert!(!is_binary(b"{\"x\":1}"));
        assert!(!is_binary(b""));
        assert!(!is_binary(b"not json"));
        for tag in [
            TAG_STAGE_BATCH,
            TAG_STAGE_BATCH_RESULT,
            TAG_COMMIT_BATCH,
            TAG_COMMIT_BATCH_RESULT,
            TAG_ABORT_BATCH,
            TAG_RELAY_BATCH,
        ] {
            assert!(is_binary(&[tag]));
        }
    }
}
