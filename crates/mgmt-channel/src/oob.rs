//! The out-of-band management channel: a dedicated management network,
//! modelled as direct per-device mailboxes.
//!
//! This mirrors the paper's primary testbed setup, where every PC had a
//! separate management NIC on a separate network and CONMan messages ran as
//! UDP/IP over that network.  The paper notes this is "not ideal since the
//! management channel had to be pre-configured"; the in-band variant removes
//! that assumption.

use crate::counters::{ChannelCounters, CounterBoard};
use crate::message::MgmtMessage;
use crate::ManagementChannel;
use conman_obs::{MessageDirection, Recorder};
use netsim::device::DeviceId;
use netsim::network::Network;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Direct-mailbox management channel.
#[derive(Debug, Default)]
pub struct OutOfBandChannel {
    mailboxes: BTreeMap<DeviceId, VecDeque<MgmtMessage>>,
    counters: CounterBoard,
    next_seq: u64,
    /// Simulated one-way latency accounting: number of messages delivered,
    /// exposed for the channel benchmarks.
    pub deliveries: u64,
    /// Flight-recorder message tap (disabled by default).
    recorder: Recorder,
}

impl OutOfBandChannel {
    /// Create an empty channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of messages currently queued for all devices.
    pub fn pending(&self) -> usize {
        self.mailboxes.values().map(|q| q.len()).sum()
    }
}

impl ManagementChannel for OutOfBandChannel {
    fn send(&mut self, _net: &mut Network, mut msg: MgmtMessage) {
        self.next_seq += 1;
        msg.seq = self.next_seq;
        self.counters
            .record_sent(msg.from, msg.category, msg.payload_len());
        self.recorder.on_message(
            MessageDirection::Sent,
            msg.category.name(),
            msg.payload_len(),
        );
        self.mailboxes.entry(msg.to).or_default().push_back(msg);
    }

    fn run(&mut self, _net: &mut Network) {
        // Delivery is immediate; nothing to pump.
    }

    fn recv(&mut self, _net: &mut Network, device: DeviceId) -> Vec<MgmtMessage> {
        let msgs: Vec<MgmtMessage> = self
            .mailboxes
            .get_mut(&device)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default();
        for m in &msgs {
            self.deliveries += 1;
            self.counters
                .record_received(device, m.category, m.payload_len());
            self.recorder.on_message(
                MessageDirection::Received,
                m.category.name(),
                m.payload_len(),
            );
        }
        msgs
    }

    fn counters(&self, device: DeviceId) -> ChannelCounters {
        self.counters.get(device)
    }

    fn reset_counters(&mut self) {
        self.counters.reset();
    }

    fn variant(&self) -> &'static str {
        "out-of-band"
    }

    fn attach_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageCategory;

    #[test]
    fn messages_queue_until_polled() {
        let mut net = Network::new();
        let mut ch = OutOfBandChannel::new();
        let a = DeviceId::from_raw(1);
        let b = DeviceId::from_raw(2);
        for i in 0..3 {
            ch.send(
                &mut net,
                MgmtMessage::new(a, b, MessageCategory::Command, vec![i]),
            );
        }
        assert_eq!(ch.pending(), 3);
        assert!(ch.recv(&mut net, a).is_empty());
        let got = ch.recv(&mut net, b);
        assert_eq!(got.len(), 3);
        // Sequence numbers are assigned in send order.
        assert!(got.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(ch.pending(), 0);
        assert_eq!(ch.counters(a).sent, 3);
        assert_eq!(ch.counters(b).received, 3);
    }
}
