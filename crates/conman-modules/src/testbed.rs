//! Managed testbeds: the paper's experimental set-ups with CONMan agents
//! attached and an NM ready to manage them.
//!
//! The NM is hosted on a dedicated management station (a device with no data
//! plane role), mirroring the paper's separate management machine; devices
//! reach it over the management channel (out-of-band by default).

use crate::builder::{
    build_plain_router_agent, build_router_agent, build_tunnel_host_agent, build_vlan_switch_agent,
    RouterPlan,
};
use conman_core::ids::ModuleKind;
use conman_core::nm::ConnectivityGoal;
use conman_core::runtime::ManagedNetwork;
use mgmt_channel::{ManagementChannel, OutOfBandChannel};
use netsim::device::{Device, DeviceId, DeviceRole, PortId};
use netsim::link::LinkProperties;
use netsim::topology::{self, ChainTopology, MeshTopology, VlanChain};

/// A managed version of the Figure 4 / chain VPN testbed.
pub struct ManagedChain<C: ManagementChannel> {
    /// The managed network (data plane + agents + NM + channel).
    pub mn: ManagedNetwork<C>,
    /// Host in customer site 1.
    pub host1: DeviceId,
    /// Customer router at site 1 (unmanaged by the ISP's NM).
    pub customer1: DeviceId,
    /// The ISP core routers, in path order.
    pub core: Vec<DeviceId>,
    /// Customer router at site 2 (unmanaged).
    pub customer2: DeviceId,
    /// Host in customer site 2.
    pub host2: DeviceId,
    /// Second customer host pair (dual chains only): a host in 10.0.3.0/24
    /// behind customer router 1 and one in 10.0.4.0/24 behind customer
    /// router 2 — the endpoints of a second concurrent VPN goal.
    pub second_pair: Option<(DeviceId, DeviceId)>,
    /// Fan-out customer host pairs (fan-out chains only): pair `k`'s hosts
    /// live in the subnets of [`topology::fanout_pair_subnets`]`(k)` behind
    /// the shared customer routers — the endpoints of the k-th concurrent
    /// VPN goal, with real end-to-end traffic for every goal.
    pub fanout: Vec<(DeviceId, DeviceId)>,
    /// Monotonic probe payload counter (each diagnosis probe is distinct).
    probe_seq: u64,
}

/// Build a managed ISP chain with `n` core routers using the out-of-band
/// management channel.  `n = 3` is the paper's Figure 4 testbed.
pub fn managed_chain(n: usize) -> ManagedChain<OutOfBandChannel> {
    managed_chain_with(n, OutOfBandChannel::new())
}

/// Build a managed ISP chain with a second customer pair behind the same
/// customer routers (see [`topology::isp_chain_dual`]) — the multi-goal
/// testbed: two VPN goals between the same customer-facing interfaces for
/// different site classes, sharing the ISP core modules.
pub fn managed_dual_chain(n: usize) -> ManagedChain<OutOfBandChannel> {
    managed_from_topology(topology::isp_chain_dual(n), n, OutOfBandChannel::new())
}

/// Build a managed ISP chain with `pairs` fan-out customer host pairs (see
/// [`topology::isp_chain_fanout`]) — the autonomic-loop testbed: one VPN
/// goal per pair between the same customer-facing interfaces, every goal
/// backed by real hosts so per-goal health probes and flow-attributed
/// diagnosis run on genuine end-to-end traffic.
pub fn managed_fanout_chain(n: usize, pairs: usize) -> ManagedChain<OutOfBandChannel> {
    managed_fanout_chain_with(n, pairs, OutOfBandChannel::new())
}

/// [`managed_fanout_chain`] over an arbitrary management channel — e.g. the
/// in-band flooding channel, whose per-message fan-out the loop bench's
/// message-budget row measures.
pub fn managed_fanout_chain_with<C: ManagementChannel>(
    n: usize,
    pairs: usize,
    channel: C,
) -> ManagedChain<C> {
    managed_from_topology(topology::isp_chain_fanout(n, pairs), n, channel)
}

/// Build a managed ISP chain over an arbitrary management channel.
pub fn managed_chain_with<C: ManagementChannel>(n: usize, channel: C) -> ManagedChain<C> {
    managed_from_topology(topology::isp_chain(n), n, channel)
}

fn managed_from_topology<C: ManagementChannel>(
    topo: ChainTopology,
    n: usize,
    channel: C,
) -> ManagedChain<C> {
    let ChainTopology {
        mut net,
        host1,
        customer1,
        core,
        customer2,
        host2,
        second_pair,
        fanout_pairs,
        ..
    } = topo;

    // The NM's management station.  The out-of-band channel needs no
    // physical attachment (direct mailboxes), but the in-band variant floods
    // over real links, so the station is plugged into the ingress router's
    // free port — the paper's "NM is attached somewhere in the network".
    let station = net.add_device(Device::new("NMStation", DeviceRole::Host, 1));
    net.connect(
        (station, PortId(0)),
        (core[0], PortId(1)),
        LinkProperties::lan(),
    )
    .expect("the first core router's previous-hop port is free");

    let mut mn = ManagedNetwork::new(net, station, channel);
    for (i, id) in core.iter().enumerate() {
        let device = mn.net.device(*id).expect("core router exists");
        let plan = if i == 0 || i == n - 1 {
            RouterPlan::edge(0, device_core_ports(i, n))
        } else {
            RouterPlan::core(device_core_ports(i, n))
        };
        let agent = build_router_agent(device, &plan);
        mn.add_agent(agent);
    }
    ManagedChain {
        mn,
        host1,
        customer1,
        core,
        customer2,
        host2,
        second_pair,
        fanout: fanout_pairs,
        probe_seq: 0,
    }
}

/// Port plan used by `netsim::topology::isp_chain`: port 0 customer-facing,
/// port 1 towards the previous core router, port 2 towards the next.
fn device_core_ports(i: usize, n: usize) -> Vec<u32> {
    let mut ports = Vec::new();
    if i > 0 {
        ports.push(1);
    }
    if i < n - 1 {
        ports.push(2);
    }
    ports
}

/// The paper's high-level VPN goal between the customer-facing ETH modules
/// (port 0) of two edge routers — shared by the chain and mesh testbeds.
fn vpn_goal_between<C: ManagementChannel>(
    mn: &ManagedNetwork<C>,
    ingress: DeviceId,
    egress: DeviceId,
) -> ConnectivityGoal {
    let from = mn
        .nm
        .find_eth_on_port(ingress, PortId(0))
        .expect("ingress customer-facing ETH module (run discover() first)");
    let to = mn
        .nm
        .find_eth_on_port(egress, PortId(0))
        .expect("egress customer-facing ETH module (run discover() first)");
    ConnectivityGoal::vpn(from, to)
        .resolve("C1-S1", "10.0.1.0/24")
        .resolve("C1-S2", "10.0.2.0/24")
        .resolve("S1-gateway", "192.168.0.1")
        .resolve("S2-gateway", "192.168.2.1")
}

/// Rewrite a base VPN goal onto fan-out pair `k`'s site classes and subnets.
fn fanout_classes(mut goal: ConnectivityGoal, k: usize) -> ConnectivityGoal {
    let (s1, s2) = topology::fanout_pair_subnets(k);
    goal.src_class = format!("F{k}-S1");
    goal.dst_class = format!("F{k}-S2");
    goal.resolved.remove("C1-S1");
    goal.resolved.remove("C1-S2");
    goal.resolved.insert(format!("F{k}-S1"), s1.to_string());
    goal.resolved.insert(format!("F{k}-S2"), s2.to_string());
    goal
}

/// One end-to-end datagram between a fan-out host pair; reports delivery.
fn probe_host_pair<C: ManagementChannel>(
    mn: &mut ManagedNetwork<C>,
    src: DeviceId,
    dst: DeviceId,
    dst_ip: std::net::Ipv4Addr,
    payload: Vec<u8>,
) -> bool {
    mn.net
        .send_udp(src, dst_ip, 40000, 7000, &payload)
        .expect("fan-out host exists");
    mn.net.run_to_quiescence(100_000);
    mn.net
        .device_mut(dst)
        .map(|d| d.take_delivered().iter().any(|p| p.payload == payload))
        .unwrap_or(false)
}

impl<C: ManagementChannel> ManagedChain<C> {
    /// Run the announce + discovery phase.
    pub fn discover(&mut self) {
        self.mn.announce_all();
        self.mn.discover();
    }

    /// The paper's high-level VPN goal: connectivity between the customer
    /// facing interfaces of the first and last core router for traffic
    /// between customer-1 site 1 and site 2.
    pub fn vpn_goal(&self) -> ConnectivityGoal {
        let ingress = *self.core.first().expect("at least one core router");
        let egress = *self.core.last().expect("at least one core router");
        vpn_goal_between(&self.mn, ingress, egress)
    }

    /// The second customer's VPN goal (dual chains): the same customer
    /// facing interfaces, a different pair of site classes (`C2-S1` =
    /// 10.0.3.0/24, `C2-S2` = 10.0.4.0/24).  Submitted alongside
    /// [`Self::vpn_goal`] it exercises concurrent goals sharing the ISP
    /// core modules.
    pub fn vpn_goal2(&self) -> ConnectivityGoal {
        let mut goal = self.vpn_goal();
        goal.src_class = "C2-S1".to_string();
        goal.dst_class = "C2-S2".to_string();
        goal.resolved.remove("C1-S1");
        goal.resolved.remove("C1-S2");
        goal.resolved
            .insert("C2-S1".to_string(), "10.0.3.0/24".to_string());
        goal.resolved
            .insert("C2-S2".to_string(), "10.0.4.0/24".to_string());
        goal
    }

    /// The `k`-th fan-out pair's VPN goal (fan-out chains): the same
    /// customer-facing interfaces as [`Self::vpn_goal`], site classes
    /// `F<k>-S1`/`F<k>-S2` resolved to the pair's subnets.
    pub fn fanout_goal(&self, k: usize) -> ConnectivityGoal {
        assert!(k < self.fanout.len(), "fan-out pair {k} does not exist");
        fanout_classes(self.vpn_goal(), k)
    }

    /// The `k`-th fan-out pair's probe endpoints: `(source host,
    /// destination host, destination address)` — what the autonomic loop
    /// registers alongside the goal so it can drive per-goal end-to-end
    /// traffic.
    pub fn fanout_probe(&self, k: usize) -> (DeviceId, DeviceId, std::net::Ipv4Addr) {
        let (src, dst) = self.fanout[k];
        let (_, dst_ip) = topology::fanout_pair_hosts(k);
        (src, dst, dst_ip)
    }

    /// One end-to-end probe for the `k`-th fan-out pair; returns whether it
    /// was delivered.
    pub fn probe_pair(&mut self, k: usize) -> bool {
        let (src, dst, dst_ip) = self.fanout_probe(k);
        self.probe_seq += 1;
        let payload = format!("fan{k}-probe-{}", self.probe_seq).into_bytes();
        probe_host_pair(&mut self.mn, src, dst, dst_ip, payload)
    }

    /// Send a customer datagram from site 1 to site 2 and report whether it
    /// arrived, together with the encapsulations observed inside the ISP.
    pub fn send_site1_to_site2(&mut self, payload: &[u8]) -> (bool, Vec<String>) {
        self.send_between(self.host1, "10.0.2.5", payload)
    }

    /// Send a customer datagram from site 2 to site 1.
    pub fn send_site2_to_site1(&mut self, payload: &[u8]) -> (bool, Vec<String>) {
        self.send_between(self.host2, "10.0.1.5", payload)
    }

    /// One end-to-end diagnosis probe (site 1 → site 2) with a distinct
    /// payload; returns whether it was delivered.  This is the probe closure
    /// the `conman-diagnose` Diagnoser/Healer drive.
    pub fn probe(&mut self) -> bool {
        self.probe_seq += 1;
        let payload = format!("diag-probe-{}", self.probe_seq).into_bytes();
        self.send_site1_to_site2(&payload).0
    }

    /// One end-to-end probe for the second customer pair (dual chains):
    /// host 10.0.3.5 → 10.0.4.5.  Panics unless built with
    /// [`managed_dual_chain`].
    pub fn probe2(&mut self) -> bool {
        let (host3, host4) = self.second_pair.expect("dual chain");
        self.probe_seq += 1;
        let payload = format!("diag2-probe-{}", self.probe_seq).into_bytes();
        self.mn
            .net
            .send_udp(host3, "10.0.4.5".parse().unwrap(), 40000, 7000, &payload)
            .expect("second-pair host exists");
        self.mn.net.run_to_quiescence(100_000);
        self.mn
            .net
            .device_mut(host4)
            .map(|d| d.take_delivered().iter().any(|p| p.payload == payload))
            .unwrap_or(false)
    }

    /// A self-contained probe closure for the diagnosis layer: captures the
    /// site hosts by id (not the testbed), so it can be handed to
    /// `Diagnoser::diagnose` / `Healer::heal` alongside `&mut self.mn`.
    pub fn probe_fn(&self) -> impl FnMut(&mut ManagedNetwork<C>) -> bool {
        Self::probe_between(self.host1, self.host2, "10.0.2.5")
    }

    /// A probe closure for the second customer pair (dual chains).
    pub fn probe2_fn(&self) -> impl FnMut(&mut ManagedNetwork<C>) -> bool {
        let (host3, host4) = self.second_pair.expect("dual chain");
        Self::probe_between(host3, host4, "10.0.4.5")
    }

    fn probe_between(
        src: DeviceId,
        dst: DeviceId,
        dst_ip: &str,
    ) -> impl FnMut(&mut ManagedNetwork<C>) -> bool {
        let dst_ip: std::net::Ipv4Addr = dst_ip.parse().unwrap();
        let mut seq = 0u64;
        move |mn: &mut ManagedNetwork<C>| {
            seq += 1;
            let payload = format!("diag-fn-{src}-{seq}").into_bytes();
            mn.net
                .send_udp(src, dst_ip, 40000, 7000, &payload)
                .expect("site host exists");
            mn.net.run_to_quiescence(100_000);
            mn.net
                .device_mut(dst)
                .map(|d| d.take_delivered().iter().any(|p| p.payload == payload))
                .unwrap_or(false)
        }
    }

    /// The core link between `core[i]` and `core[i + 1]` — the usual target
    /// of link-cut/flap/loss fault injection.
    pub fn core_link(&self, i: usize) -> Option<netsim::link::LinkId> {
        let a = *self.core.get(i)?;
        let b = *self.core.get(i + 1)?;
        self.mn.net.link_between(a, b)
    }

    /// The modules the NM discovered on a core router, by kind — handy for
    /// asserting which module a fault report blames.
    pub fn core_module(&self, i: usize, kind: &ModuleKind) -> Option<conman_core::ids::ModuleRef> {
        self.mn.nm.find_module(*self.core.get(i)?, kind)
    }

    fn send_between(&mut self, from: DeviceId, dst: &str, payload: &[u8]) -> (bool, Vec<String>) {
        let dst_host = if dst == "10.0.2.5" {
            self.host2
        } else {
            self.host1
        };
        self.mn.net.clear_trace();
        self.mn
            .net
            .send_udp(from, dst.parse().unwrap(), 40000, 7000, payload)
            .expect("hosts exist");
        self.mn.net.run_to_quiescence(100_000);
        let delivered = self
            .mn
            .net
            .device_mut(dst_host)
            .unwrap()
            .take_delivered()
            .iter()
            .any(|d| d.payload == payload);
        let ingress = self.core[0];
        let paths = self.mn.net.protocol_paths_from(ingress);
        (delivered, paths)
    }
}

/// A managed version of the multipath mesh / ring testbeds
/// ([`netsim::topology::isp_mesh_fanout`] / [`isp_ring_fanout`]): the first
/// topology family on which link-suspect-aware planning has a genuine
/// alternative to reroute onto when diagnosis blames a core link.
pub struct ManagedMesh<C: ManagementChannel> {
    /// The managed network (data plane + agents + NM + channel).
    pub mn: ManagedNetwork<C>,
    /// Host in customer site 1.
    pub host1: DeviceId,
    /// Customer router at site 1 (unmanaged by the ISP's NM).
    pub customer1: DeviceId,
    /// ISP ingress edge router.
    pub ingress: DeviceId,
    /// Upper core row (meshes; empty on rings).
    pub upper: Vec<DeviceId>,
    /// Lower core row (meshes; empty on rings).
    pub lower: Vec<DeviceId>,
    /// Ring core routers in cycle order (rings; empty on meshes).
    pub ring: Vec<DeviceId>,
    /// ISP egress edge router.
    pub egress: DeviceId,
    /// Customer router at site 2 (unmanaged).
    pub customer2: DeviceId,
    /// Host in customer site 2.
    pub host2: DeviceId,
    /// Fan-out customer host pairs — the endpoints of the k-th concurrent
    /// VPN goal, with real end-to-end traffic for every goal.
    pub fanout: Vec<(DeviceId, DeviceId)>,
    /// Every ISP router in the topology's own ordering
    /// ([`MeshTopology::routers`], captured at build time so the two crates
    /// cannot drift).
    routers: Vec<DeviceId>,
    /// Monotonic probe payload counter (each probe is distinct).
    probe_seq: u64,
}

/// Build a managed 2×k mesh with `pairs` fan-out customer host pairs over
/// the out-of-band management channel.
pub fn managed_mesh_fanout(k: usize, pairs: usize) -> ManagedMesh<OutOfBandChannel> {
    managed_mesh_fanout_with(k, pairs, OutOfBandChannel::new())
}

/// [`managed_mesh_fanout`] over an arbitrary management channel.
pub fn managed_mesh_fanout_with<C: ManagementChannel>(
    k: usize,
    pairs: usize,
    channel: C,
) -> ManagedMesh<C> {
    managed_from_mesh(topology::isp_mesh_fanout(k, pairs), channel)
}

/// Build a managed core ring (edges attached on opposite arcs) with `pairs`
/// fan-out customer host pairs.
pub fn managed_ring_fanout(k: usize, pairs: usize) -> ManagedMesh<OutOfBandChannel> {
    managed_from_mesh(topology::isp_ring_fanout(k, pairs), OutOfBandChannel::new())
}

fn managed_from_mesh<C: ManagementChannel>(topo: MeshTopology, channel: C) -> ManagedMesh<C> {
    let routers = topo.routers();
    let MeshTopology {
        mut net,
        host1,
        customer1,
        ingress,
        upper,
        lower,
        ring,
        egress,
        customer2,
        host2,
        fanout_pairs,
        core_ports,
    } = topo;

    // The NM's management station hangs off the ingress edge's free port,
    // like the chain's (the in-band channel floods over real links, so the
    // station needs a physical attachment).
    let station = net.add_device(Device::new("NMStation", DeviceRole::Host, 1));
    net.connect(
        (station, PortId(0)),
        (ingress, PortId(1)),
        LinkProperties::lan(),
    )
    .expect("the ingress edge keeps port 1 free for the station");

    let mut mn = ManagedNetwork::new(net, station, channel);
    for (&router, ports) in &core_ports {
        let device = mn.net.device(router).expect("ISP router exists");
        let plan = if router == ingress || router == egress {
            RouterPlan::edge(0, ports.clone())
        } else {
            RouterPlan::core(ports.clone())
        };
        let agent = build_router_agent(device, &plan);
        mn.add_agent(agent);
    }
    ManagedMesh {
        mn,
        host1,
        customer1,
        ingress,
        upper,
        lower,
        ring,
        egress,
        customer2,
        host2,
        fanout: fanout_pairs,
        routers,
        probe_seq: 0,
    }
}

impl<C: ManagementChannel> ManagedMesh<C> {
    /// Run the announce + discovery phase.
    pub fn discover(&mut self) {
        self.mn.announce_all();
        self.mn.discover();
    }

    /// The VPN goal between the edges' customer-facing interfaces (the same
    /// high-level goal as the chain's — the topology underneath is what
    /// changed).
    pub fn vpn_goal(&self) -> ConnectivityGoal {
        vpn_goal_between(&self.mn, self.ingress, self.egress)
    }

    /// The `k`-th fan-out pair's VPN goal.
    pub fn fanout_goal(&self, k: usize) -> ConnectivityGoal {
        assert!(k < self.fanout.len(), "fan-out pair {k} does not exist");
        fanout_classes(self.vpn_goal(), k)
    }

    /// The `k`-th fan-out pair's probe endpoints: `(source host,
    /// destination host, destination address)`.
    pub fn fanout_probe(&self, k: usize) -> (DeviceId, DeviceId, std::net::Ipv4Addr) {
        let (src, dst) = self.fanout[k];
        let (_, dst_ip) = topology::fanout_pair_hosts(k);
        (src, dst, dst_ip)
    }

    /// One end-to-end probe for the `k`-th fan-out pair; returns whether it
    /// was delivered.
    pub fn probe_pair(&mut self, k: usize) -> bool {
        let (src, dst, dst_ip) = self.fanout_probe(k);
        self.probe_seq += 1;
        let payload = format!("mesh{k}-probe-{}", self.probe_seq).into_bytes();
        probe_host_pair(&mut self.mn, src, dst, dst_ip, payload)
    }

    /// All ISP routers (edges + core rows / ring), in the topology's order.
    pub fn routers(&self) -> &[DeviceId] {
        &self.routers
    }

    /// The first core-to-core hop of a goal's applied path, in path order —
    /// the natural target for a link-cut fault that a multipath repair must
    /// route around.  Falls back to any ISP-to-ISP hop (edge included) when
    /// the path has no core-to-core hop.
    pub fn applied_core_hop(&self, id: conman_core::nm::GoalId) -> Option<(DeviceId, DeviceId)> {
        let applied = self.mn.goals.get(id).and_then(|r| r.applied())?;
        let devices = applied.path.devices();
        let routers: std::collections::BTreeSet<DeviceId> = self.routers.iter().copied().collect();
        let core: std::collections::BTreeSet<DeviceId> = routers
            .iter()
            .copied()
            .filter(|d| *d != self.ingress && *d != self.egress)
            .collect();
        let hop = |set: &std::collections::BTreeSet<DeviceId>| {
            devices
                .windows(2)
                .find(|w| set.contains(&w[0]) && set.contains(&w[1]))
                .map(|w| (w[0], w[1]))
        };
        hop(&core).or_else(|| hop(&routers))
    }

    /// The simulator link between two adjacent ISP routers.
    pub fn link(&self, a: DeviceId, b: DeviceId) -> Option<netsim::link::LinkId> {
        self.mn.net.link_between(a, b)
    }
}

/// A managed version of the Figure 9 VLAN-tunnelling testbed.
pub struct ManagedVlanChain<C: ManagementChannel> {
    /// The managed network.
    pub mn: ManagedNetwork<C>,
    /// Customer router at site 1.
    pub customer1: DeviceId,
    /// Provider switches in path order.
    pub switches: Vec<DeviceId>,
    /// Customer router at site 2.
    pub customer2: DeviceId,
}

/// Build a managed VLAN chain with `n` provider switches.
pub fn managed_vlan_chain(n: usize) -> ManagedVlanChain<OutOfBandChannel> {
    let VlanChain {
        mut net,
        customer1,
        switches,
        customer2,
    } = topology::vlan_chain(n);
    let station = net.add_device(Device::new("NMStation", DeviceRole::Host, 1));
    let mut mn = ManagedNetwork::new(net, station, OutOfBandChannel::new());
    for (i, id) in switches.iter().enumerate() {
        let device = mn.net.device(*id).expect("switch exists");
        let mut ports = Vec::new();
        if i == 0 || i == n - 1 {
            ports.push(0);
        }
        if i > 0 {
            ports.push(1);
        }
        if i < n - 1 {
            ports.push(2);
        }
        let agent = build_vlan_switch_agent(device, &ports);
        mn.add_agent(agent);
    }
    ManagedVlanChain {
        mn,
        customer1,
        switches,
        customer2,
    }
}

impl<C: ManagementChannel> ManagedVlanChain<C> {
    /// Run the announce + discovery phase.
    pub fn discover(&mut self) {
        self.mn.announce_all();
        self.mn.discover();
    }

    /// The layer-2 VPN goal between the customer-facing ports of the first
    /// and last provider switch.
    pub fn vlan_goal(&self) -> ConnectivityGoal {
        let from = self
            .mn
            .nm
            .find_eth_on_port(self.switches[0], PortId(0))
            .expect("ingress customer port ETH module (run discover() first)");
        let to = self
            .mn
            .nm
            .find_eth_on_port(*self.switches.last().unwrap(), PortId(0))
            .expect("egress customer port ETH module");
        let mut goal = ConnectivityGoal::vpn(from, to).resolve("vlan-name", "C1");
        goal.l2_only = true;
        goal
    }

    /// Send a customer frame end to end and report delivery plus the
    /// encapsulations seen on the first provider trunk.
    pub fn send_customer_frame(&mut self, payload: &[u8]) -> (bool, Vec<String>) {
        self.mn.net.clear_trace();
        self.mn
            .net
            .send_udp(
                self.customer1,
                "10.0.0.2".parse().unwrap(),
                1111,
                2222,
                payload,
            )
            .expect("customer exists");
        self.mn.net.run_to_quiescence(100_000);
        let delivered = self
            .mn
            .net
            .device_mut(self.customer2)
            .unwrap()
            .take_delivered()
            .iter()
            .any(|d| d.payload == payload);
        let paths = self.mn.net.protocol_paths_from(self.switches[0]);
        (delivered, paths)
    }
}

/// A managed version of the Figure 2 GRE-tunnel testbed.
pub struct ManagedFigure2<C: ManagementChannel> {
    /// The managed network.
    pub mn: ManagedNetwork<C>,
    /// End device A.
    pub a: DeviceId,
    /// End device B.
    pub b: DeviceId,
    /// The layer-2 switch C.
    pub c: DeviceId,
    /// The router D.
    pub d: DeviceId,
}

/// Build the managed Figure 2 testbed (hosts A/B, switch C, router D).
pub fn managed_figure2() -> ManagedFigure2<OutOfBandChannel> {
    let topology::Figure2Testbed {
        mut net,
        a,
        b,
        c,
        d,
    } = topology::figure2();
    let station = net.add_device(Device::new("NMStation", DeviceRole::Host, 1));
    let mut mn = ManagedNetwork::new(net, station, OutOfBandChannel::new());
    for (id, domain) in [(a, "overlayA"), (b, "overlayA")] {
        let device = mn.net.device(id).expect("host exists");
        mn.add_agent(build_tunnel_host_agent(device, 0, domain));
    }
    {
        let device = mn.net.device(c).expect("switch exists");
        mn.add_agent(crate::builder::build_l2_switch_agent(device));
    }
    {
        let device = mn.net.device(d).expect("router exists");
        mn.add_agent(build_plain_router_agent(device, &[0, 1]));
    }
    ManagedFigure2 { mn, a, b, c, d }
}

impl<C: ManagementChannel> ManagedFigure2<C> {
    /// Run the announce + discovery phase.
    pub fn discover(&mut self) {
        self.mn.announce_all();
        self.mn.discover();
    }

    /// The Figure 2 goal: a tunnel between the overlay IP modules of A and B,
    /// expressed as connectivity between their ETH modules for overlay
    /// traffic.
    pub fn tunnel_goal(&self) -> ConnectivityGoal {
        let from = self
            .mn
            .nm
            .find_module(self.a, &ModuleKind::Eth)
            .expect("ETH module on A");
        let to = self
            .mn
            .nm
            .find_module(self.b, &ModuleKind::Eth)
            .expect("ETH module on B");
        let mut goal = ConnectivityGoal::vpn(from, to);
        goal.traffic_domain = "overlayA".to_string();
        goal.resolved
            .insert("C1-S1".into(), "192.168.3.1/32".into());
        goal.resolved
            .insert("C1-S2".into(), "192.168.3.2/32".into());
        goal.resolved
            .insert("S1-gateway".into(), "192.168.3.1".into());
        goal.resolved
            .insert("S2-gateway".into(), "192.168.3.2".into());
        goal
    }
}
