//! Managed testbeds: the paper's experimental set-ups with CONMan agents
//! attached and an NM ready to manage them.
//!
//! The NM is hosted on a dedicated management station (a device with no data
//! plane role), mirroring the paper's separate management machine; devices
//! reach it over the management channel (out-of-band by default).

use crate::builder::{
    build_plain_router_agent, build_router_agent, build_tunnel_host_agent, build_vlan_switch_agent,
    RouterPlan,
};
use conman_core::ids::ModuleKind;
use conman_core::nm::ConnectivityGoal;
use conman_core::runtime::ManagedNetwork;
use mgmt_channel::{ManagementChannel, OutOfBandChannel};
use netsim::device::{Device, DeviceId, DeviceRole, PortId};
use netsim::topology::{self, ChainTopology, VlanChain};

/// A managed version of the Figure 4 / chain VPN testbed.
pub struct ManagedChain<C: ManagementChannel> {
    /// The managed network (data plane + agents + NM + channel).
    pub mn: ManagedNetwork<C>,
    /// Host in customer site 1.
    pub host1: DeviceId,
    /// Customer router at site 1 (unmanaged by the ISP's NM).
    pub customer1: DeviceId,
    /// The ISP core routers, in path order.
    pub core: Vec<DeviceId>,
    /// Customer router at site 2 (unmanaged).
    pub customer2: DeviceId,
    /// Host in customer site 2.
    pub host2: DeviceId,
}

/// Build a managed ISP chain with `n` core routers using the out-of-band
/// management channel.  `n = 3` is the paper's Figure 4 testbed.
pub fn managed_chain(n: usize) -> ManagedChain<OutOfBandChannel> {
    managed_chain_with(n, OutOfBandChannel::new())
}

/// Build a managed ISP chain over an arbitrary management channel.
pub fn managed_chain_with<C: ManagementChannel>(n: usize, channel: C) -> ManagedChain<C> {
    let ChainTopology {
        mut net,
        host1,
        customer1,
        core,
        customer2,
        host2,
        ..
    } = topology::isp_chain(n);

    // The NM's management station: present in the network but without any
    // data-plane links (the out-of-band channel does not need them).
    let station = net.add_device(Device::new("NMStation", DeviceRole::Host, 1));

    let mut mn = ManagedNetwork::new(net, station, channel);
    for (i, id) in core.iter().enumerate() {
        let device = mn.net.device(*id).expect("core router exists");
        let plan = if i == 0 || i == n - 1 {
            RouterPlan::edge(0, device_core_ports(i, n))
        } else {
            RouterPlan::core(device_core_ports(i, n))
        };
        let agent = build_router_agent(device, &plan);
        mn.add_agent(agent);
    }
    ManagedChain {
        mn,
        host1,
        customer1,
        core,
        customer2,
        host2,
    }
}

/// Port plan used by `netsim::topology::isp_chain`: port 0 customer-facing,
/// port 1 towards the previous core router, port 2 towards the next.
fn device_core_ports(i: usize, n: usize) -> Vec<u32> {
    let mut ports = Vec::new();
    if i > 0 {
        ports.push(1);
    }
    if i < n - 1 {
        ports.push(2);
    }
    ports
}

impl<C: ManagementChannel> ManagedChain<C> {
    /// Run the announce + discovery phase.
    pub fn discover(&mut self) {
        self.mn.announce_all();
        self.mn.discover();
    }

    /// The paper's high-level VPN goal: connectivity between the customer
    /// facing interfaces of the first and last core router for traffic
    /// between customer-1 site 1 and site 2.
    pub fn vpn_goal(&self) -> ConnectivityGoal {
        let ingress = self.core.first().expect("at least one core router");
        let egress = self.core.last().expect("at least one core router");
        let from = self
            .mn
            .nm
            .find_eth_on_port(*ingress, PortId(0))
            .expect("ingress customer-facing ETH module (run discover() first)");
        let to = self
            .mn
            .nm
            .find_eth_on_port(*egress, PortId(0))
            .expect("egress customer-facing ETH module (run discover() first)");
        ConnectivityGoal::vpn(from, to)
            .resolve("C1-S1", "10.0.1.0/24")
            .resolve("C1-S2", "10.0.2.0/24")
            .resolve("S1-gateway", "192.168.0.1")
            .resolve("S2-gateway", "192.168.2.1")
    }

    /// Send a customer datagram from site 1 to site 2 and report whether it
    /// arrived, together with the encapsulations observed inside the ISP.
    pub fn send_site1_to_site2(&mut self, payload: &[u8]) -> (bool, Vec<String>) {
        self.send_between(self.host1, "10.0.2.5", payload)
    }

    /// Send a customer datagram from site 2 to site 1.
    pub fn send_site2_to_site1(&mut self, payload: &[u8]) -> (bool, Vec<String>) {
        self.send_between(self.host2, "10.0.1.5", payload)
    }

    fn send_between(&mut self, from: DeviceId, dst: &str, payload: &[u8]) -> (bool, Vec<String>) {
        let dst_host = if dst == "10.0.2.5" { self.host2 } else { self.host1 };
        self.mn.net.clear_trace();
        self.mn
            .net
            .send_udp(from, dst.parse().unwrap(), 40000, 7000, payload)
            .expect("hosts exist");
        self.mn.net.run_to_quiescence(100_000);
        let delivered = self
            .mn
            .net
            .device_mut(dst_host)
            .unwrap()
            .take_delivered()
            .iter()
            .any(|d| d.payload == payload);
        let ingress = self.core[0];
        let paths = self.mn.net.protocol_paths_from(ingress);
        (delivered, paths)
    }
}

/// A managed version of the Figure 9 VLAN-tunnelling testbed.
pub struct ManagedVlanChain<C: ManagementChannel> {
    /// The managed network.
    pub mn: ManagedNetwork<C>,
    /// Customer router at site 1.
    pub customer1: DeviceId,
    /// Provider switches in path order.
    pub switches: Vec<DeviceId>,
    /// Customer router at site 2.
    pub customer2: DeviceId,
}

/// Build a managed VLAN chain with `n` provider switches.
pub fn managed_vlan_chain(n: usize) -> ManagedVlanChain<OutOfBandChannel> {
    let VlanChain {
        mut net,
        customer1,
        switches,
        customer2,
    } = topology::vlan_chain(n);
    let station = net.add_device(Device::new("NMStation", DeviceRole::Host, 1));
    let mut mn = ManagedNetwork::new(net, station, OutOfBandChannel::new());
    for (i, id) in switches.iter().enumerate() {
        let device = mn.net.device(*id).expect("switch exists");
        let mut ports = Vec::new();
        if i == 0 || i == n - 1 {
            ports.push(0);
        }
        if i > 0 {
            ports.push(1);
        }
        if i < n - 1 {
            ports.push(2);
        }
        let agent = build_vlan_switch_agent(device, &ports);
        mn.add_agent(agent);
    }
    ManagedVlanChain {
        mn,
        customer1,
        switches,
        customer2,
    }
}

impl<C: ManagementChannel> ManagedVlanChain<C> {
    /// Run the announce + discovery phase.
    pub fn discover(&mut self) {
        self.mn.announce_all();
        self.mn.discover();
    }

    /// The layer-2 VPN goal between the customer-facing ports of the first
    /// and last provider switch.
    pub fn vlan_goal(&self) -> ConnectivityGoal {
        let from = self
            .mn
            .nm
            .find_eth_on_port(self.switches[0], PortId(0))
            .expect("ingress customer port ETH module (run discover() first)");
        let to = self
            .mn
            .nm
            .find_eth_on_port(*self.switches.last().unwrap(), PortId(0))
            .expect("egress customer port ETH module");
        let mut goal = ConnectivityGoal::vpn(from, to).resolve("vlan-name", "C1");
        goal.l2_only = true;
        goal
    }

    /// Send a customer frame end to end and report delivery plus the
    /// encapsulations seen on the first provider trunk.
    pub fn send_customer_frame(&mut self, payload: &[u8]) -> (bool, Vec<String>) {
        self.mn.net.clear_trace();
        self.mn
            .net
            .send_udp(self.customer1, "10.0.0.2".parse().unwrap(), 1111, 2222, payload)
            .expect("customer exists");
        self.mn.net.run_to_quiescence(100_000);
        let delivered = self
            .mn
            .net
            .device_mut(self.customer2)
            .unwrap()
            .take_delivered()
            .iter()
            .any(|d| d.payload == payload);
        let paths = self.mn.net.protocol_paths_from(self.switches[0]);
        (delivered, paths)
    }
}

/// A managed version of the Figure 2 GRE-tunnel testbed.
pub struct ManagedFigure2<C: ManagementChannel> {
    /// The managed network.
    pub mn: ManagedNetwork<C>,
    /// End device A.
    pub a: DeviceId,
    /// End device B.
    pub b: DeviceId,
    /// The layer-2 switch C.
    pub c: DeviceId,
    /// The router D.
    pub d: DeviceId,
}

/// Build the managed Figure 2 testbed (hosts A/B, switch C, router D).
pub fn managed_figure2() -> ManagedFigure2<OutOfBandChannel> {
    let topology::Figure2Testbed { mut net, a, b, c, d } = topology::figure2();
    let station = net.add_device(Device::new("NMStation", DeviceRole::Host, 1));
    let mut mn = ManagedNetwork::new(net, station, OutOfBandChannel::new());
    for (id, domain) in [(a, "overlayA"), (b, "overlayA")] {
        let device = mn.net.device(id).expect("host exists");
        mn.add_agent(build_tunnel_host_agent(device, 0, domain));
    }
    {
        let device = mn.net.device(c).expect("switch exists");
        mn.add_agent(crate::builder::build_l2_switch_agent(device));
    }
    {
        let device = mn.net.device(d).expect("router exists");
        mn.add_agent(build_plain_router_agent(device, &[0, 1]));
    }
    ManagedFigure2 { mn, a, b, c, d }
}

impl<C: ManagementChannel> ManagedFigure2<C> {
    /// Run the announce + discovery phase.
    pub fn discover(&mut self) {
        self.mn.announce_all();
        self.mn.discover();
    }

    /// The Figure 2 goal: a tunnel between the overlay IP modules of A and B,
    /// expressed as connectivity between their ETH modules for overlay
    /// traffic.
    pub fn tunnel_goal(&self) -> ConnectivityGoal {
        let from = self
            .mn
            .nm
            .find_module(self.a, &ModuleKind::Eth)
            .expect("ETH module on A");
        let to = self
            .mn
            .nm
            .find_module(self.b, &ModuleKind::Eth)
            .expect("ETH module on B");
        let mut goal = ConnectivityGoal::vpn(from, to);
        goal.traffic_domain = "overlayA".to_string();
        goal.resolved.insert("C1-S1".into(), "192.168.3.1/32".into());
        goal.resolved.insert("C1-S2".into(), "192.168.3.2/32".into());
        goal.resolved.insert("S1-gateway".into(), "192.168.3.1".into());
        goal.resolved.insert("S2-gateway".into(), "192.168.3.2".into());
        goal
    }
}
