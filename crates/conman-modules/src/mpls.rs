//! The MPLS protocol module.
//!
//! Labels are allocated and distributed between adjacent MPLS modules via
//! `conveyMessage`; the NM never sees a label.  The module then installs the
//! ILM / NHLFE / cross-connect entries that the Figure 8(a) script created by
//! hand (`mpls nhlfe add`, `mpls ilm add`, `mpls xc add`).

use conman_core::abstraction::{CounterSnapshot, ModuleAbstraction, SwitchKind};
use conman_core::ids::{ModuleKind, ModuleRef, PipeId};
use conman_core::module::{ModuleCtx, ModuleError, ModuleReaction, ProtocolModule};
use conman_core::primitives::{
    ComponentRef, EnvelopeKind, ModuleActual, ModuleEnvelope, Notification, PipeSpec, SwitchSpec,
};
use netsim::mpls::{IlmEntry, Label, LabelOp, Nhlfe, NhlfeKey};
use netsim::stats::DropReason;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Per-adjacency label state.
#[derive(Debug, Clone, Default)]
struct Adjacency {
    /// Label we allocated for traffic we will receive from this peer.
    in_label: Option<u32>,
    /// Label the peer allocated (we push/swap to it when sending to them).
    out_label: Option<u32>,
    /// The peer's address on the shared link (the NHLFE next hop).
    peer_addr: Option<Ipv4Addr>,
    /// Whether we already sent our half of the exchange.
    sent: bool,
    /// Whether we initiate the exchange (we are the earlier device on the
    /// path).
    initiate: bool,
    peer: Option<ModuleRef>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PipeKind {
    /// Pipe to an IP module above us: the LSP enters/leaves here.
    Access,
    /// Pipe over an ETH module towards an adjacent MPLS module.
    Adjacency,
}

/// Label-plane artifacts one switch rule installed, so `delete` can undo
/// them during self-healing teardown.
#[derive(Debug, Clone, Default)]
struct InstalledLsp {
    nhlfe: Vec<NhlfeKey>,
    xc: Vec<(u16, u32)>,
}

/// The MPLS protocol module.
pub struct MplsModule {
    me: ModuleRef,
    pipes: BTreeMap<PipeId, PipeKind>,
    adjacencies: BTreeMap<PipeId, Adjacency>,
    /// Adjacency pipes indexed by peer module, so matching an incoming
    /// label exchange is O(log pipes) even when hundreds of concurrent
    /// goals run separate LSPs over the same physical adjacency.
    by_peer: BTreeMap<ModuleRef, BTreeSet<PipeId>>,
    /// The subset of [`Self::by_peer`] still missing its peer label.
    unfilled_by_peer: BTreeMap<ModuleRef, BTreeSet<PipeId>>,
    access_pipes: Vec<PipeId>,
    pending_switches: Vec<SwitchSpec>,
    applied: Vec<String>,
    installed: BTreeMap<(PipeId, PipeId), InstalledLsp>,
    next_label: u32,
    notified: bool,
}

impl MplsModule {
    /// Create an MPLS module.  Label allocation is seeded from the device id
    /// so labels are stable and distinct across devices.
    pub fn new(me: ModuleRef) -> Self {
        let next_label = 10_000 + (me.device.as_u64() % 89) as u32 * 100;
        MplsModule {
            me,
            pipes: BTreeMap::new(),
            adjacencies: BTreeMap::new(),
            by_peer: BTreeMap::new(),
            unfilled_by_peer: BTreeMap::new(),
            access_pipes: Vec::new(),
            pending_switches: Vec::new(),
            applied: Vec::new(),
            installed: BTreeMap::new(),
            next_label,
            notified: false,
        }
    }

    fn alloc_label(&mut self) -> u32 {
        self.next_label += 1;
        self.next_label
    }

    fn port_of(ctx: &ModuleCtx, pipe: PipeId) -> Option<u32> {
        ctx.pipe_attr(pipe, "port").and_then(|s| s.parse().ok())
    }

    fn exchange_body(&self, label: u32, addr: Ipv4Addr, reply: bool) -> serde_json::Value {
        serde_json::json!({
            "mpls": {"label": label, "address": addr.to_string(), "reply": reply}
        })
    }

    /// Apply a pending switch rule once the necessary label bindings exist.
    fn try_apply_switch(
        &mut self,
        ctx: &mut ModuleCtx,
        spec: &SwitchSpec,
    ) -> Option<Vec<Notification>> {
        let kinds = (
            self.pipes.get(&spec.in_pipe).copied(),
            self.pipes.get(&spec.out_pipe).copied(),
        );
        let mut notifications = Vec::new();
        match kinds {
            // LSP endpoint: one access pipe (to IP) and one adjacency pipe.
            (Some(PipeKind::Access), Some(PipeKind::Adjacency))
            | (Some(PipeKind::Adjacency), Some(PipeKind::Access)) => {
                let (access, adjacency) = if kinds.0 == Some(PipeKind::Access) {
                    (spec.in_pipe, spec.out_pipe)
                } else {
                    (spec.out_pipe, spec.in_pipe)
                };
                let adj = self.adjacencies.get(&adjacency)?.clone();
                let (Some(in_label), Some(out_label), Some(peer_addr)) =
                    (adj.in_label, adj.out_label, adj.peer_addr)
                else {
                    return None;
                };
                let port = Self::port_of(ctx, adjacency)?;
                let installed = self
                    .installed
                    .entry((spec.in_pipe, spec.out_pipe))
                    .or_default();
                // Outgoing direction: push the peer's label.
                let push_key = ctx.config.mpls.alloc_key();
                ctx.config.mpls.add_nhlfe(Nhlfe {
                    key: push_key,
                    op: LabelOp::Push(Label::new(out_label).expect("20-bit label")),
                    nexthop: peer_addr,
                    out_port: port,
                    mtu: 1500,
                });
                ctx.set_pipe_attr(access, "attach", format!("mpls:{}", push_key.0));
                // Incoming direction: pop our label and hand the packet to
                // the local IP module for routing towards the customer.
                let pop_key = ctx.config.mpls.alloc_key();
                ctx.config.mpls.add_nhlfe(Nhlfe {
                    key: pop_key,
                    op: LabelOp::Pop,
                    nexthop: Ipv4Addr::UNSPECIFIED,
                    out_port: port,
                    mtu: 1500,
                });
                ctx.config.mpls.set_labelspace(port, 0);
                ctx.config.mpls.add_xc(
                    IlmEntry {
                        labelspace: 0,
                        label: Label::new(in_label).expect("20-bit label"),
                    },
                    pop_key,
                );
                installed.nhlfe.extend([push_key, pop_key]);
                installed.xc.push((0, in_label));
                self.applied.push(format!(
                    "endpoint: push {} towards {}, pop {} locally",
                    out_label, peer_addr, in_label
                ));
                // The egress end of the LSP (the endpoint that did not start
                // the label exchange) notifies the NM that the LSP is up.
                if !adj.initiate && !self.notified {
                    self.notified = true;
                    notifications.push(Notification {
                        from: self.me.clone(),
                        body: serde_json::json!({"established": "mpls-lsp"}),
                    });
                }
                Some(notifications)
            }
            // Transit: two adjacency pipes; swap labels in both directions.
            (Some(PipeKind::Adjacency), Some(PipeKind::Adjacency)) => {
                let a = self.adjacencies.get(&spec.in_pipe)?.clone();
                let b = self.adjacencies.get(&spec.out_pipe)?.clone();
                for (from, to, from_pipe, to_pipe) in [
                    (&a, &b, spec.in_pipe, spec.out_pipe),
                    (&b, &a, spec.out_pipe, spec.in_pipe),
                ] {
                    let (Some(in_label), Some(out_label), Some(next)) =
                        (from.in_label, to.out_label, to.peer_addr)
                    else {
                        return None;
                    };
                    let in_port = Self::port_of(ctx, from_pipe)?;
                    let out_port = Self::port_of(ctx, to_pipe)?;
                    let key = ctx.config.mpls.alloc_key();
                    ctx.config.mpls.add_nhlfe(Nhlfe {
                        key,
                        op: LabelOp::Swap(Label::new(out_label).expect("20-bit label")),
                        nexthop: next,
                        out_port,
                        mtu: 1500,
                    });
                    ctx.config.mpls.set_labelspace(in_port, 0);
                    ctx.config.mpls.add_xc(
                        IlmEntry {
                            labelspace: 0,
                            label: Label::new(in_label).expect("20-bit label"),
                        },
                        key,
                    );
                    let installed = self
                        .installed
                        .entry((spec.in_pipe, spec.out_pipe))
                        .or_default();
                    installed.nhlfe.push(key);
                    installed.xc.push((0, in_label));
                    self.applied
                        .push(format!("transit: {} -> swap {}", in_label, out_label));
                }
                Some(notifications)
            }
            _ => None,
        }
    }
}

impl ProtocolModule for MplsModule {
    fn reference(&self) -> ModuleRef {
        self.me.clone()
    }

    fn descriptor(&self) -> ModuleAbstraction {
        let mut a = ModuleAbstraction::empty(self.me.clone());
        a.up_connectable = vec![ModuleKind::Ip];
        a.down_connectable = vec![ModuleKind::Eth];
        a.peerable = vec![ModuleKind::Mpls];
        a.switch.kinds = vec![SwitchKind::DownUp, SwitchKind::UpDown, SwitchKind::DownDown];
        a.perf_reporting = vec!["labelled packets forwarded per cross-connect".to_string()];
        // The paper's NM prefers the MPLS path because the abstraction
        // advertises good forwarding bandwidth.
        a.fast_forwarding = true;
        a.perf_enforcement = vec!["label-switched forwarding at line rate".to_string()];
        a
    }

    fn actual(&self, ctx: &ModuleCtx) -> ModuleActual {
        let mut perf = BTreeMap::new();
        perf.insert(
            "nhlfe-entries".to_string(),
            ctx.config.mpls.nhlfe.len() as u64,
        );
        perf.insert(
            "cross-connects".to_string(),
            ctx.config.mpls.xc.len() as u64,
        );
        ModuleActual {
            pipes: self.pipes.keys().copied().collect(),
            switch_rules: self.applied.clone(),
            filters: Vec::new(),
            perf_report: perf,
        }
    }

    fn counters(&self, ctx: &ModuleCtx) -> CounterSnapshot {
        // Labelled packets forwarded per cross-connect: the engine counts
        // label forwarding in the device-wide `forwarded` tally; unmatched
        // labels are this module's fault domain.
        let mut snap = CounterSnapshot::empty(self.me.clone());
        snap.totals.rx_packets = ctx.stats.forwarded;
        snap.totals.tx_packets = ctx.stats.forwarded;
        if let Some(n) = ctx.stats.drops.get(&DropReason::NoLabel) {
            snap.totals.drops += *n;
            snap.drop_breakdown
                .insert(format!("{:?}", DropReason::NoLabel), *n);
        }
        snap
    }

    fn delete(
        &mut self,
        ctx: &mut ModuleCtx,
        component: &ComponentRef,
    ) -> Result<ModuleReaction, ModuleError> {
        match component {
            ComponentRef::SwitchRule(module, in_pipe, out_pipe) if *module == self.me => {
                if let Some(installed) = self.installed.remove(&(*in_pipe, *out_pipe)) {
                    for key in &installed.nhlfe {
                        ctx.config.mpls.remove_nhlfe(*key);
                    }
                    for (labelspace, label) in &installed.xc {
                        if let Some(label) = Label::new(*label) {
                            ctx.config.mpls.remove_xc(IlmEntry {
                                labelspace: *labelspace,
                                label,
                            });
                        }
                    }
                }
                self.pending_switches
                    .retain(|s| !(s.in_pipe == *in_pipe && s.out_pipe == *out_pipe));
            }
            ComponentRef::Pipe(pipe) => {
                self.pipes.remove(pipe);
                if let Some(adj) = self.adjacencies.remove(pipe) {
                    if let Some(peer) = &adj.peer {
                        for index in [&mut self.by_peer, &mut self.unfilled_by_peer] {
                            if let Some(set) = index.get_mut(peer) {
                                set.remove(pipe);
                                if set.is_empty() {
                                    index.remove(peer);
                                }
                            }
                        }
                    }
                }
                self.access_pipes.retain(|p| p != pipe);
                self.pending_switches
                    .retain(|s| s.in_pipe != *pipe && s.out_pipe != *pipe);
                self.notified = false;
            }
            _ => {}
        }
        Ok(ModuleReaction::none())
    }

    fn create_pipe(
        &mut self,
        _ctx: &mut ModuleCtx,
        spec: &PipeSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        if spec.lower == self.me {
            // Pipe to the IP module above: the LSP access point.
            self.pipes.insert(spec.pipe, PipeKind::Access);
            self.access_pipes.push(spec.pipe);
        } else {
            // Pipe over an ETH module towards the adjacent MPLS module.
            self.pipes.insert(spec.pipe, PipeKind::Adjacency);
            if let Some(peer) = spec.peer_upper.clone() {
                self.by_peer
                    .entry(peer.clone())
                    .or_default()
                    .insert(spec.pipe);
                self.unfilled_by_peer
                    .entry(peer)
                    .or_default()
                    .insert(spec.pipe);
            }
            self.adjacencies.insert(
                spec.pipe,
                Adjacency {
                    initiate: spec.initiate,
                    peer: spec.peer_upper.clone(),
                    ..Default::default()
                },
            );
        }
        Ok(ModuleReaction::none())
    }

    fn create_switch(
        &mut self,
        ctx: &mut ModuleCtx,
        spec: &SwitchSpec,
    ) -> Result<ModuleReaction, ModuleError> {
        let mut reaction = ModuleReaction::none();
        match self.try_apply_switch(ctx, spec) {
            Some(n) => reaction.notifications.extend(n),
            None => self.pending_switches.push(spec.clone()),
        }
        Ok(reaction)
    }

    fn handle_envelope(
        &mut self,
        ctx: &mut ModuleCtx,
        env: &ModuleEnvelope,
    ) -> Result<ModuleReaction, ModuleError> {
        let Some(m) = env.body.get("mpls") else {
            return Ok(ModuleReaction::none());
        };
        let label = m.get("label").and_then(|v| v.as_u64()).unwrap_or(0) as u32;
        let addr = m
            .get("address")
            .and_then(|v| v.as_str())
            .and_then(|s| s.parse::<Ipv4Addr>().ok());
        let is_reply = m.get("reply").and_then(|v| v.as_bool()).unwrap_or(false);
        // Find the adjacency whose peer sent this.  Concurrent goals run
        // separate LSPs over the same physical adjacency, so several of our
        // adjacency pipes can share a peer module: the exchange in flight
        // belongs to the lowest pipe still missing its peer label (batched
        // passes run many exchanges per peer concurrently, but both sides
        // issue and answer them in ascending pipe — i.e. goal-block —
        // order, so lowest-unfilled matching pairs the per-goal labels
        // correctly).  The peer index makes this O(log pipes).
        let pipe = self
            .unfilled_by_peer
            .get(&env.from)
            .and_then(|pipes| pipes.first().copied())
            .or_else(|| {
                self.by_peer
                    .get(&env.from)
                    .and_then(|pipes| pipes.first().copied())
            });
        let Some(pipe) = pipe else {
            return Ok(ModuleReaction::none());
        };
        let our_label = {
            let adj = self.adjacencies.get(&pipe).expect("adjacency exists");
            adj.in_label
        };
        let our_label = match our_label {
            Some(l) => l,
            None => self.alloc_label(),
        };
        let port = Self::port_of(ctx, pipe);
        let our_addr = port
            .and_then(|p| ctx.config.address_on_port(p))
            .map(|c| c.addr)
            .unwrap_or(Ipv4Addr::UNSPECIFIED);
        let peer = {
            let adj = self.adjacencies.get_mut(&pipe).expect("adjacency exists");
            adj.in_label = Some(our_label);
            adj.out_label = Some(label);
            adj.peer_addr = addr;
            adj.peer.clone()
        };
        if let Some(peer) = peer {
            if let Some(unfilled) = self.unfilled_by_peer.get_mut(&peer) {
                unfilled.remove(&pipe);
                if unfilled.is_empty() {
                    self.unfilled_by_peer.remove(&peer);
                }
            }
        }
        if !is_reply {
            let body = self.exchange_body(our_label, our_addr, true);
            let adj = self.adjacencies.get_mut(&pipe).expect("adjacency exists");
            adj.sent = true;
            return Ok(ModuleReaction::envelope(ModuleEnvelope {
                from: self.me.clone(),
                to: env.from.clone(),
                kind: EnvelopeKind::Convey,
                body,
            }));
        }
        Ok(ModuleReaction::none())
    }

    fn poll(&mut self, ctx: &mut ModuleCtx) -> ModuleReaction {
        let mut reaction = ModuleReaction::none();
        // Initiate label exchanges once the underlying port is known.
        let pipes: Vec<PipeId> = self.adjacencies.keys().copied().collect();
        for pipe in pipes {
            let adj = self
                .adjacencies
                .get(&pipe)
                .expect("adjacency exists")
                .clone();
            if adj.sent || !adj.initiate {
                continue;
            }
            let Some(peer) = adj.peer.clone() else {
                continue;
            };
            let Some(port) = Self::port_of(ctx, pipe) else {
                continue;
            };
            let our_addr = ctx
                .config
                .address_on_port(port)
                .map(|c| c.addr)
                .unwrap_or(Ipv4Addr::UNSPECIFIED);
            let label = match adj.in_label {
                Some(l) => l,
                None => self.alloc_label(),
            };
            {
                let adj = self.adjacencies.get_mut(&pipe).expect("adjacency exists");
                adj.in_label = Some(label);
                adj.sent = true;
            }
            reaction.envelopes.push(ModuleEnvelope {
                from: self.me.clone(),
                to: peer,
                kind: EnvelopeKind::Convey,
                body: self.exchange_body(label, our_addr, false),
            });
        }
        // Retry pending switch rules.
        let pending = std::mem::take(&mut self.pending_switches);
        for spec in pending {
            match self.try_apply_switch(ctx, &spec) {
                Some(n) => reaction.notifications.extend(n),
                None => self.pending_switches.push(spec),
            }
        }
        reaction
    }
}
